//! # ELBA-RS
//!
//! A from-scratch Rust reproduction of **"Distributed-Memory Parallel
//! Contig Generation for De Novo Long-Read Genome Assembly"** (Guidi,
//! Raulet, Rokhsar, Oliker, Yelick, Buluç — ICPP 2022): the ELBA
//! assembler, including every substrate it depends on — an in-process
//! MPI-style runtime, a CombBLAS-style distributed sparse-matrix layer,
//! x-drop alignment, the diBELLA 2D overlap/layout stages, and the
//! paper's novel distributed contig generation.
//!
//! ## Quickstart
//!
//! ```
//! use elba::prelude::*;
//!
//! // 1. Simulate a small long-read dataset (stands in for Table 2).
//! let spec = DatasetSpec::celegans_like(0.08, 42); // 8 kb genome
//! let (genome, sim_reads) = spec.generate();
//! let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
//!
//! // 2. Run the distributed pipeline on 4 in-process ranks.
//! let cfg = PipelineConfig::for_dataset(&spec);
//! let contigs = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
//!     let grid = ProcGrid::new(comm);
//!     let (contigs, _result) = assemble_gathered(&grid, &reads, &cfg);
//!     contigs
//! })
//! .remove(0);
//!
//! // 3. Evaluate against the known reference (Table 4 metrics).
//! let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
//! let report = evaluate(&genome, &seqs, &QualityConfig::default());
//! assert!(report.completeness > 10.0);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! `crates/bench` for the harnesses regenerating every table and figure
//! of the paper.

pub use elba_align as align;

/// Process exit codes shared by the `elba` binary, its `elba launch`
/// worker processes, and the chaos tests/CI scripts. The supervisor (and
/// anything scripting it) distinguishes "a rank crashed" from "bad
/// arguments" from "deadline blown" by exit code alone, without parsing
/// stderr.
pub mod exit {
    /// Generic failure: I/O errors, pipeline errors.
    pub const FAILURE: u8 = 1;
    /// Malformed command line or worker environment.
    pub const USAGE: u8 = 2;
    /// `elba launch`: a worker rank exited abnormally; the supervisor's
    /// message names the rank and its status.
    pub const RANK_FAILED: u8 = 10;
    /// `elba launch`: workers were still running when `--launch-timeout`
    /// expired; the supervisor killed them.
    pub const LAUNCH_TIMEOUT: u8 = 11;
    /// Worker: unwound cleanly after a peer rank died
    /// (`CommError::PeerGone`) — a cascade victim, not the root cause.
    pub const PEER_GONE: u8 = 13;
    /// Worker: terminated by an injected soft kill (a `FaultPlan`
    /// `kill:` action in process mode). The dying worker uses the comm
    /// crate's copy of this constant; they are one value.
    pub const FAULT_KILLED: u8 = elba_comm::transport::fault::FAULT_KILLED_EXIT;
}
pub use elba_baseline as baseline;
pub use elba_comm as comm;
pub use elba_core as core;
pub use elba_graph as graph;
pub use elba_mem as mem;
pub use elba_par as par;
pub use elba_quality as quality;
pub use elba_seq as seq;
pub use elba_sparse as sparse;

/// Everything needed for typical use in one import.
pub mod prelude {
    pub use elba_align::{OverlapAln, OverlapClass, Scoring, SgEdge, XdropKernel};
    pub use elba_baseline::{assemble_bog, assemble_minimizer, BaselineConfig};
    pub use elba_comm::{Backend, Comm, FaultPlan, MachineModel, ProcGrid, RunProfile, Runner};
    pub use elba_core::{
        assemble, assemble_gathered, contig_generation, gather_contigs, AssemblyConfig,
        ChainingConfig, Contig, ContigConfig, KmerExchangeConfig, PartitionStrategy,
        PipelineConfig, PipelineResult,
    };
    pub use elba_graph::{OverlapConfig, SeedChaining};
    pub use elba_mem::{MemBudget, MemTracker};
    pub use elba_par::ElbaPar;
    pub use elba_quality::{evaluate, QualityConfig, QualityReport};
    pub use elba_seq::{DatasetSpec, KmerConfig, KmerExchange, ReadStore, Seq};
    pub use elba_sparse::{DistMat, DistVec, Semiring};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Scoring::default();
        let _ = QualityConfig::default();
        let _ = BaselineConfig::default();
        let _ = PipelineConfig::default();
    }
}
