//! `elba` — command-line front end for ELBA-RS.
//!
//! ```text
//! elba simulate --dataset celegans --scale 0.3 --seed 7 \
//!               --reads reads.fasta --genome genome.fasta
//! elba assemble --reads reads.fasta --ranks 4 --out contigs.fasta \
//!               [--k 31 --xdrop 15] [--scaffold] [--gfa graph.gfa]
//! elba evaluate --reference genome.fasta --contigs contigs.fasta
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::{Child, ExitCode, ExitStatus};
use std::time::{Duration, Instant};

use elba::core::{JobInput, JobOutcome, JobResult, JobSpec, ServeConfig, Server};
use elba::exit;
use elba::prelude::*;
use elba::seq::fasta::{read_fasta, write_fasta, FastaRecord};
use elba::seq::gfa::GfaGraph;

/// A CLI failure plus the process exit code it maps to (see
/// [`elba::exit`] for the taxonomy). Plain `String` errors convert to
/// the generic [`exit::FAILURE`].
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: exit::USAGE,
            message: message.into(),
        }
    }

    fn failure(message: impl Into<String>) -> CliError {
        CliError {
            code: exit::FAILURE,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::failure(message)
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument '{arg}'"));
        };
        match it.next() {
            Some(value) => flags.insert(key.to_owned(), value.clone()),
            None => return Err(format!("flag --{key} needs a value")),
        };
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{raw}'")),
    }
}

fn spec_of(name: &str, scale: f64, seed: u64) -> Result<DatasetSpec, String> {
    match name {
        "celegans" => Ok(DatasetSpec::celegans_like(scale, seed)),
        "osativa" => Ok(DatasetSpec::osativa_like(scale, seed)),
        "hsapiens" => Ok(DatasetSpec::hsapiens_like(scale, seed)),
        other => Err(format!(
            "unknown dataset '{other}' (celegans|osativa|hsapiens)"
        )),
    }
}

fn write_seqs(path: &str, prefix: &str, seqs: &[Seq]) -> Result<(), String> {
    let records: Vec<FastaRecord> = seqs
        .iter()
        .enumerate()
        .map(|(i, seq)| FastaRecord {
            id: format!("{prefix}{i}"),
            seq: seq.clone(),
        })
        .collect();
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    write_fasta(BufWriter::new(file), &records).map_err(|e| format!("write {path}: {e}"))
}

fn read_seqs(path: &str) -> Result<Vec<Seq>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Ok(read_fasta(BufReader::new(file))
        .map_err(|e| format!("parse {path}: {e}"))?
        .into_iter()
        .map(|r| r.seq)
        .collect())
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let dataset = get(&flags, "dataset")?;
    let scale: f64 = num(&flags, "scale", 0.2)?;
    let seed: u64 = num(&flags, "seed", 2022)?;
    let spec = spec_of(dataset, scale, seed)?;
    let (genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    println!(
        "{}: genome {} bp, {} reads, depth {:.0}x, error {:.1}%",
        spec.name,
        genome.len(),
        reads.len(),
        spec.reads.depth,
        spec.reads.error_rate * 100.0
    );
    write_seqs(get(&flags, "reads")?, "read_", &reads)?;
    if let Some(genome_path) = flags.get("genome") {
        write_seqs(genome_path, "genome_", std::slice::from_ref(&genome))?;
    }
    Ok(())
}

/// Everything `assemble` needs before any rank starts: parsed reads,
/// grid shape, and the fully resolved pipeline config. Shared between
/// the in-process path and `elba launch` socket workers so both run the
/// byte-identical pipeline.
struct AssembleSetup {
    reads: Vec<Seq>,
    ranks: usize,
    threads: usize,
    cfg: PipelineConfig,
    schedule: String,
    kmer_exchange: String,
}

fn assemble_setup(flags: &HashMap<String, String>) -> Result<AssembleSetup, String> {
    let reads = read_seqs(get(flags, "reads")?)?;
    let ranks: usize = num(flags, "ranks", 4)?;
    let q = (ranks as f64).sqrt().round() as usize;
    if q * q != ranks {
        return Err(format!("--ranks must be a perfect square, got {ranks}"));
    }
    let threads: usize = num(flags, "threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_owned());
    }
    // Global default for any kernel not reached by the config fan-out,
    // then the explicit per-config knob (which wins over the global).
    ElbaPar::set_threads(threads);
    let mut cfg = PipelineConfig::default().with_threads(threads);
    cfg.kmer.k = num(flags, "k", 31usize)?;
    cfg.overlap.k = cfg.kmer.k;
    cfg.overlap.xdrop = num(flags, "xdrop", 15i32)?;
    cfg.overlap.min_overlap = num(flags, "min-overlap", 100usize)?;
    cfg.overlap.min_score_ratio = num(flags, "min-score-ratio", 0.55f64)?;
    cfg.overlap.fuzz = num(flags, "fuzz", 100usize)?;
    cfg.tr_fuzz = num(flags, "tr-fuzz", 250u32)?;
    if let Some(raw) = flags.get("xdrop-kernel") {
        cfg = cfg.with_xdrop_kernel(match raw.as_str() {
            "scalar" => XdropKernel::Scalar,
            "bitparallel" => XdropKernel::BitParallel,
            "auto" => XdropKernel::Auto,
            other => {
                return Err(format!(
                    "--xdrop-kernel must be scalar, bitparallel, or auto; got '{other}'"
                ))
            }
        });
    }
    let chain_band: usize = num(flags, "chain-band", cfg.overlap.chain_band)?;
    let chaining = match flags.get("seed-chaining").map(String::as_str) {
        None => cfg.overlap.chaining,
        Some("all") => SeedChaining::All,
        Some("chain") => SeedChaining::Chain,
        Some("best") => SeedChaining::BestOnly,
        Some(other) => {
            return Err(format!(
                "--seed-chaining must be all, chain, or best; got '{other}'"
            ))
        }
    };
    cfg = cfg.seed_chaining(ChainingConfig {
        chaining,
        chain_band,
    });
    let schedule = flags
        .get("spgemm")
        .map(String::as_str)
        .unwrap_or("pipelined");
    cfg = cfg.with_spgemm(match schedule {
        "eager" => elba::sparse::SpGemmOptions::eager(),
        "pipelined" => elba::sparse::SpGemmOptions::pipelined(),
        "blocked" => {
            let batch_rows: usize = num(flags, "batch-rows", 1024usize)?;
            if batch_rows == 0 {
                return Err("--batch-rows must be at least 1".to_owned());
            }
            elba::sparse::SpGemmOptions::blocked(batch_rows)
        }
        "auto" => elba::sparse::SpGemmOptions::auto(),
        other => {
            // layered:c — layer count after the colon (plain "layered"
            // defaults to 2 layers; 1 would just be pipelined).
            if let Some(rest) = other.strip_prefix("layered") {
                let c = match rest.strip_prefix(':') {
                    Some(digits) => digits
                        .parse::<usize>()
                        .ok()
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| {
                            format!(
                                "--spgemm layered:c needs a positive layer count; got '{other}'"
                            )
                        })?,
                    None if rest.is_empty() => 2,
                    None => {
                        return Err(format!(
                            "--spgemm must be eager, pipelined, blocked, layered:c, or auto; \
                             got '{other}'"
                        ))
                    }
                };
                elba::sparse::SpGemmOptions::layered(c)
            } else {
                return Err(format!(
                    "--spgemm must be eager, pipelined, blocked, layered:c, or auto; got '{other}'"
                ));
            }
        }
    });
    let kmer_exchange = flags
        .get("kmer-exchange")
        .map(String::as_str)
        .unwrap_or("streaming");
    let batch_kmers: usize = num(flags, "batch-kmers", cfg.kmer.batch_kmers)?;
    if batch_kmers == 0 {
        return Err("--batch-kmers must be at least 1".to_owned());
    }
    cfg = cfg.kmer_exchange(KmerExchangeConfig {
        exchange: match kmer_exchange {
            "eager" => KmerExchange::Eager,
            "streaming" => KmerExchange::Streaming,
            other => {
                return Err(format!(
                    "--kmer-exchange must be eager or streaming; got '{other}'"
                ))
            }
        },
        batch_kmers,
    });
    // --mem-budget overrides the batching knobs above: one lever derives
    // batch_kmers, batch_rows, and the column-batched SpGEMM cap.
    if let Some(raw) = flags.get("mem-budget") {
        let budget = MemBudget::parse(raw).map_err(|e| format!("--mem-budget: {e}"))?;
        if flags.contains_key("spgemm") {
            eprintln!("warning: --mem-budget selects the column-batched SpGEMM; --spgemm ignored");
        }
        if flags.get("kmer-exchange").is_some_and(|v| v != "streaming") {
            eprintln!(
                "warning: --mem-budget forces the streaming k-mer exchange; \
                 --kmer-exchange ignored"
            );
        }
        for knob in ["batch-kmers", "batch-rows"] {
            if flags.contains_key(knob) {
                eprintln!("warning: --mem-budget derives the batching knobs; --{knob} ignored");
            }
        }
        cfg = cfg.with_mem_budget(budget);
    }

    Ok(AssembleSetup {
        reads,
        ranks,
        threads,
        cfg,
        schedule: schedule.to_owned(),
        kmer_exchange: kmer_exchange.to_owned(),
    })
}

fn print_banner(setup: &AssembleSetup, transport: &str) {
    println!(
        "assembling {} reads on {} {transport} ranks × {} thread(s) \
         (k={}, spgemm={}, kmer-exchange={}{})",
        setup.reads.len(),
        setup.ranks,
        setup.threads,
        setup.cfg.kmer.k,
        if setup.cfg.mem_budget.is_limited() {
            "column-batched"
        } else {
            &setup.schedule
        },
        if setup.cfg.mem_budget.is_limited() {
            "streaming"
        } else {
            &setup.kmer_exchange
        },
        match setup.cfg.mem_budget.total() {
            Some(bytes) => format!(", mem-budget={bytes}B/rank"),
            None => String::new(),
        }
    );
}

/// Per-rank profiled traffic over the *named* phases, one deterministic
/// line. Both transports book bytes from `CommMsg::nbytes` above the
/// transport, so this line must be identical between an in-process run
/// and an `elba launch --transport socket` run of the same job — the CI
/// smoke leg diffs it. UNPHASED is excluded because the socket path
/// books auxiliary-communicator setup there that the in-process harness
/// has no analogue for.
fn wire_bytes_line(profile: &RunProfile) -> String {
    let names = profile.phase_names();
    let per_rank: Vec<String> = profile
        .rank_profiles()
        .iter()
        .map(|p| {
            let bytes: u64 = names
                .iter()
                .filter_map(|name| p.phase(name))
                .map(|phase| phase.bytes_sent())
                .sum();
            format!("rank{}={bytes}", p.rank())
        })
        .collect();
    format!("wire-bytes[named-phases]: {}", per_rank.join(" "))
}

fn assemble_finish(
    flags: &HashMap<String, String>,
    setup: &AssembleSetup,
    contigs: Vec<Contig>,
    result: PipelineResult,
    profile: &RunProfile,
) -> Result<(), String> {
    let cfg = &setup.cfg;
    let schedule = setup.schedule.as_str();
    print!("{}", profile.render_table());
    println!("{}", wire_bytes_line(profile));
    if schedule == "auto" && !cfg.mem_budget.is_limited() {
        if let Some(pick) = elba::sparse::last_auto_spgemm_pick() {
            println!(
                "auto-spgemm: resolved to {} (see [auto-spgemm] lines above for the model's \
                 estimates)",
                elba::sparse::algorithm_label(pick)
            );
        }
    }
    if let Some(total) = cfg.mem_budget.total() {
        let peak = profile
            .phase_names()
            .iter()
            .map(|name| profile.max_mem_hw(name))
            .max()
            .unwrap_or(0);
        println!(
            "mem budget: {total} B/rank | peak tracked high-water: {peak} B ({})",
            if peak <= total {
                "within budget"
            } else {
                "EXCEEDED"
            }
        );
    }
    println!(
        "contigs: {} | reliable k-mers: {} | candidate pairs: {} | string-graph nnz: {}",
        contigs.len(),
        result.n_reliable_kmers,
        result.candidate_nnz,
        result.string_graph_nnz
    );

    let mut seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    if flags.contains_key("scaffold") {
        let scfg = elba::core::scaffold::ScaffoldConfig {
            k: cfg.kmer.k.min(21),
            min_overlap: cfg.overlap.min_overlap,
            ..Default::default()
        };
        let (scaffolds, stats) = elba::core::scaffold::scaffold_contigs(&seqs, &scfg);
        println!(
            "scaffolding: {} contigs -> {} scaffolds ({} joins)",
            stats.input_contigs, stats.output_scaffolds, stats.joins
        );
        seqs = scaffolds;
    }
    write_seqs(get(flags, "out")?, "contig_", &seqs)?;

    if let Some(gfa_path) = flags.get("gfa") {
        let mut graph = GfaGraph::new();
        for (i, seq) in seqs.iter().enumerate() {
            graph.add_segment(format!("contig_{i}"), seq.clone());
        }
        for (i, contig) in contigs.iter().enumerate() {
            graph.add_path(
                format!("walk_{i}"),
                contig
                    .read_ids
                    .iter()
                    .map(|id| (format!("read_{id}"), false))
                    .collect(),
            );
        }
        let file = File::create(gfa_path).map_err(|e| format!("create {gfa_path}: {e}"))?;
        graph
            .write(BufWriter::new(file))
            .map_err(|e| format!("write {gfa_path}: {e}"))?;
        println!("assembly graph written to {gfa_path}");
    }
    Ok(())
}

fn cmd_assemble(flags: HashMap<String, String>) -> Result<(), CliError> {
    let mut setup = assemble_setup(&flags)?;
    print_banner(&setup, "in-process");
    let reads = std::mem::take(&mut setup.reads);
    let cfg = setup.cfg.clone();
    let (mut outputs, profile) = Runner::new(Backend::InProcess)
        .ranks(setup.ranks)
        .try_run_profiled(move |comm| {
            let grid = ProcGrid::new(comm);
            assemble_gathered(&grid, &reads, &cfg)
        })
        .map_err(|failure| CliError {
            // Dead ranks are a typed outcome, not a panic: name every
            // casualty (root cause first) and exit with the rank-failure
            // code so `elba launch --transport inprocess` reports exactly
            // like the socket supervisor.
            code: exit::RANK_FAILED,
            message: format!("assemble: {failure}"),
        })?;
    let (contigs, result) = outputs.remove(0);
    assemble_finish(&flags, &setup, contigs, result, &profile).map_err(CliError::from)
}

/// `elba launch --ranks N [--transport socket|inprocess] -- assemble ...`
///
/// The socket transport forks N worker *processes* of this same binary,
/// wires them into a Unix-socket mesh under a temp directory, and runs
/// the identical assemble pipeline; rank 0 gathers every worker's
/// profile and prints the same table and wire-bytes line the in-process
/// path prints, so the two are directly diffable.
fn cmd_launch(rest: &[String]) -> Result<(), CliError> {
    let Some(split) = rest.iter().position(|a| a == "--") else {
        return Err(CliError::usage(
            "launch needs '-- assemble ...' after its own flags",
        ));
    };
    let (head, tail) = (&rest[..split], &rest[split + 1..]);
    let flags = parse_flags(head).map_err(CliError::usage)?;
    let ranks: usize = num(&flags, "ranks", 4).map_err(CliError::usage)?;
    let q = (ranks as f64).sqrt().round() as usize;
    if ranks == 0 || q * q != ranks {
        return Err(CliError::usage(format!(
            "--ranks must be a positive perfect square, got {ranks}"
        )));
    }
    let transport = flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("socket");
    let timeout_secs: u64 = num(&flags, "launch-timeout", 600).map_err(CliError::usage)?;
    if timeout_secs == 0 {
        return Err(CliError::usage(
            "--launch-timeout must be at least 1 second",
        ));
    }
    // Validate the fault plan in the supervisor, where a typo is a
    // usage error — not N workers dying with the same parse message.
    let fault = match flags.get("fault") {
        None => None,
        Some(raw) => {
            let plan = elba::comm::FaultPlan::parse(raw)
                .map_err(|e| CliError::usage(format!("--fault: {e}")))?;
            if let Some(&r) = plan.doomed_ranks().iter().find(|&&r| r >= ranks) {
                return Err(CliError::usage(format!(
                    "--fault targets rank {r}, but the launch has only {ranks} ranks"
                )));
            }
            Some(plan.to_string())
        }
    };
    let opts = LaunchOptions {
        timeout: Duration::from_secs(timeout_secs),
        socket_dir: flags.get("socket-dir").map(PathBuf::from),
        fault,
    };
    let Some((sub, sub_rest)) = tail.split_first() else {
        return Err(CliError::usage(format!(
            "launch needs a subcommand after '--' (launchable: {})",
            launchable_names()
        )));
    };
    let Some(entry) = subcommand(sub) else {
        return Err(CliError::usage(format!(
            "launch cannot wrap unknown subcommand '{sub}' (launchable: {})",
            launchable_names()
        )));
    };
    if !entry.launchable {
        return Err(CliError::usage(format!(
            "launch wraps only SPMD subcommands ({}), got '{sub}'",
            launchable_names()
        )));
    }
    match transport {
        "inprocess" => {
            let mut sub_flags = parse_flags(sub_rest).map_err(CliError::usage)?;
            sub_flags.insert("ranks".to_owned(), ranks.to_string());
            if let Some(plan) = &opts.fault {
                // The in-process harness reads the same env hook the
                // socket workers do; thread-mode kills, same taxonomy.
                std::env::set_var(elba::comm::transport::fault::FAULT_PLAN_ENV, plan);
            }
            (entry.run)(sub_flags)
        }
        "socket" => launch_socket(ranks, &opts, sub_rest),
        other => Err(CliError::usage(format!(
            "--transport must be socket or inprocess; got '{other}'"
        ))),
    }
}

/// Supervision knobs parsed from `elba launch`'s own flags.
struct LaunchOptions {
    /// Hard deadline for the whole launch — mesh bring-up included (the
    /// workers' `ELBA_MESH_TIMEOUT_MS` is derived from it).
    timeout: Duration,
    /// Rendezvous directory override; defaults to a pid-keyed temp dir.
    socket_dir: Option<PathBuf>,
    /// Validated, re-serialized fault plan handed to every worker.
    fault: Option<String>,
}

/// Removes the socket rendezvous directory on every exit path — clean
/// completion, spawn failure, rank crash, timeout, or a panic in the
/// supervisor itself — so aborted launches never leak socket files.
struct SocketDirGuard(PathBuf);

impl Drop for SocketDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One abnormally-exited child: its rank, a severity class used to pick
/// the root cause of a cascade, and a human-readable status.
struct ChildFailure {
    rank: usize,
    severity: u8,
    status: String,
}

fn classify_exit(rank: usize, status: ExitStatus) -> ChildFailure {
    use std::os::unix::process::ExitStatusExt;
    // Severity orders candidate root causes: a signal-killed or
    // fault-killed rank originated the failure; survivors that exited
    // because a peer vanished are cascade victims and sort last.
    let (severity, status) = match status.code() {
        Some(c) if c == i32::from(exit::FAULT_KILLED) => {
            (1, format!("exited with code {c} (killed by fault plan)"))
        }
        Some(c) if c == i32::from(exit::PEER_GONE) => {
            (3, format!("exited with code {c} (a peer rank died)"))
        }
        Some(c) if c == i32::from(exit::USAGE) => {
            (2, format!("exited with code {c} (bad arguments)"))
        }
        Some(c) => (2, format!("exited with code {c}")),
        None => match status.signal() {
            Some(s) => (0, format!("killed by signal {s}")),
            None => (2, format!("{status}")),
        },
    };
    ChildFailure {
        rank,
        severity,
        status,
    }
}

/// Non-blocking pass over all children: reap exits, record abnormal
/// ones, return how many are still running.
fn sweep_children(
    children: &mut [Option<(usize, Child)>],
    failures: &mut Vec<ChildFailure>,
) -> usize {
    let mut running = 0;
    for slot in children.iter_mut() {
        let Some((rank, child)) = slot else { continue };
        match child.try_wait() {
            Ok(Some(status)) => {
                if !status.success() {
                    failures.push(classify_exit(*rank, status));
                }
                *slot = None;
            }
            Ok(None) => running += 1,
            Err(e) => {
                failures.push(ChildFailure {
                    rank: *rank,
                    severity: 2,
                    status: format!("wait failed: {e}"),
                });
                *slot = None;
            }
        }
    }
    running
}

fn kill_and_reap(children: &mut [Option<(usize, Child)>]) {
    for slot in children.iter_mut() {
        if let Some((_, child)) = slot {
            let _ = child.kill();
            let _ = child.wait();
        }
        *slot = None;
    }
}

fn launch_socket(
    ranks: usize,
    opts: &LaunchOptions,
    assemble_args: &[String],
) -> Result<(), CliError> {
    // Fail fast in the parent on malformed flags rather than in N
    // workers at once.
    parse_flags(assemble_args).map_err(CliError::usage)?;
    let exe =
        std::env::current_exe().map_err(|e| CliError::failure(format!("current_exe: {e}")))?;
    let dir = opts.socket_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("elba-launch-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir); // stale sockets from a recycled pid
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::failure(format!("create {}: {e}", dir.display())))?;
    let _cleanup = SocketDirGuard(dir.clone());
    let deadline = Instant::now() + opts.timeout;
    let mut children: Vec<Option<(usize, Child)>> = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut command = std::process::Command::new(&exe);
        command
            .arg("assemble")
            .args(assemble_args)
            .env("ELBA_RANK", rank.to_string())
            .env("ELBA_RANKS", ranks.to_string())
            .env("ELBA_SOCKET_DIR", &dir)
            .env("ELBA_MESH_TIMEOUT_MS", opts.timeout.as_millis().to_string());
        if let Some(plan) = &opts.fault {
            command.env(elba::comm::transport::fault::FAULT_PLAN_ENV, plan);
        }
        let spawned = command.spawn();
        match spawned {
            Ok(child) => children.push(Some((rank, child))),
            Err(e) => {
                kill_and_reap(&mut children);
                return Err(CliError::failure(format!("spawn worker rank {rank}: {e}")));
            }
        }
    }
    supervise(&mut children, deadline, opts.timeout)
}

/// Poll all children until they finish, one dies, or the deadline
/// passes. Never blocks on any single child, so a hung rank 0 cannot
/// delay noticing that rank 3 died.
fn supervise(
    children: &mut [Option<(usize, Child)>],
    deadline: Instant,
    timeout: Duration,
) -> Result<(), CliError> {
    let mut failures: Vec<ChildFailure> = Vec::new();
    loop {
        let running = sweep_children(children, &mut failures);
        if !failures.is_empty() {
            // Give the cascade a moment to surface naturally (survivors
            // of a killed rank exit within milliseconds), then put the
            // rest down — a status collected after our own kill() would
            // be indistinguishable from the root cause.
            let grace = Instant::now() + Duration::from_millis(100);
            while sweep_children(children, &mut failures) > 0 && Instant::now() < grace {
                std::thread::sleep(Duration::from_millis(5));
            }
            kill_and_reap(children);
            failures.sort_by_key(|f| (f.severity, f.rank));
            let primary = &failures[0];
            let mut message = format!("launch failed: rank {} {}", primary.rank, primary.status);
            if failures.len() > 1 {
                let rest: Vec<String> = failures[1..]
                    .iter()
                    .map(|f| format!("rank {} {}", f.rank, f.status))
                    .collect();
                message.push_str(&format!("; then {}", rest.join("; ")));
            }
            return Err(CliError {
                code: exit::RANK_FAILED,
                message,
            });
        }
        if running == 0 {
            return Ok(());
        }
        if Instant::now() >= deadline {
            let alive: Vec<String> = children
                .iter()
                .flatten()
                .map(|(rank, _)| rank.to_string())
                .collect();
            kill_and_reap(children);
            return Err(CliError {
                code: exit::LAUNCH_TIMEOUT,
                message: format!(
                    "launch timed out after {}s; killed still-running rank(s) {}",
                    timeout.as_secs(),
                    alive.join(", ")
                ),
            });
        }
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// Body of one `elba launch` worker process (dispatched from `main`
/// when the `ELBA_SOCKET_DIR`/`ELBA_RANK`/`ELBA_RANKS` environment is
/// present). Every worker runs the full pipeline; rank 0 additionally
/// gathers the per-rank profiles and writes the outputs.
fn run_socket_worker(
    rank: usize,
    nranks: usize,
    dir: &std::path::Path,
    flags: HashMap<String, String>,
) -> Result<(), CliError> {
    let q = (nranks as f64).sqrt().round() as usize;
    if q * q != nranks {
        return Err(CliError::usage(format!(
            "launch --ranks must be a perfect square, got {nranks}"
        )));
    }
    let mut setup = assemble_setup(&flags)?;
    setup.ranks = nranks;
    if rank == 0 {
        print_banner(&setup, "socket");
    }
    let reads = std::mem::take(&mut setup.reads);
    let cfg = setup.cfg.clone();
    let (out, _own_profile) = elba::comm::run_worker(dir, rank, nranks, move |comm| {
        // The profile gather must not disturb the named-phase wire-byte
        // accounting: the auxiliary communicator is split off before the
        // grid exists (its setup books as UNPHASED), and each rank
        // snapshots and encodes its profile before any gather traffic.
        let aux = comm.dup();
        let grid = ProcGrid::new(comm);
        let (contigs, result) = assemble_gathered(&grid, &reads, &cfg);
        let encoded = {
            let handle = aux.profile_handle();
            let snapshot = handle.lock().expect("profile lock").clone();
            let mut buf = Vec::new();
            snapshot.wire_encode(&mut buf);
            buf
        };
        let frames = aux.gather(0, encoded);
        frames.map(|frames| (contigs, result, frames))
    })
    .map_err(|e| {
        // The worker's exit code is the launcher's only signal, so the
        // failure class has to survive the process boundary as one.
        let code = match &e {
            elba::comm::WorkerError::Comm(_) => exit::PEER_GONE,
            elba::comm::WorkerError::Killed(_) => exit::FAULT_KILLED,
            elba::comm::WorkerError::Io(_) | elba::comm::WorkerError::Panic(_) => exit::FAILURE,
        };
        CliError {
            code,
            message: format!("socket worker rank {rank}: {e}"),
        }
    })?;
    let Some((contigs, result, frames)) = out else {
        return Ok(()); // non-root workers are done once the gather lands
    };
    let mut profiles = Vec::with_capacity(frames.len());
    for frame in &frames {
        let mut reader = elba::comm::transport::wire::WireReader::new(frame);
        let decoded = elba::comm::Profile::wire_decode(&mut reader)
            .and_then(|p| reader.finish().map(|()| p))
            .map_err(|e| format!("decode gathered profile: {e:?}"))?;
        profiles.push(decoded);
    }
    let profile = RunProfile::new(profiles);
    assemble_finish(&flags, &setup, contigs, result, &profile).map_err(CliError::from)
}

fn cmd_evaluate(flags: HashMap<String, String>) -> Result<(), String> {
    let reference = read_seqs(get(&flags, "reference")?)?;
    let contigs = read_seqs(get(&flags, "contigs")?)?;
    let Some(reference) = reference.into_iter().next() else {
        return Err("reference FASTA is empty".into());
    };
    let report = evaluate(&reference, &contigs, &QualityConfig::default());
    println!("completeness        : {:.2}%", report.completeness);
    println!("longest contig      : {} bp", report.longest_contig);
    println!("contigs             : {}", report.n_contigs);
    println!("misassembled contigs: {}", report.misassembled_contigs);
    println!("NG50                : {} bp", report.ng50);
    println!("total length        : {} bp", report.total_len);
    println!("unaligned contigs   : {}", report.unaligned_contigs);
    Ok(())
}

// ---------------------------------------------------------------------
// elba serve
// ---------------------------------------------------------------------

/// Parse one job-file line of whitespace-separated `key=value` tokens:
/// `name=j1 sim=celegans scale=0.05 seed=3 mem=32M fault=kill:1@phase:X`
/// or `name=j2 fasta=/path/reads.fasta mem=16M`. Blank lines and `#`
/// comments are skipped by the caller.
fn parse_job_line(line: &str, lineno: usize) -> Result<JobSpec, String> {
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("jobs line {lineno}: token '{token}' is not key=value"))?;
        if kv.insert(key, value).is_some() {
            return Err(format!("jobs line {lineno}: duplicate key '{key}'"));
        }
    }
    let name = kv
        .get("name")
        .ok_or_else(|| format!("jobs line {lineno}: missing name="))?
        .to_string();
    let input = match (kv.get("sim"), kv.get("fasta")) {
        (Some(dataset), None) => {
            let scale: f64 = kv.get("scale").map_or(Ok(0.1), |raw| {
                raw.parse()
                    .map_err(|_| format!("jobs line {lineno}: scale '{raw}'"))
            })?;
            let seed: u64 = kv.get("seed").map_or(Ok(1), |raw| {
                raw.parse()
                    .map_err(|_| format!("jobs line {lineno}: seed '{raw}'"))
            })?;
            JobInput::Sim {
                dataset: dataset.to_string(),
                scale,
                seed,
            }
        }
        (None, Some(path)) => JobInput::FastaPath(path.to_string()),
        _ => {
            return Err(format!(
                "jobs line {lineno}: need exactly one of sim=DATASET or fasta=PATH"
            ))
        }
    };
    let budget_bytes = match kv.get("mem") {
        None => 0,
        Some(raw) => MemBudget::parse(raw)
            .map_err(|e| format!("jobs line {lineno}: mem: {e}"))?
            .total()
            .unwrap_or(0),
    };
    Ok(JobSpec {
        name,
        input,
        budget_bytes,
        fault: kv.get("fault").map(|f| f.to_string()),
    })
}

fn read_job_file(path: &str) -> Result<Vec<JobSpec>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut specs = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        specs.push(parse_job_line(line, i + 1)?);
    }
    if specs.is_empty() {
        return Err(format!("{path}: no jobs"));
    }
    Ok(specs)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// `elba serve`: run a batch of assembly jobs over a fixed pool of
/// supervised rank groups with budget admission control. Exits 0 iff
/// every submission was accepted and every job without a fault plan
/// completed — an injected kill failing its own job is expected chaos.
fn cmd_serve(flags: HashMap<String, String>) -> Result<(), CliError> {
    let groups: usize = num(&flags, "groups", 2).map_err(CliError::usage)?;
    let group_ranks: usize = num(&flags, "group-ranks", 4).map_err(CliError::usage)?;
    let threads: usize = num(&flags, "threads", 1).map_err(CliError::usage)?;
    if groups == 0 {
        return Err(CliError::usage("--groups must be at least 1"));
    }
    let q = (group_ranks as f64).sqrt().round() as usize;
    if group_ranks == 0 || q * q != group_ranks {
        return Err(CliError::usage(format!(
            "--group-ranks must be a positive perfect square, got {group_ranks}"
        )));
    }
    let backend = match flags
        .get("transport")
        .map(String::as_str)
        .unwrap_or("inprocess")
    {
        "inprocess" => Backend::InProcess,
        "socket" => Backend::Socket,
        other => {
            return Err(CliError::usage(format!(
                "--transport must be inprocess or socket; got '{other}'"
            )))
        }
    };
    let host_cap = match flags.get("host-mem") {
        None => MemBudget::unlimited(),
        Some(raw) => {
            MemBudget::parse(raw).map_err(|e| CliError::usage(format!("--host-mem: {e}")))?
        }
    };
    let specs =
        read_job_file(get(&flags, "jobs").map_err(CliError::usage)?).map_err(CliError::usage)?;

    println!(
        "[serve] groups={groups} group-ranks={group_ranks} transport={} host-mem={} jobs={}",
        match backend {
            Backend::InProcess => "inprocess",
            Backend::Socket => "socket",
        },
        host_cap
            .total()
            .map_or("unlimited".to_string(), |b| b.to_string()),
        specs.len()
    );
    let server = Server::start(ServeConfig {
        groups,
        group_ranks,
        backend,
        host_cap,
        threads,
    });
    let started = Instant::now();
    let mut rejected = 0usize;
    for spec in specs {
        if let Err(e) = server.submit(spec.clone()) {
            println!("job {}: REJECTED: {e}", spec.name);
            rejected += 1;
        }
    }
    let results = server.drain();
    let wall = started.elapsed().as_secs_f64();

    let mut unexpected_failures = 0usize;
    let mut completed = 0usize;
    let mut fault_killed = 0usize;
    for r in &results {
        match &r.outcome {
            JobOutcome::Completed {
                contigs, report, ..
            } => {
                completed += 1;
                let quality = report.as_ref().map_or(String::new(), |q| {
                    format!(" completeness={:.1}% ng50={}", q.completeness, q.ng50)
                });
                println!(
                    "job {}: completed in {:.2}s (queued {:.2}s) contigs={}{quality}",
                    r.name,
                    r.run_secs,
                    r.queued_secs,
                    contigs.len()
                );
            }
            JobOutcome::Failed {
                error,
                killed_by_fault,
            } => {
                if *killed_by_fault {
                    fault_killed += 1;
                } else {
                    unexpected_failures += 1;
                }
                println!(
                    "job {}: FAILED{}: {error}",
                    r.name,
                    if *killed_by_fault {
                        " (killed by fault plan)"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    let mut latencies: Vec<f64> = results.iter().map(JobResult::latency_secs).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let failed = results.len() - completed;
    println!(
        "[serve] jobs={} completed={completed} failed={failed} fault-killed={fault_killed} rejected={rejected}",
        results.len()
    );
    println!(
        "[serve] throughput: {:.1} jobs/min | latency p50={:.2}s p99={:.2}s",
        results.len() as f64 / (wall / 60.0),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    let peak = server_peak(&results);
    println!("[serve] wall={wall:.2}s peak-latency={peak:.2}s");
    if unexpected_failures > 0 || rejected > 0 {
        return Err(CliError::failure(format!(
            "{unexpected_failures} job(s) failed without a fault plan, {rejected} rejected"
        )));
    }
    Ok(())
}

fn server_peak(results: &[JobResult]) -> f64 {
    results
        .iter()
        .map(JobResult::latency_secs)
        .fold(0.0, f64::max)
}

fn usage() -> String {
    "usage: elba <simulate|assemble|serve|launch|evaluate> [--flag value]...\n\
     \n\
     simulate --dataset celegans|osativa|hsapiens --reads OUT.fasta\n\
     \u{20}        [--genome OUT.fasta] [--scale 0.2] [--seed 2022]\n\
     assemble --reads IN.fasta --out contigs.fasta [--ranks 4] [--k 31]\n\
     \u{20}        [--threads 1] [--xdrop 15] [--min-overlap 100] [--scaffold true]\n\
     \u{20}        [--xdrop-kernel scalar|bitparallel|auto]\n\
     \u{20}        [--seed-chaining all|chain|best] [--chain-band 128]\n\
     \u{20}        [--spgemm eager|pipelined|blocked|layered:c|auto] [--batch-rows 1024]\n\
     \u{20}        [--kmer-exchange eager|streaming] [--batch-kmers 65536]\n\
     \u{20}        [--mem-budget 64M] [--gfa graph.gfa]\n\
     serve    --jobs jobs.txt [--groups 2] [--group-ranks 4] [--threads 1]\n\
     \u{20}        [--transport inprocess|socket] [--host-mem 512M]\n\
     \u{20}        (job lines: name=j1 sim=celegans scale=0.05 seed=3 mem=32M\n\
     \u{20}        [fault=kill:1@phase:Alignment] — or fasta=reads.fasta)\n\
     launch   --ranks 4 [--transport socket|inprocess] [--launch-timeout 600]\n\
     \u{20}        [--socket-dir DIR] -- assemble <flags>...\n\
     \u{20}        (socket: ranks are separate supervised processes over a\n\
     \u{20}        Unix-socket mesh; first abnormal exit kills the survivors)\n\
     evaluate --reference genome.fasta --contigs contigs.fasta"
        .to_owned()
}

/// One CLI subcommand: its name, whether `elba launch` may wrap it over
/// worker rank processes, and its entry point. `main` and `cmd_launch`
/// both dispatch through this table, so the wrapping rules and the
/// allowed-set named by usage errors live in one place.
struct Subcommand {
    name: &'static str,
    /// `elba launch` may wrap it: the subcommand runs the SPMD pipeline
    /// itself and honors the injected `--ranks` / fault-plan environment.
    launchable: bool,
    run: fn(HashMap<String, String>) -> Result<(), CliError>,
}

const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "simulate",
        launchable: false,
        run: |flags| cmd_simulate(flags).map_err(CliError::from),
    },
    Subcommand {
        name: "assemble",
        launchable: true,
        run: cmd_assemble,
    },
    Subcommand {
        name: "serve",
        launchable: false,
        run: cmd_serve,
    },
    Subcommand {
        name: "evaluate",
        launchable: false,
        run: |flags| cmd_evaluate(flags).map_err(CliError::from),
    },
];

fn subcommand(name: &str) -> Option<&'static Subcommand> {
    SUBCOMMANDS.iter().find(|s| s.name == name)
}

fn subcommand_names() -> String {
    SUBCOMMANDS
        .iter()
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join("|")
}

fn launchable_names() -> String {
    SUBCOMMANDS
        .iter()
        .filter(|s| s.launchable)
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join("|")
}

/// Worker identity injected by `elba launch --transport socket`; absent
/// in every directly invoked `elba`.
fn worker_env() -> Option<Result<(usize, usize, std::path::PathBuf), String>> {
    let dir = std::env::var_os("ELBA_SOCKET_DIR")?;
    let parse = || -> Result<(usize, usize, std::path::PathBuf), String> {
        let rank = std::env::var("ELBA_RANK")
            .map_err(|_| "ELBA_SOCKET_DIR set but ELBA_RANK missing".to_owned())?
            .parse::<usize>()
            .map_err(|_| "ELBA_RANK: not a number".to_owned())?;
        let ranks = std::env::var("ELBA_RANKS")
            .map_err(|_| "ELBA_SOCKET_DIR set but ELBA_RANKS missing".to_owned())?
            .parse::<usize>()
            .map_err(|_| "ELBA_RANKS: not a number".to_owned())?;
        Ok((rank, ranks, std::path::PathBuf::from(dir)))
    };
    Some(parse())
}

fn report(result: Result<(), CliError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {}", err.message);
            ExitCode::from(err.code)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(env) = worker_env() {
        let result =
            env.map_err(CliError::usage)
                .and_then(|(rank, ranks, dir)| match args.split_first() {
                    Some((command, rest)) if command == "assemble" => parse_flags(rest)
                        .map_err(CliError::usage)
                        .and_then(|flags| run_socket_worker(rank, ranks, &dir, flags)),
                    _ => Err(CliError::usage(
                        "launch workers only run the assemble subcommand",
                    )),
                });
        return report(result);
    }
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(exit::USAGE);
    };
    // `launch` wraps another subcommand and parses its own argv shape;
    // everything else dispatches through the table.
    let result = match command.as_str() {
        "launch" => cmd_launch(rest),
        other => match subcommand(other) {
            Some(entry) => parse_flags(rest)
                .map_err(CliError::usage)
                .and_then(entry.run),
            None => Err(CliError::usage(format!(
                "unknown command '{other}' (expected {}|launch)\n{}",
                subcommand_names(),
                usage()
            ))),
        },
    };
    report(result)
}
