//! Equivalence pins for the PR-10 API redesign: the eight deprecated
//! `Cluster::*` / `SocketCluster::*` entry points must behave exactly
//! like the [`Runner`] builder they now forward to (same contigs, same
//! per-rank per-phase wire bytes, same typed failures), and the
//! deprecated `PipelineConfig::with_*` builders must produce the same
//! configuration as the new sub-config builders.

#![allow(deprecated)]

use elba::comm::{Cluster, SocketCluster};
use elba::prelude::*;

fn dataset(seed: u64) -> (Vec<Seq>, PipelineConfig) {
    let spec = DatasetSpec::celegans_like(0.08, seed);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let cfg = PipelineConfig::for_dataset(&spec);
    (reads, cfg)
}

fn assemble_closure(
    reads: Vec<Seq>,
    cfg: PipelineConfig,
) -> impl Fn(Comm) -> Vec<Contig> + Send + Sync + 'static {
    move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
        contigs
    }
}

/// Flatten a [`RunProfile`] into comparable (rank, phase, bytes_sent)
/// rows — the wire-byte model both paths must pin identically.
fn wire_rows(profile: &RunProfile) -> Vec<(usize, String, u64)> {
    profile
        .rank_profiles()
        .iter()
        .flat_map(|p| {
            p.phases()
                .map(move |(name, ph)| (p.rank(), name.to_string(), ph.bytes_sent()))
        })
        .collect()
}

fn contig_strings(contigs: &[Contig]) -> Vec<String> {
    contigs.iter().map(|c| c.seq.to_string()).collect()
}

#[test]
fn runner_matches_deprecated_cluster_run_profiled() {
    let (reads, cfg) = dataset(2022);

    let (mut old_out, old_profile) =
        Cluster::run_profiled(4, assemble_closure(reads.clone(), cfg.clone()));
    let (mut new_out, new_profile) = Runner::new(Backend::InProcess)
        .ranks(4)
        .run_profiled(assemble_closure(reads, cfg));

    let old_contigs = contig_strings(&old_out.remove(0));
    assert!(!old_contigs.is_empty(), "probe produced no contigs");
    assert_eq!(
        old_contigs,
        contig_strings(&new_out.remove(0)),
        "contigs differ between Cluster::run_profiled and Runner"
    );
    assert_eq!(
        wire_rows(&old_profile),
        wire_rows(&new_profile),
        "wire bytes differ between Cluster::run_profiled and Runner"
    );
}

#[test]
fn runner_matches_deprecated_cluster_run_and_try_run() {
    let (reads, cfg) = dataset(77);

    let old_out = Cluster::run(4, assemble_closure(reads.clone(), cfg.clone()));
    let new_out = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(assemble_closure(reads.clone(), cfg.clone()));
    assert_eq!(
        contig_strings(&old_out[0]),
        contig_strings(&new_out[0]),
        "Cluster::run vs Runner::run"
    );

    let (try_old, _) = Cluster::try_run_profiled(4, assemble_closure(reads.clone(), cfg.clone()))
        .expect("clean run");
    let (try_new, _) = Runner::new(Backend::InProcess)
        .ranks(4)
        .try_run_profiled(assemble_closure(reads, cfg))
        .expect("clean run");
    assert_eq!(
        contig_strings(&try_old[0]),
        contig_strings(&try_new[0]),
        "Cluster::try_run_profiled vs Runner::try_run_profiled"
    );
}

#[test]
fn runner_matches_deprecated_fault_entry_point() {
    let (reads, cfg) = dataset(4242);
    let plan = FaultPlan::parse("kill:1@phase:Alignment").expect("valid plan");

    let old_failure =
        Cluster::try_run_with_faults(4, &plan, assemble_closure(reads.clone(), cfg.clone()))
            .expect_err("plan kills rank 1");
    let new_failure = Runner::new(Backend::InProcess)
        .ranks(4)
        .faults(&plan)
        .try_run_profiled(assemble_closure(reads, cfg))
        .expect_err("plan kills rank 1");

    assert_eq!(old_failure.primary().rank, new_failure.primary().rank);
    assert_eq!(
        format!("{:?}", old_failure.primary().cause),
        format!("{:?}", new_failure.primary().cause),
    );
}

#[test]
fn runner_matches_deprecated_socket_cluster() {
    let (reads, cfg) = dataset(99);

    let (mut old_out, old_profile) =
        SocketCluster::run_profiled(4, assemble_closure(reads.clone(), cfg.clone()));
    let (mut new_out, new_profile) = Runner::new(Backend::Socket)
        .ranks(4)
        .run_profiled(assemble_closure(reads.clone(), cfg.clone()));

    assert_eq!(
        contig_strings(&old_out.remove(0)),
        contig_strings(&new_out.remove(0)),
        "contigs differ between SocketCluster::run_profiled and Runner(Socket)"
    );
    assert_eq!(
        wire_rows(&old_profile),
        wire_rows(&new_profile),
        "wire bytes differ between SocketCluster::run_profiled and Runner(Socket)"
    );

    // And both transports agree with each other on results (the wire
    // byte totals legitimately differ between planes).
    let inproc = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(assemble_closure(reads, cfg));
    assert_eq!(
        contig_strings(&new_out[0]),
        contig_strings(&inproc[0]),
        "socket vs in-process contigs"
    );
}

#[test]
fn deprecated_config_shims_equal_sub_config_builders() {
    let base = PipelineConfig::default();

    let via_shim = base
        .clone()
        .with_kmer_exchange(KmerExchange::Streaming, 4096)
        .with_seed_chaining(SeedChaining::Chain, 64);
    let via_subconfig = base
        .kmer_exchange(KmerExchangeConfig {
            exchange: KmerExchange::Streaming,
            batch_kmers: 4096,
        })
        .seed_chaining(ChainingConfig {
            chaining: SeedChaining::Chain,
            chain_band: 64,
        });

    assert_eq!(
        format!("{via_shim:?}"),
        format!("{via_subconfig:?}"),
        "deprecated builder shims must forward without drift"
    );

    // Defaults of the sub-configs match the pipeline's own defaults, so
    // `..Default::default()` never silently changes a knob.
    let kx = KmerExchangeConfig::default();
    assert_eq!(kx.exchange, base_default_exchange());
    let ch = ChainingConfig::default();
    assert_eq!(ch.chain_band, base_default_chain_band());
}

fn base_default_exchange() -> KmerExchange {
    PipelineConfig::default().kmer.exchange
}

fn base_default_chain_band() -> usize {
    PipelineConfig::default().overlap.chain_band
}

/// Knob transparency, pinned through both builder paths: streaming
/// exchange and chained seeds must leave the contigs byte-identical to
/// the defaults, whether configured through the deprecated shims or the
/// new sub-config builders.
#[test]
fn knob_transparency_holds_through_both_builder_paths() {
    let spec = DatasetSpec::celegans_like(0.08, 555);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let base = PipelineConfig::for_dataset(&spec);

    let run = |cfg: PipelineConfig| {
        let reads = reads.clone();
        let out = Runner::new(Backend::InProcess)
            .ranks(4)
            .run(assemble_closure(reads, cfg));
        contig_strings(&out[0])
    };

    let default_contigs = run(base.clone());
    assert!(!default_contigs.is_empty(), "probe produced no contigs");
    let shim_contigs = run(base
        .clone()
        .with_kmer_exchange(KmerExchange::Streaming, 4096));
    let subcfg_contigs = run(base.kmer_exchange(KmerExchangeConfig {
        exchange: KmerExchange::Streaming,
        batch_kmers: 4096,
    }));

    assert_eq!(
        default_contigs, shim_contigs,
        "shim path broke transparency"
    );
    assert_eq!(
        default_contigs, subcfg_contigs,
        "sub-config path broke transparency"
    );
}
