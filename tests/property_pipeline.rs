//! Property-based integration tests: randomized mini-genomes through the
//! full distributed pipeline, checking structural invariants that must
//! hold for *any* input.

use elba::prelude::*;
use proptest::prelude::*;

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.kmer.k = 15;
    cfg.kmer.reliable_min = 2;
    cfg.kmer.reliable_max = 100;
    cfg.overlap.k = 15;
    cfg.overlap.xdrop = 12;
    cfg.overlap.min_overlap = 60;
    cfg.overlap.fuzz = 40;
    cfg.tr_fuzz = 120;
    cfg
}

/// Deterministically tile a random genome with overlapping reads.
fn tiled_reads(genome: &Seq, read_len: usize, stride: usize, flip_every: usize) -> Vec<Seq> {
    let mut reads = Vec::new();
    let mut start = 0;
    let mut i = 0usize;
    while start + read_len <= genome.len() {
        let r = genome.substring(start, start + read_len);
        reads.push(if flip_every > 0 && i.is_multiple_of(flip_every) {
            r.reverse_complement()
        } else {
            r
        });
        start += stride;
        i += 1;
    }
    reads
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case spins up an in-process cluster
        .. ProptestConfig::default()
    })]

    #[test]
    fn tiled_error_free_reads_reassemble_one_contig(
        seed in 0u64..1000,
        stride in 60usize..120,
        flip_every in 0usize..4,
    ) {
        let read_len = 200usize;
        let n_reads = 6usize;
        let glen = stride * (n_reads - 1) + read_len;
        let genome = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Seq::from_codes((0..glen).map(|_| rng.gen_range(0..4u8)).collect())
        };
        let reads = tiled_reads(&genome, read_len, stride, flip_every);
        let cfg = pipeline_cfg();
        let genome_check = genome.clone();
        let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
            contigs
        }).remove(0);

        // Exactly one contig covering the genome (or its rc), because the
        // reads tile a repeat-free random genome with unique overlaps.
        prop_assert_eq!(out.len(), 1, "expected one contig, got {}", out.len());
        let contig = &out[0].seq;
        prop_assert!(
            contig == &genome_check || *contig == genome_check.reverse_complement(),
            "contig (len {}) differs from genome (len {})",
            contig.len(),
            genome_check.len()
        );
    }

    #[test]
    fn read_ids_always_valid_and_unique(
        seed in 0u64..1000,
        depth in 6u32..12,
    ) {
        let spec = DatasetSpec {
            name: "prop",
            genome: elba::seq::sim::GenomeConfig {
                length: 6_000,
                repeat_fraction: 0.0,
                repeat_unit_len: 0,
                repeat_divergence: 0.0,
                seed,
            },
            reads: elba::seq::sim::ReadSimConfig {
                depth: depth as f64,
                mean_len: 900,
                min_len: 400,
                error_rate: 0.0,
                seed: seed ^ 0xF00D,
            },
            k: 15,
            xdrop: 12,
        };
        let (_genome, sim_reads) = spec.generate();
        let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
        let n = reads.len();
        let cfg = pipeline_cfg();
        let contigs = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
            contigs
        }).remove(0);
        let mut seen = std::collections::HashSet::new();
        for contig in &contigs {
            prop_assert!(contig.read_ids.len() >= 2);
            for &id in &contig.read_ids {
                prop_assert!((id as usize) < n, "read id {id} out of range {n}");
                prop_assert!(seen.insert(id), "read {id} reused");
            }
        }
    }
}
