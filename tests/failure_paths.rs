//! Failure-injection and edge-case integration tests: tiny inputs,
//! degenerate graphs, the large-message contiguous-datatype path, and
//! invalid configurations.

use elba::prelude::*;

#[test]
fn empty_read_set() {
    let contigs = Cluster::run(4, |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(&grid, &[], &PipelineConfig::default());
        contigs.len()
    });
    assert!(contigs.iter().all(|&n| n == 0));
}

#[test]
fn single_read_produces_no_contig() {
    // A contig needs >= 2 reads by definition (§4.4).
    let read: Seq = "ACGTACGTACGTACGTACGTACGTACGTAAACCCGGGTTT"
        .parse()
        .expect("dna");
    let contigs = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(
            &grid,
            std::slice::from_ref(&read),
            &PipelineConfig::default(),
        );
        contigs.len()
    });
    assert!(contigs.iter().all(|&n| n == 0));
}

#[test]
fn disjoint_reads_produce_no_contigs() {
    // Reads sharing no k-mers: the candidate matrix is empty.
    let spec = DatasetSpec::celegans_like(0.02, 1);
    let (_, a) = spec.generate();
    let spec_b = DatasetSpec::celegans_like(0.02, 2);
    let (_, b) = spec_b.generate();
    // take one read from each of two unrelated genomes
    let reads: Vec<Seq> = vec![a[0].seq.clone(), b[0].seq.clone()];
    let out = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let result = assemble(&grid, &reads, &PipelineConfig::default());
        (result.candidate_nnz, result.contig_stats.assembly.contigs)
    });
    assert!(out.iter().all(|&(_, contigs)| contigs == 0));
}

#[test]
fn tiny_mpi_count_limit_still_correct() {
    // Force every sequence exchange through the contiguous-datatype path
    // (the paper's 2^31-1 workaround) with an absurdly small limit.
    let spec = DatasetSpec::celegans_like(0.06, 17);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let mut cfg = PipelineConfig::for_dataset(&spec);

    let reads_a = reads.clone();
    let cfg_a = cfg.clone();
    let normal = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(&grid, &reads_a, &cfg_a);
        contigs
            .iter()
            .map(|c| c.seq.to_string())
            .collect::<Vec<_>>()
    })
    .remove(0);

    cfg.contig.count_limit = 64; // bytes!
    let reads_b = reads;
    let limited = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(&grid, &reads_b, &cfg);
        contigs
            .iter()
            .map(|c| c.seq.to_string())
            .collect::<Vec<_>>()
    })
    .remove(0);

    assert_eq!(normal, limited, "count-limit path must not change results");
}

#[test]
#[should_panic(expected = "perfect square")]
fn non_square_rank_count_is_rejected() {
    Cluster::run(6, |comm| {
        let _grid = ProcGrid::new(comm);
    });
}

#[test]
fn duplicate_reads_are_handled_as_containments() {
    // Exact duplicate reads contain each other; the pipeline must not
    // crash and must drop one of them.
    let spec = DatasetSpec::celegans_like(0.04, 23);
    let (_genome, sim_reads) = spec.generate();
    let mut reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let dup = reads[0].clone();
    reads.push(dup);
    let cfg = PipelineConfig::for_dataset(&spec);
    let out = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let result = assemble(&grid, &reads, &cfg);
        result.align_stats.contained
    });
    assert!(out[0] >= 1, "duplicate read should be flagged contained");
}

#[test]
fn all_identical_reads_collapse() {
    let base: Seq = "ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCAGTTACGGA"
        .parse()
        .expect("dna");
    let reads: Vec<Seq> = vec![base; 8];
    let mut cfg = PipelineConfig::default();
    cfg.kmer.k = 15;
    cfg.overlap.k = 15;
    cfg.overlap.min_overlap = 10;
    let out = Cluster::run(4, move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, result) = assemble_gathered(&grid, &reads, &cfg);
        (contigs.len(), result.align_stats.contained)
    });
    // identical reads mutually contain; at most a trivial contig remains
    assert!(out[0].1 >= 7 || out[0].0 <= 1);
}
