//! Failure-injection and edge-case integration tests: tiny inputs,
//! degenerate graphs, the large-message contiguous-datatype path, and
//! invalid configurations.

use elba::prelude::*;

#[test]
fn empty_read_set() {
    let contigs = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(&grid, &[], &PipelineConfig::default());
        contigs.len()
    });
    assert!(contigs.iter().all(|&n| n == 0));
}

#[test]
fn single_read_produces_no_contig() {
    // A contig needs >= 2 reads by definition (§4.4).
    let read: Seq = "ACGTACGTACGTACGTACGTACGTACGTAAACCCGGGTTT"
        .parse()
        .expect("dna");
    let contigs = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, _) = assemble_gathered(
            &grid,
            std::slice::from_ref(&read),
            &PipelineConfig::default(),
        );
        contigs.len()
    });
    assert!(contigs.iter().all(|&n| n == 0));
}

#[test]
fn disjoint_reads_produce_no_contigs() {
    // Reads sharing no k-mers: the candidate matrix is empty.
    let spec = DatasetSpec::celegans_like(0.02, 1);
    let (_, a) = spec.generate();
    let spec_b = DatasetSpec::celegans_like(0.02, 2);
    let (_, b) = spec_b.generate();
    // take one read from each of two unrelated genomes
    let reads: Vec<Seq> = vec![a[0].seq.clone(), b[0].seq.clone()];
    let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
        let grid = ProcGrid::new(comm);
        let result = assemble(&grid, &reads, &PipelineConfig::default());
        (result.candidate_nnz, result.contig_stats.assembly.contigs)
    });
    assert!(out.iter().all(|&(_, contigs)| contigs == 0));
}

#[test]
fn tiny_mpi_count_limit_still_correct() {
    // Force every sequence exchange through the contiguous-datatype path
    // (the paper's 2^31-1 workaround) with an absurdly small limit.
    let spec = DatasetSpec::celegans_like(0.06, 17);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let mut cfg = PipelineConfig::for_dataset(&spec);

    let reads_a = reads.clone();
    let cfg_a = cfg.clone();
    let normal = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads_a, &cfg_a);
            contigs
                .iter()
                .map(|c| c.seq.to_string())
                .collect::<Vec<_>>()
        })
        .remove(0);

    cfg.contig.count_limit = 64; // bytes!
    let reads_b = reads;
    let limited = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads_b, &cfg);
            contigs
                .iter()
                .map(|c| c.seq.to_string())
                .collect::<Vec<_>>()
        })
        .remove(0);

    assert_eq!(normal, limited, "count-limit path must not change results");
}

#[test]
#[should_panic(expected = "perfect square")]
fn non_square_rank_count_is_rejected() {
    Runner::new(Backend::InProcess).ranks(6).run(|comm| {
        let _grid = ProcGrid::new(comm);
    });
}

#[test]
fn duplicate_reads_are_handled_as_containments() {
    // Exact duplicate reads contain each other; the pipeline must not
    // crash and must drop one of them.
    let spec = DatasetSpec::celegans_like(0.04, 23);
    let (_genome, sim_reads) = spec.generate();
    let mut reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let dup = reads[0].clone();
    reads.push(dup);
    let cfg = PipelineConfig::for_dataset(&spec);
    let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
        let grid = ProcGrid::new(comm);
        let result = assemble(&grid, &reads, &cfg);
        result.align_stats.contained
    });
    assert!(out[0] >= 1, "duplicate read should be flagged contained");
}

#[test]
fn all_identical_reads_collapse() {
    let base: Seq = "ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCAGTTACGGA"
        .parse()
        .expect("dna");
    let reads: Vec<Seq> = vec![base; 8];
    let mut cfg = PipelineConfig::default();
    cfg.kmer.k = 15;
    cfg.overlap.k = 15;
    cfg.overlap.min_overlap = 10;
    let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
        let grid = ProcGrid::new(comm);
        let (contigs, result) = assemble_gathered(&grid, &reads, &cfg);
        (contigs.len(), result.align_stats.contained)
    });
    // identical reads mutually contain; at most a trivial contig remains
    assert!(out[0].1 >= 7 || out[0].0 <= 1);
}

// ---- transport wire format: hostile-input rejection ----
// A socket peer can die mid-write or (in principle) hand us garbage;
// the frame layer must turn every such input into a clean `WireError`,
// never a panic, an over-allocation, or a silently wrong value.

mod wire_rejection {
    use elba::comm::transport::wire::{
        FrameHeader, FrameKind, WireError, WireReader, FRAME_HEADER_BYTES, MAX_FRAME_LEN,
    };
    use elba::comm::CommMsg;

    fn valid_header_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        FrameHeader {
            kind: FrameKind::Data,
            ctx: 7,
            src: 3,
            tag: 0xbeef,
            len: 128,
        }
        .encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES);
        buf
    }

    #[test]
    fn garbage_magic_is_rejected() {
        let mut bytes = valid_header_bytes();
        bytes[0] = b'X';
        let arr: [u8; FRAME_HEADER_BYTES] = bytes.try_into().expect("size");
        assert!(matches!(
            FrameHeader::decode(&arr),
            Err(WireError::Malformed("frame magic"))
        ));
    }

    #[test]
    fn unknown_frame_kind_is_rejected() {
        let mut bytes = valid_header_bytes();
        bytes[4] = 0xff; // kind byte follows the 4-byte magic
        let arr: [u8; FRAME_HEADER_BYTES] = bytes.try_into().expect("size");
        assert!(matches!(
            FrameHeader::decode(&arr),
            Err(WireError::Malformed("frame kind"))
        ));
    }

    #[test]
    fn absurd_payload_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        FrameHeader {
            kind: FrameKind::Data,
            ctx: 0,
            src: 0,
            tag: 1,
            len: MAX_FRAME_LEN + 1,
        }
        .encode(&mut buf);
        let arr: [u8; FRAME_HEADER_BYTES] = buf.try_into().expect("size");
        assert!(matches!(
            FrameHeader::decode(&arr),
            Err(WireError::Malformed("frame length"))
        ));
    }

    #[test]
    fn truncated_payload_reports_truncation() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3, 4].wire_encode(&mut buf);
        // Cut inside the element data (past the length prefix).
        let mut reader = WireReader::new(&buf[..buf.len() - 5]);
        assert!(matches!(
            Vec::<u64>::wire_decode(&mut reader),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_vec_length_prefix_is_rejected() {
        // A length prefix claiming 2^63 elements must fail fast on the
        // MAX_VEC_ELEMS cap, not attempt a with_capacity.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 63).to_ne_bytes());
        let mut reader = WireReader::new(&buf);
        assert!(Vec::<u64>::wire_decode(&mut reader).is_err());
    }

    #[test]
    fn invalid_utf8_string_is_rejected() {
        let mut buf = Vec::new();
        vec![0xffu8, 0xfe, 0xfd].wire_encode(&mut buf);
        let mut reader = WireReader::new(&buf);
        assert!(matches!(
            String::wire_decode(&mut reader),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error_not_ignored() {
        let mut buf = Vec::new();
        42u64.wire_encode(&mut buf);
        buf.push(0);
        let mut reader = WireReader::new(&buf);
        assert_eq!(u64::wire_decode(&mut reader).expect("value decodes"), 42);
        assert!(matches!(reader.finish(), Err(WireError::Trailing(1))));
    }

    #[test]
    fn inconsistent_csr_structure_is_rejected() {
        // Structurally broken panels (indptr not matching indices) must
        // be caught by the decoder's validation, not crash a kernel.
        let good =
            elba::sparse::Csr::<f64>::from_triples(4, 4, vec![(0, 1, 1.0), (2, 3, 2.0)], |_, _| ());
        let mut buf = Vec::new();
        good.wire_encode(&mut buf);
        // nrows is the first u64 of the encoding; growing it desyncs
        // indptr.len() from nrows + 1.
        buf[..8].copy_from_slice(&9u64.to_ne_bytes());
        let mut reader = WireReader::new(&buf);
        assert!(elba::sparse::Csr::<f64>::wire_decode(&mut reader).is_err());
    }
}
