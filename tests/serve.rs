//! Integration tests for `elba serve`'s scheduling layer: typed
//! admission control, budget queueing, fault isolation (a killed job
//! fails alone), and a ≥100-job stress run proving the pool neither
//! deadlocks nor ever exceeds the host cap.

use elba::core::{JobOutcome, JobResult, JobSpec, ServeConfig, Server, SubmitError};
use elba::prelude::*;

const MIB: u64 = 1 << 20;

fn tiny(name: &str, seed: u64) -> JobSpec {
    JobSpec::sim(name, "celegans", 0.03, seed)
}

fn contig_bytes(outcome: &JobOutcome) -> Vec<String> {
    match outcome {
        JobOutcome::Completed { contigs, .. } => {
            contigs.iter().map(|c| c.seq.to_string()).collect()
        }
        JobOutcome::Failed { error, .. } => panic!("job failed: {error}"),
    }
}

/// Mirror of the server's sim-job pipeline: same dataset spec, same
/// config derivation, same rank count — the solo baseline a served job
/// must reproduce byte-for-byte.
fn solo_contigs(dataset_seed: u64, scale: f64, nranks: usize) -> Vec<String> {
    let spec = DatasetSpec::celegans_like(scale, dataset_seed);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let cfg = PipelineConfig::for_dataset(&spec).with_threads(1);
    let contigs = Runner::new(Backend::InProcess)
        .ranks(nranks)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
            contigs
        })
        .remove(0);
    contigs.iter().map(|c| c.seq.to_string()).collect()
}

#[test]
fn over_cap_submission_is_rejected_with_typed_error() {
    let server = Server::start(ServeConfig {
        groups: 1,
        group_ranks: 1,
        backend: Backend::InProcess,
        host_cap: MemBudget::bytes(64 * MIB),
        threads: 1,
    });

    // A claim larger than the whole host can never be admitted: typed
    // rejection at the door, nothing queued.
    let err = server
        .submit(tiny("too-big", 1).budget(128 * MIB))
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::BudgetExceedsHostCap {
            requested: 128 * MIB,
            cap: 64 * MIB,
        }
    );

    // Validation failures are typed too.
    assert!(matches!(
        server.submit(tiny("bad-plan", 2).with_fault("explode:everything")),
        Err(SubmitError::InvalidFaultPlan(_))
    ));
    assert!(matches!(
        server.submit(JobSpec::sim("bad-ds", "tribble", 0.03, 3)),
        Err(SubmitError::UnknownDataset(_))
    ));

    let results = server.drain();
    assert!(results.is_empty(), "rejected jobs must never run");
}

#[test]
fn budget_queueing_serializes_oversubscribed_jobs() {
    let cap = 1024 * MIB;
    let server = Server::start(ServeConfig {
        groups: 2,
        group_ranks: 1,
        backend: Backend::InProcess,
        host_cap: MemBudget::bytes(cap),
        threads: 1,
    });

    // Each job claims more than half the cap, so despite two free
    // groups the scheduler can only ever admit one at a time.
    let claim = 600 * MIB;
    let ids: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(tiny(&format!("big-{i}"), 100 + i).budget(claim))
                .unwrap()
        })
        .collect();
    for id in ids {
        assert!(server.wait(id).completed());
    }

    let peak = server.peak_admitted_bytes();
    assert!(peak <= cap, "peak admitted {peak} exceeded cap {cap}");
    assert_eq!(
        peak, claim,
        "over-half-cap jobs must serialize: exactly one admitted at a time"
    );

    let results = server.drain();
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(JobResult::completed));
}

#[test]
fn unbudgeted_job_charges_whole_cap_and_queues_behind_it() {
    let cap = 256 * MIB;
    let server = Server::start(ServeConfig {
        groups: 2,
        group_ranks: 1,
        backend: Backend::InProcess,
        host_cap: MemBudget::bytes(cap),
        threads: 1,
    });
    // Unbudgeted jobs are charged the full cap: conservative, so two of
    // them can never overlap.
    let a = server.submit(tiny("unbudgeted-a", 7)).unwrap();
    let b = server.submit(tiny("unbudgeted-b", 8)).unwrap();
    assert!(server.wait(a).completed());
    assert!(server.wait(b).completed());
    assert_eq!(server.peak_admitted_bytes(), cap);
    server.drain();
}

#[test]
fn fault_killed_job_fails_alone_and_neighbors_match_solo_runs() {
    let server = Server::start(ServeConfig {
        groups: 2,
        group_ranks: 4,
        backend: Backend::InProcess,
        host_cap: MemBudget::unlimited(),
        threads: 1,
    });

    let clean_a = server
        .submit(JobSpec::sim("clean-a", "celegans", 0.05, 41))
        .unwrap();
    let killed = server
        .submit(JobSpec::sim("killed", "celegans", 0.05, 42).with_fault("kill:1@phase:Alignment"))
        .unwrap();
    let clean_b = server
        .submit(JobSpec::sim("clean-b", "celegans", 0.05, 43))
        .unwrap();

    // The fault-killed job fails — typed as an injected kill, and its
    // group is recycled rather than wedged.
    let killed_result = server.wait(killed);
    match &killed_result.outcome {
        JobOutcome::Failed {
            killed_by_fault, ..
        } => assert!(*killed_by_fault, "failure must be typed as a fault kill"),
        JobOutcome::Completed { .. } => panic!("fault-killed job completed"),
    }

    // The server survives the kill and its neighbors are untouched:
    // contigs byte-identical to solo runs of the same job.
    let a = server.wait(clean_a);
    let b = server.wait(clean_b);
    let solo_a = solo_contigs(41, 0.05, 4);
    let solo_b = solo_contigs(43, 0.05, 4);
    assert!(!solo_a.is_empty(), "baseline produced no contigs");
    assert_eq!(contig_bytes(&a.outcome), solo_a);
    assert_eq!(contig_bytes(&b.outcome), solo_b);

    assert_eq!(server.groups_recycled(), 1);
    let results = server.drain();
    assert_eq!(results.len(), 3);
}

#[test]
fn hundred_job_stress_run_never_exceeds_cap_or_deadlocks() {
    let cap = 1024 * MIB;
    let server = Server::start(ServeConfig {
        groups: 4,
        group_ranks: 1,
        backend: Backend::InProcess,
        host_cap: MemBudget::bytes(cap),
        threads: 1,
    });

    // Mixed claim sizes, including unbudgeted (= whole-cap) jobs, so the
    // admission queue constantly alternates between packing several
    // small jobs and serializing a whole-cap one.
    let claims = [64 * MIB, 256 * MIB, 0, 600 * MIB, 128 * MIB];
    let n_jobs = 100;
    let ids: Vec<_> = (0..n_jobs)
        .map(|i| {
            let spec = JobSpec::sim(&format!("stress-{i}"), "celegans", 0.02, 1000 + i as u64)
                .budget(claims[i % claims.len()]);
            server.submit(spec).unwrap()
        })
        .collect();
    for &id in &ids {
        server.wait(id);
    }
    let peak = server.peak_admitted_bytes();
    assert!(peak <= cap, "peak admitted {peak} exceeded cap {cap}");
    assert!(
        peak >= 600 * MIB,
        "the largest single claim must have been admitted"
    );

    let results = server.drain();
    assert_eq!(results.len(), n_jobs, "every submitted job must terminate");
    for r in &results {
        assert!(r.completed(), "job {} failed in stress run", r.name);
    }
}
