//! Invariant 2 pinned across transports: the pipeline's outputs AND its
//! profiled communication volume are properties of the algorithm, not
//! of the message plane. Running the same assembly on the in-process
//! mailbox backend and on the socket backend (ranks exchanging
//! serialized frames over Unix socketpairs) must produce byte-identical
//! contigs and byte-identical per-rank wire counts in every named
//! phase, on every grid shape.

use elba::prelude::*;

fn body(comm: Comm, reads: Vec<Seq>, cfg: PipelineConfig) -> (Vec<Contig>, PipelineResult) {
    let grid = ProcGrid::new(comm);
    assemble_gathered(&grid, &reads, &cfg)
}

/// Per-rank `(phase, bytes_sent, p2p_msgs)` over named phases — the
/// full shape of the communication, not just a total.
fn wire_shape(profile: &RunProfile) -> Vec<Vec<(String, u64, u64)>> {
    let names = profile.phase_names();
    profile
        .rank_profiles()
        .iter()
        .map(|rank| {
            names
                .iter()
                .filter_map(|name| {
                    rank.phase(name)
                        .map(|p| (name.clone(), p.bytes_sent(), p.p2p_msgs))
                })
                .collect()
        })
        .collect()
}

#[test]
fn contigs_and_wire_bytes_match_across_transports() {
    let spec = DatasetSpec::celegans_like(0.05, 33);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let cfg = PipelineConfig::for_dataset(&spec);
    for p in [1usize, 4, 9] {
        let (reads_a, cfg_a) = (reads.clone(), cfg.clone());
        let (mut out_a, prof_a) = Runner::new(Backend::InProcess)
            .ranks(p)
            .run_profiled(move |comm| body(comm, reads_a.clone(), cfg_a.clone()));
        let (reads_b, cfg_b) = (reads.clone(), cfg.clone());
        let (mut out_b, prof_b) = Runner::new(Backend::Socket)
            .ranks(p)
            .run_profiled(move |comm| body(comm, reads_b.clone(), cfg_b.clone()));

        let (contigs_a, result_a) = out_a.remove(0);
        let (contigs_b, result_b) = out_b.remove(0);
        assert_eq!(contigs_a.len(), contigs_b.len(), "p={p}: contig count");
        for (ca, cb) in contigs_a.iter().zip(&contigs_b) {
            assert!(ca.seq == cb.seq, "p={p}: contig bases diverge");
            assert_eq!(ca.read_ids, cb.read_ids, "p={p}: contig walks diverge");
        }
        assert_eq!(
            result_a.n_reliable_kmers, result_b.n_reliable_kmers,
            "p={p}: reliable k-mers"
        );
        assert_eq!(
            result_a.string_graph_nnz, result_b.string_graph_nnz,
            "p={p}: string graph nnz"
        );
        assert_eq!(
            wire_shape(&prof_a),
            wire_shape(&prof_b),
            "p={p}: profiled wire traffic diverges between transports"
        );
    }
}
