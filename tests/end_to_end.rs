//! Integration tests spanning all crates: the full Algorithm 1 + 2
//! pipeline on simulated datasets, checked for quality, determinism and
//! distribution invariance.

use elba::prelude::*;

fn reads_of(spec: &DatasetSpec) -> (Seq, Vec<Seq>) {
    let (genome, sim_reads) = spec.generate();
    (genome, sim_reads.into_iter().map(|r| r.seq).collect())
}

fn canonical(contigs: &[Contig]) -> Vec<String> {
    let mut out: Vec<String> = contigs
        .iter()
        .map(|c| {
            let f = c.seq.to_string();
            let r = c.seq.reverse_complement().to_string();
            if f <= r {
                f
            } else {
                r
            }
        })
        .collect();
    out.sort();
    out
}

fn run_at(nranks: usize, reads: &[Seq], cfg: &PipelineConfig) -> Vec<Contig> {
    let reads = reads.to_vec();
    let cfg = cfg.clone();
    Runner::new(Backend::InProcess)
        .ranks(nranks)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
            contigs
        })
        .remove(0)
}

#[test]
fn low_error_dataset_assembles_with_good_quality() {
    let spec = DatasetSpec::celegans_like(0.15, 314); // 15 kb genome
    let (genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let contigs = run_at(4, &reads, &cfg);
    assert!(!contigs.is_empty());
    let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    let report = evaluate(&genome, &seqs, &QualityConfig::default());
    assert!(
        report.completeness > 60.0,
        "completeness {}",
        report.completeness
    );
    assert!(
        report.longest_contig > genome.len() / 10,
        "longest {} of {}",
        report.longest_contig,
        genome.len()
    );
}

#[test]
fn contig_set_is_invariant_across_rank_counts() {
    let spec = DatasetSpec::celegans_like(0.08, 999);
    let (_genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let c1 = canonical(&run_at(1, &reads, &cfg));
    let c4 = canonical(&run_at(4, &reads, &cfg));
    let c9 = canonical(&run_at(9, &reads, &cfg));
    assert_eq!(c1, c4, "P=1 vs P=4");
    assert_eq!(c4, c9, "P=4 vs P=9");
}

#[test]
fn contig_set_is_invariant_across_thread_counts() {
    // The intra-rank threading acceptance test: assembling with
    // `--threads 4` must produce contigs *byte-identical* to
    // `--threads 1` (exact sequence equality, not just canonical-set
    // equality), with profiled wire bytes per phase unchanged — the
    // pipeline's deterministic fixed-order merges make thread count an
    // implementation detail, and threads never enter the comm layer.
    let spec = DatasetSpec::celegans_like(0.08, 4242);
    let (_genome, reads) = reads_of(&spec);
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let cfg = PipelineConfig::for_dataset(&spec).with_threads(threads);
        let reads = reads.clone();
        let (mut outputs, profile) =
            Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
                    contigs
                        .into_iter()
                        .map(|c| c.seq.to_string())
                        .collect::<Vec<String>>()
                });
        let phase_bytes: Vec<(String, u64)> = profile
            .phase_names()
            .iter()
            .map(|name| (name.clone(), profile.total_bytes(name)))
            .collect();
        runs.push((outputs.remove(0), phase_bytes));
    }
    assert_eq!(
        runs[0].0, runs[1].0,
        "threads=1 and threads=4 contigs must be byte-identical"
    );
    assert_eq!(
        runs[0].1, runs[1].1,
        "threads must leave the profiled wire bytes untouched"
    );
}

#[test]
fn contigs_and_wire_bytes_are_invariant_across_alignment_knobs() {
    // The alignment-kernel and seed-chaining knobs are pure speed
    // levers: every (kernel, chaining, threads) combination must
    // produce contigs byte-identical to the scalar extend-every-seed
    // reference, with profiled wire bytes per phase unchanged. This is
    // the stage-level pin behind the `--xdrop-kernel`/`--seed-chaining`
    // flags (BestOnly is the one opt-in knob allowed to differ, so it
    // is exercised for quality elsewhere, not pinned here).
    let spec = DatasetSpec::celegans_like(0.08, 2026);
    let (_genome, reads) = reads_of(&spec);
    let run = |cfg: PipelineConfig| {
        let reads = reads.clone();
        let (mut outputs, profile) =
            Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
                    contigs
                        .into_iter()
                        .map(|c| c.seq.to_string())
                        .collect::<Vec<String>>()
                });
        let phase_bytes: Vec<(String, u64)> = profile
            .phase_names()
            .iter()
            .map(|name| (name.clone(), profile.total_bytes(name)))
            .collect();
        (outputs.remove(0), phase_bytes)
    };
    let base = PipelineConfig::for_dataset(&spec);
    let reference = run(base
        .clone()
        .with_xdrop_kernel(XdropKernel::Scalar)
        .seed_chaining(ChainingConfig {
            chaining: SeedChaining::All,
            chain_band: 128,
        }));
    let variants = [
        (
            "bitparallel + extend-all",
            base.clone()
                .with_xdrop_kernel(XdropKernel::BitParallel)
                .seed_chaining(ChainingConfig {
                    chaining: SeedChaining::All,
                    chain_band: 128,
                }),
        ),
        ("shipped defaults (auto + chain)", base.clone()),
        ("defaults + threads=4", base.clone().with_threads(4)),
        (
            "scalar + chain, narrow band",
            base.clone()
                .with_xdrop_kernel(XdropKernel::Scalar)
                .seed_chaining(ChainingConfig {
                    chaining: SeedChaining::Chain,
                    chain_band: 32,
                }),
        ),
    ];
    for (label, cfg) in variants {
        let got = run(cfg);
        assert_eq!(
            got.0, reference.0,
            "{label}: contigs must be byte-identical"
        );
        assert_eq!(got.1, reference.1, "{label}: wire bytes must be unchanged");
    }
}

#[test]
fn each_read_belongs_to_at_most_one_contig() {
    let spec = DatasetSpec::osativa_like(0.1, 77);
    let (_genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let contigs = run_at(4, &reads, &cfg);
    let mut seen = std::collections::HashSet::new();
    for contig in &contigs {
        assert!(
            contig.read_ids.len() >= 2,
            "contigs are chains of >= 2 reads"
        );
        for &id in &contig.read_ids {
            assert!(seen.insert(id), "read {id} appears in two contigs");
            assert!((id as usize) < reads.len());
        }
    }
}

#[test]
fn budgeted_pipeline_respects_memory_budget_and_output() {
    // The memory-budget acceptance run: a celegans-like dataset on a 2×2
    // grid with `--mem-budget`-equivalent configuration must (a) report
    // a per-phase memory high-water for every pipeline phase, (b) keep
    // the SpGEMM phase's tracked high-water within the budget, and (c)
    // assemble contigs byte-identical to the unbudgeted eager run —
    // bounded memory is a schedule change, never a result change.
    let spec = DatasetSpec::celegans_like(0.15, 314);
    let (_genome, reads) = reads_of(&spec);
    let budget_bytes: u64 = 8 << 20; // feasible: inputs alone are ~5 MB/rank
    let eager_cfg = PipelineConfig::for_dataset(&spec)
        .with_spgemm(elba::sparse::SpGemmOptions::eager())
        .kmer_exchange(KmerExchangeConfig {
            exchange: KmerExchange::Eager,
            batch_kmers: 1 << 16,
        });
    let budget_cfg =
        PipelineConfig::for_dataset(&spec).with_mem_budget(MemBudget::bytes(budget_bytes));
    assert_eq!(
        budget_cfg.overlap.spgemm.algorithm,
        elba::sparse::SpGemmAlgorithm::ColumnBatched,
        "a budget must switch SpGEMM to the column-batched schedule"
    );

    let run_profiled = |cfg: PipelineConfig| {
        let reads = reads.clone();
        let (mut outs, profile) =
            Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
                    contigs
                });
        (canonical(&outs.remove(0)), profile)
    };
    let (eager_contigs, _) = run_profiled(eager_cfg);
    let (budget_contigs, profile) = run_profiled(budget_cfg);

    for phase in ["CountKmer", "DetectOverlap", "Alignment", "TrReduction"] {
        assert!(
            profile.max_mem_hw(phase) > 0,
            "phase {phase} must report a memory high-water"
        );
    }
    let spgemm_hw = profile.max_mem_hw("DetectOverlap");
    assert!(
        spgemm_hw <= budget_bytes,
        "DetectOverlap high-water {spgemm_hw} exceeds the {budget_bytes}-byte budget"
    );
    assert_eq!(
        eager_contigs, budget_contigs,
        "budgeted contigs must be byte-identical to the unbudgeted eager run"
    );
}

#[test]
fn contig_length_is_bounded_by_member_reads() {
    let spec = DatasetSpec::celegans_like(0.1, 55);
    let (_genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    for contig in run_at(4, &reads, &cfg) {
        let member_total: usize = contig
            .read_ids
            .iter()
            .map(|&id| reads[id as usize].len())
            .sum();
        assert!(
            contig.seq.len() <= member_total,
            "contig ({}) longer than its reads combined ({})",
            contig.seq.len(),
            member_total
        );
    }
}

#[test]
fn high_error_dataset_survives_the_pipeline() {
    // 15 % error with the paper's k=17/x=7: mainly checks the noisy code
    // paths (reliable band, early x-drop stops, fuzz classification).
    let spec = DatasetSpec::hsapiens_like(0.08, 4242);
    let (_genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let reads_run = reads.clone();
    let cfg_run = cfg.clone();
    let result = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let result = assemble(&grid, &reads_run, &cfg_run);
            (
                result.align_stats.candidate_pairs,
                result.contig_stats.assembly.contigs as u64,
            )
        })
        .remove(0);
    // the pipeline must at least look at candidates and not crash;
    // at this scale and error rate contigs may be few
    assert!(result.0 > 0, "no candidate pairs at 15% error");
}

#[test]
fn pipeline_profile_contains_paper_phases() {
    let spec = DatasetSpec::celegans_like(0.05, 321);
    let (_genome, reads) = reads_of(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let (_, profile) = Runner::new(Backend::InProcess)
        .ranks(4)
        .run_profiled(move |comm| {
            let grid = ProcGrid::new(comm);
            assemble(&grid, &reads, &cfg)
        });
    let names = profile.phase_names();
    for phase in [
        "CountKmer",
        "DetectOverlap",
        "Alignment",
        "TrReduction",
        "ExtractContig",
    ] {
        assert!(
            names.iter().any(|n| n == phase),
            "missing phase {phase}: {names:?}"
        );
        assert!(profile.max_wall(phase) >= 0.0);
    }
    // contig-stage sub-phases exist for the Fig. 5 / §6.1 analyses
    for phase in [
        "ExtractContig:BranchRemoval",
        "ExtractContig:ConnectedComponent",
        "ExtractContig:GreedyPartitioning",
        "ExtractContig:InducedSubgraph",
        "ExtractContig:LocalAssembly",
    ] {
        assert!(
            names.iter().any(|n| n == phase),
            "missing sub-phase {phase}"
        );
    }
}
