//! Property tests for the transport wire codec: whatever `WireEncode`
//! produces, `WireDecode` must reconstruct exactly — for every payload
//! shape the runtime actually ships, from the empty vector through
//! multi-megabyte CSR panels — and the reader must consume the buffer
//! to the last byte (`finish` pins against silent over- or under-reads).

use elba::comm::transport::wire::WireReader;
use elba::comm::CommMsg;
use elba::sparse::Csr;
use proptest::prelude::*;

fn round_trip<T: CommMsg>(value: &T) -> T {
    let mut buf = Vec::new();
    value.wire_encode(&mut buf);
    // `nbytes` is the profile's *accounting* size (identical across
    // backends by construction); the frame encoding adds structural
    // prefixes on top of it, so it can only be at least as large.
    assert!(
        buf.len() >= value.nbytes() || value.nbytes() == 0,
        "encoding ({}) smaller than the booked nbytes ({})",
        buf.len(),
        value.nbytes()
    );
    let mut reader = WireReader::new(&buf);
    let decoded = T::wire_decode(&mut reader).expect("decode what we encoded");
    reader.finish().expect("decode must consume every byte");
    decoded
}

#[test]
fn degenerate_payloads_round_trip() {
    assert_eq!(round_trip(&Vec::<u8>::new()), Vec::<u8>::new());
    assert_eq!(round_trip(&vec![42u8]), vec![42u8]);
    assert_eq!(round_trip(&String::new()), String::new());
    assert_eq!(round_trip(&Option::<u64>::None), None);
    let empty: Csr<f64> = Csr::from_triples(0, 0, Vec::new(), |_, _| ());
    let back = round_trip(&empty);
    assert_eq!(back.nrows(), 0);
    assert_eq!(back.nnz(), 0);
}

#[test]
fn multi_mb_csr_panel_round_trips() {
    // ~4 MB of values plus indices/indptr — the size of a SUMMA stage
    // panel on the larger probes, exercising the bulk slice copies.
    let (nrows, ncols) = (4096usize, 2048usize);
    let triples: Vec<(u32, u32, f64)> = (0..nrows)
        .flat_map(|r| {
            (0..128u32).map(move |i| {
                let c = (r as u32 * 37 + i * 13) % ncols as u32;
                (r as u32, c, r as f64 + i as f64 * 0.5)
            })
        })
        .collect();
    let panel = Csr::from_triples(nrows, ncols, triples, |acc, v| *acc += v);
    assert!(panel.nbytes() > 4 << 20, "panel must be multi-MB");
    let back = round_trip(&panel);
    assert_eq!(back.nrows(), panel.nrows());
    assert_eq!(back.ncols(), panel.ncols());
    assert_eq!(back.indptr(), panel.indptr());
    assert_eq!(back.indices(), panel.indices());
    assert_eq!(back.values(), panel.values());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn byte_vectors_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn scalar_vectors_round_trip(
        words in proptest::collection::vec(any::<u64>(), 0..512),
        floats in proptest::collection::vec(any::<u32>(), 0..512),
    ) {
        // Derive f64s from u32 bits so NaN never enters an equality check.
        let floats: Vec<f64> = floats.iter().map(|&b| f64::from(b) * 0.125).collect();
        prop_assert_eq!(round_trip(&words), words);
        prop_assert_eq!(round_trip(&floats), floats);
    }

    #[test]
    fn structured_payloads_round_trip(
        id in any::<u64>(),
        codes in proptest::collection::vec(any::<u8>(), 0..128),
        flag in any::<bool>(),
    ) {
        let text: String = codes.iter().map(|&b| char::from(b'a' + b % 26)).collect();
        let value = (id, text.clone(), codes.clone(), flag.then_some(id));
        prop_assert_eq!(round_trip(&value), value);
        let nested: Vec<(u64, String)> = (0..codes.len().min(16) as u64)
            .map(|i| (i.wrapping_mul(id), text.clone()))
            .collect();
        prop_assert_eq!(round_trip(&nested), nested);
    }

    #[test]
    fn csr_panels_round_trip(
        nrows in 1usize..64,
        ncols in 1usize..64,
        seeds in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        let triples: Vec<(u32, u32, f64)> = seeds
            .iter()
            .map(|&s| {
                (
                    s % nrows as u32,
                    (s / 7) % ncols as u32,
                    f64::from(s % 1009) * 0.25,
                )
            })
            .collect();
        let panel = Csr::from_triples(nrows, ncols, triples, |acc, v| *acc += v);
        let back = round_trip(&panel);
        prop_assert_eq!(back.indptr(), panel.indptr());
        prop_assert_eq!(back.indices(), panel.indices());
        prop_assert_eq!(back.values(), panel.values());
    }

    #[test]
    fn truncation_never_panics_and_always_errs(
        words in proptest::collection::vec(any::<u64>(), 1..64),
        cut_seed in any::<u32>(),
    ) {
        // Every strict prefix of a valid encoding must decode to a clean
        // error — truncated frames (a peer dying mid-write) must never
        // produce a value or a panic.
        let mut buf = Vec::new();
        words.wire_encode(&mut buf);
        let cut = cut_seed as usize % buf.len();
        let mut reader = WireReader::new(&buf[..cut]);
        prop_assert!(Vec::<u64>::wire_decode(&mut reader).is_err());
    }
}
