//! Chaos matrix for the fault-injection harness (invariant: a dead rank
//! is a *typed, named* failure, never a hang and never a survivor
//! panic).
//!
//! Library level — for every rank r of a 4-rank run, on both the
//! in-process and the socket transport, killing r mid-pipeline turns the
//! run into an `Err(SpmdFailure)` whose entry for r is `Killed` and
//! whose every other entry is a clean `PeerGone` cascade. Survivors that
//! use the checked streaming APIs (`post_checked` / `next_checked` /
//! `wait_for_credit_checked`) observe the death as a returned
//! `CommError` and get to unwind on their own terms.
//!
//! Process level — `elba launch` supervises worker processes: a
//! SIGKILLed rank is named in the supervisor's error, survivors are
//! reaped (exit 13, not a hang), the socket rendezvous directory is
//! removed on every abort path, and a stalled launch dies at
//! `--launch-timeout` with its own exit code.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Mutex};

use elba::comm::error::raise;
use elba::comm::{CommError, FailureCause, FaultPlan, SpmdFailure};
use elba::exit;
use elba::prelude::*;

// ---- library-level chaos: thread-mode kills on both transports ----

type PipelineRun = Result<(Vec<(Vec<Contig>, PipelineResult)>, RunProfile), SpmdFailure>;

fn run_pipeline_with_plan(
    socket: bool,
    nranks: usize,
    plan: &FaultPlan,
    reads: Vec<Seq>,
    cfg: PipelineConfig,
) -> PipelineRun {
    let body = move |comm: Comm| {
        let grid = ProcGrid::new(comm);
        assemble_gathered(&grid, &reads.clone(), &cfg.clone())
    };
    if socket {
        Runner::new(Backend::Socket)
            .ranks(nranks)
            .faults(plan)
            .try_run_profiled(body)
    } else {
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .faults(plan)
            .try_run_profiled(body)
    }
}

fn small_dataset() -> (Vec<Seq>, PipelineConfig) {
    let spec = DatasetSpec::celegans_like(0.05, 33);
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let cfg = PipelineConfig::for_dataset(&spec);
    (reads, cfg)
}

/// The acceptance pin: kill every rank in turn, mid-Alignment, on both
/// backends. The run must end (no hang), the killed rank must be
/// classified `Killed`, and every other failed rank must be a `PeerGone`
/// cascade — an organic `Panic` anywhere means a survivor crashed
/// instead of unwinding cleanly.
#[test]
fn killing_each_rank_mid_alignment_is_typed_on_both_backends() {
    let (reads, cfg) = small_dataset();
    for socket in [false, true] {
        for victim in 0..4usize {
            let plan =
                FaultPlan::parse(&format!("kill:{victim}@phase:Alignment")).expect("valid plan");
            let failure = run_pipeline_with_plan(socket, 4, &plan, reads.clone(), cfg.clone())
                .expect_err("a killed rank must fail the run");
            let label = format!("socket={socket} victim={victim}");
            let kill = failure
                .rank(victim)
                .unwrap_or_else(|| panic!("{label}: killed rank missing from failure"));
            match &kill.cause {
                FailureCause::Killed(desc) => {
                    assert!(
                        desc.contains(&format!("kill:{victim}")),
                        "{label}: kill cause names the fault, got '{desc}'"
                    );
                }
                other => panic!("{label}: expected Killed, got {other:?}"),
            }
            assert_eq!(
                failure.primary().rank,
                victim,
                "{label}: root cause must sort first"
            );
            for f in &failure.failures {
                if f.rank == victim {
                    continue;
                }
                assert!(
                    matches!(f.cause, FailureCause::PeerGone(_)),
                    "{label}: survivor rank {} must unwind with PeerGone, got {:?}",
                    f.rank,
                    f.cause
                );
            }
            // The message a caller would print names the victim first.
            assert!(
                failure
                    .to_string()
                    .starts_with(&format!("rank {victim} killed")),
                "{label}: display starts with the root cause"
            );
        }
    }
}

// ---- checked streaming APIs: survivors recover without unwinding ----

const CHUNK: usize = 32;
const ROUNDS: usize = 4;

/// An all-to-all chunk exchange written entirely against the checked
/// (`Result`-returning) stream surface: post, opportunistic drain,
/// credit wait, seal, blocking drain. Returns the number of chunks
/// received, or the first `CommError` observed.
fn checked_exchange(comm: &Comm, window: usize) -> Result<u64, CommError> {
    let me = comm.rank();
    let n = comm.size();
    let mut stream = comm.ialltoallv_stream_with_window::<u64>(CHUNK, window);
    let mut chunks = 0u64;
    for round in 0..ROUNDS {
        for dst in 0..n {
            if dst == me {
                continue;
            }
            let payload: Vec<u64> = (0..CHUNK as u64)
                .map(|i| ((round as u64) << 32) | ((me as u64) << 16) | i)
                .collect();
            stream.post_checked(dst, payload)?;
            while stream.try_next_checked()?.is_some() {
                chunks += 1;
            }
            stream.wait_for_credit_checked()?;
        }
    }
    stream.finish_sends_checked()?;
    while stream.next_checked()?.is_some() {
        chunks += 1;
    }
    Ok(chunks)
}

/// S3: kill one rank at assorted points (post-count and recv-count
/// triggers, small and default-ish windows) on both backends. Survivors
/// never unwind — each records the typed error it observed through the
/// checked API and returns normally, so the `SpmdFailure` contains
/// exactly the killed rank.
#[test]
fn checked_stream_survivors_observe_typed_peer_gone() {
    let cases: &[(&str, usize)] = &[
        ("kill:2@posts:5", 2),
        ("kill:1@recvs:3", 8),
        ("kill:3@posts:9", usize::MAX),
    ];
    for socket in [false, true] {
        for &(plan_text, window) in cases {
            let plan = FaultPlan::parse(plan_text).expect("valid plan");
            let victim = plan.doomed_ranks()[0];
            let label = format!("socket={socket} plan={plan_text} window={window}");
            let seen: Arc<Mutex<Vec<(usize, CommError)>>> = Arc::new(Mutex::new(Vec::new()));
            let seen_in = Arc::clone(&seen);
            let body = move |comm: Comm| match checked_exchange(&comm, window) {
                Ok(chunks) => chunks,
                Err(e) => {
                    seen_in.lock().expect("record").push((comm.rank(), e));
                    0
                }
            };
            let failure = if socket {
                Runner::new(Backend::Socket)
                    .ranks(4)
                    .faults(&plan)
                    .try_run_profiled(body)
            } else {
                Runner::new(Backend::InProcess)
                    .ranks(4)
                    .faults(&plan)
                    .try_run_profiled(body)
            }
            .expect_err("killed rank must fail the run");

            assert_eq!(
                failure.failures.len(),
                1,
                "{label}: survivors returned cleanly, only the victim failed: {failure}"
            );
            assert!(
                matches!(failure.primary().cause, FailureCause::Killed(_)),
                "{label}: victim cause"
            );
            assert_eq!(failure.primary().rank, victim, "{label}: victim rank");

            let seen = seen.lock().expect("read");
            let recorders: std::collections::BTreeSet<usize> =
                seen.iter().map(|(r, _)| *r).collect();
            let survivors: std::collections::BTreeSet<usize> =
                (0..4).filter(|&r| r != victim).collect();
            assert_eq!(
                recorders, survivors,
                "{label}: every survivor observed a typed error"
            );
            for (rank, err) in seen.iter() {
                assert_ne!(err.peer(), *rank, "{label}: no rank blames itself");
            }
            assert!(
                seen.iter().any(|(_, err)| err.peer() == victim),
                "{label}: at least the first observer names the victim, got {seen:?}"
            );
        }
    }
}

/// A severed link is sender-visible: once the trigger fires, posting
/// across the cut returns `PeerGone` naming the unreachable peer (the
/// wire itself is cut, so both endpoints see the other as gone).
#[test]
fn severed_link_fails_the_sender_with_typed_error() {
    let plan = FaultPlan::parse("sever:0-1@posts:2").expect("valid plan");
    let seen: Arc<Mutex<Vec<(usize, CommError)>>> = Arc::new(Mutex::new(Vec::new()));
    let seen_in = Arc::clone(&seen);
    let failure = Runner::new(Backend::InProcess)
        .ranks(2)
        .faults(&plan)
        .try_run_profiled(move |comm| {
            match checked_exchange(&comm, usize::MAX) {
                Ok(chunks) => chunks,
                Err(e) => {
                    seen_in
                        .lock()
                        .expect("record")
                        .push((comm.rank(), e.clone()));
                    // Re-raise so the peer (blocked waiting on the cut link)
                    // is torn down instead of parking forever.
                    raise(e)
                }
            }
        })
        .expect_err("a severed link must fail the run");
    for f in &failure.failures {
        assert!(
            matches!(f.cause, FailureCause::PeerGone(_)),
            "sever is a connectivity failure, not a kill: {:?}",
            f.cause
        );
    }
    let seen = seen.lock().expect("read");
    assert!(!seen.is_empty(), "at least one endpoint hit the cut");
    for (rank, err) in seen.iter() {
        assert_eq!(err.peer(), 1 - rank, "each endpoint names the other");
    }
}

/// Seeded jitter is a pure scheduling perturbation: contigs and the
/// per-rank per-phase wire bytes are identical to a fault-free run.
#[test]
fn seeded_jitter_preserves_contigs_and_wire_bytes() {
    let (reads, cfg) = small_dataset();
    let (reads_a, cfg_a) = (reads.clone(), cfg.clone());
    let (mut clean, clean_prof) =
        Runner::new(Backend::InProcess)
            .ranks(4)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                assemble_gathered(&grid, &reads_a.clone(), &cfg_a.clone())
            });
    let plan = FaultPlan::parse("seed:9;delay:25").expect("valid plan");
    let (mut jittered, jitter_prof) =
        run_pipeline_with_plan(false, 4, &plan, reads, cfg).expect("jitter alone kills nobody");

    let (clean_contigs, _) = clean.remove(0);
    let (jitter_contigs, _) = jittered.remove(0);
    assert_eq!(clean_contigs.len(), jitter_contigs.len(), "contig count");
    for (a, b) in clean_contigs.iter().zip(&jitter_contigs) {
        assert!(a.seq == b.seq, "contig bases diverge under jitter");
    }
    assert_eq!(
        wire_shape(&clean_prof),
        wire_shape(&jitter_prof),
        "jitter must be invisible to the wire-byte model"
    );
}

/// Per-rank `(phase, bytes_sent, p2p_msgs)` over named phases.
fn wire_shape(profile: &RunProfile) -> Vec<Vec<(String, u64, u64)>> {
    let names = profile.phase_names();
    profile
        .rank_profiles()
        .iter()
        .map(|rank| {
            names
                .iter()
                .filter_map(|name| {
                    rank.phase(name)
                        .map(|p| (name.clone(), p.bytes_sent(), p.p2p_msgs))
                })
                .collect()
        })
        .collect()
}

// ---- process-level chaos: `elba launch` supervision ----

fn elba_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elba"))
}

/// Fresh scratch directory under the system temp dir; removed and
/// recreated so reruns start clean.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elba-fault-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Simulate a small read set into `dir` and return the reads path.
fn simulate_reads(dir: &Path) -> PathBuf {
    let reads = dir.join("reads.fa");
    let status = elba_bin()
        .args([
            "simulate",
            "--dataset",
            "celegans",
            "--scale",
            "0.05",
            "--seed",
            "33",
        ])
        .arg("--reads")
        .arg(&reads)
        .arg("--genome")
        .arg(dir.join("genome.fa"))
        .status()
        .expect("run elba simulate");
    assert!(status.success(), "simulate failed");
    reads
}

struct LaunchOutcome {
    code: i32,
    stderr: String,
}

fn launch(dir: &Path, reads: &Path, socket_dir: &Path, extra: &[&str]) -> LaunchOutcome {
    let mut cmd = elba_bin();
    cmd.args(["launch", "--ranks", "4", "--transport", "socket"])
        .arg("--socket-dir")
        .arg(socket_dir)
        .args(extra)
        .args(["--", "assemble", "--k", "17"])
        .arg("--reads")
        .arg(reads)
        .arg("--out")
        .arg(dir.join("contigs.fa"));
    let out = cmd.output().expect("run elba launch");
    LaunchOutcome {
        code: out.status.code().expect("launch not signal-killed"),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// SIGKILL each rank of a real socket launch in turn. The supervisor
/// must exit `RANK_FAILED`, name the signaled rank as the root cause,
/// reap the survivors (no hang, no stray panic output), and remove the
/// rendezvous directory even though the launch aborted.
#[test]
fn sigkilled_worker_is_named_and_rendezvous_dir_removed() {
    let dir = scratch("sigkill");
    let reads = simulate_reads(&dir);
    for victim in 0..4usize {
        let sock = dir.join(format!("sock-{victim}"));
        let fault = format!("sigkill:{victim}@phase:Alignment");
        let out = launch(&dir, &reads, &sock, &["--fault", &fault]);
        assert_eq!(
            out.code,
            i32::from(exit::RANK_FAILED),
            "victim={victim}: stderr:\n{}",
            out.stderr
        );
        assert!(
            out.stderr.contains(&format!("rank {victim}")) && out.stderr.contains("signal 9"),
            "victim={victim}: supervisor names the signaled rank:\n{}",
            out.stderr
        );
        assert!(
            !out.stderr.contains("panicked at"),
            "victim={victim}: survivors exit cleanly, no panic spew:\n{}",
            out.stderr
        );
        assert!(
            !sock.exists(),
            "victim={victim}: rendezvous dir must be removed on abort"
        );
    }
}

/// A soft (`kill:`) fault in a worker process exits with the dedicated
/// `FAULT_KILLED` code, and the supervisor's taxonomy distinguishes it
/// from the `PEER_GONE` cascade exits of the survivors.
#[test]
fn soft_killed_worker_maps_to_fault_killed_exit() {
    let dir = scratch("softkill");
    let reads = simulate_reads(&dir);
    let sock = dir.join("sock");
    let out = launch(&dir, &reads, &sock, &["--fault", "kill:1@phase:Alignment"]);
    assert_eq!(
        out.code,
        i32::from(exit::RANK_FAILED),
        "stderr:\n{}",
        out.stderr
    );
    assert!(
        out.stderr.contains("rank 1") && out.stderr.contains("killed by fault plan"),
        "root cause is the fault-killed rank:\n{}",
        out.stderr
    );
    assert!(!sock.exists(), "rendezvous dir removed");
}

/// Workers stalled by heavy injected jitter are killed when
/// `--launch-timeout` expires; the supervisor exits with the dedicated
/// timeout code and still cleans up the rendezvous directory.
#[test]
fn launch_timeout_reaps_stalled_workers() {
    let dir = scratch("timeout");
    let reads = simulate_reads(&dir);
    let sock = dir.join("sock");
    let out = launch(
        &dir,
        &reads,
        &sock,
        &["--fault", "delay:500000", "--launch-timeout", "1"],
    );
    assert_eq!(
        out.code,
        i32::from(exit::LAUNCH_TIMEOUT),
        "stderr:\n{}",
        out.stderr
    );
    assert!(!sock.exists(), "rendezvous dir removed after timeout kill");
}

/// Fault-plan validation happens in the supervisor before anything is
/// spawned: a syntax error or an out-of-range target rank is a usage
/// error, not four workers dying with the same parse message.
#[test]
fn malformed_or_out_of_range_fault_plan_is_usage_error() {
    let dir = scratch("badplan");
    let reads = dir.join("never-read.fa"); // validated before any I/O
    for bad in ["kill:banana", "kill:7@posts:3", "sever:1-1"] {
        let sock = dir.join("sock");
        let out = launch(&dir, &reads, &sock, &["--fault", bad]);
        assert_eq!(
            out.code,
            i32::from(exit::USAGE),
            "plan '{bad}' must be rejected up front, stderr:\n{}",
            out.stderr
        );
    }
}
