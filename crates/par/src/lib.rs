//! # elba-par — intra-rank threaded kernels for ELBA-RS
//!
//! ELBA is hybrid parallel: distributed SpGEMM *across* processes and
//! threaded local kernels *within* each process. The comm layer's
//! simulated ranks are single OS threads; this crate supplies the inner
//! level — a minimal scoped, work-stealing (chunk self-scheduling)
//! parallel-map substrate with **no dependencies beyond `std`**, the
//! same offline shim discipline as `crates/vendor`.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Every entry point returns results in *task
//!    order*, regardless of which worker computed what and when. Callers
//!    (the local SpGEMM multiply, the x-drop alignment batch, the k-mer
//!    scan) merge those results in fixed order, so output bytes are
//!    identical across thread counts.
//! 2. **No daemon threads.** Workers are spawned inside
//!    [`std::thread::scope`] per call and joined before it returns: a
//!    rank that parallelizes a kernel is *blocked* for the kernel's
//!    duration, so worker time books to the owning rank's active
//!    profiling phase automatically, and workers can never outlive a
//!    kernel and race a communication call. Threads never touch the comm
//!    layer — only the rank thread posts or receives.
//! 3. **Caller participates.** Worker 0 is the calling thread itself;
//!    `threads = 1` spawns nothing and runs the exact serial code path.
//!
//! Scheduling is chunked self-scheduling (each idle worker atomically
//! claims the next unclaimed task — stealing from a shared queue head),
//! which load-balances irregular tasks (sparse rows, alignment pairs)
//! without per-task channels or a persistent pool.
//!
//! The global [`ElbaPar`] knob holds the process-wide default thread
//! count (what the `elba` CLI's `--threads` sets); config structs store
//! `0` to mean "inherit the global knob" so library tests can pin
//! explicit values without racing on process state.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default intra-rank thread count (1 = serial, the
/// historical behavior). See [`ElbaPar`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// The global intra-rank threading knob.
///
/// `ElbaPar::set_threads(n)` is called once at process start (the `elba`
/// CLI's `--threads`, a bench harness's setup); kernels resolve their
/// per-config value through [`ElbaPar::resolve`], where a stored `0`
/// means "use the global knob". Library tests always pass explicit
/// nonzero values, so parallel test threads never race on this state.
pub struct ElbaPar;

impl ElbaPar {
    /// Set the process-wide default worker count (clamped to ≥ 1).
    pub fn set_threads(n: usize) {
        GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// The process-wide default worker count.
    pub fn threads() -> usize {
        GLOBAL_THREADS.load(Ordering::Relaxed)
    }

    /// Resolve a config-stored thread count: `0` inherits the global
    /// knob, anything else is used as-is (clamped to ≥ 1).
    pub fn resolve(configured: usize) -> usize {
        if configured == 0 {
            Self::threads()
        } else {
            configured
        }
    }
}

/// Run `f(worker_index, &mut states[worker_index])` once per worker, one
/// worker per element of `states`, and return the results in worker
/// order. Worker 0 runs on the calling thread; workers `1..n` are
/// scoped threads joined before return. This is the primitive the
/// self-scheduling maps are built on; use it directly when each worker
/// needs its own long-lived scratch (an SpGEMM sparse accumulator, an
/// x-drop workspace).
///
/// A panic on any worker propagates to the caller after all workers are
/// joined (no detached threads, no lost panics).
pub fn scope_with<S, R, F>(states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let n = states.len();
    match n {
        0 => Vec::new(),
        1 => vec![f(0, &mut states[0])],
        _ => {
            let mut iter = states.iter_mut();
            let mine = iter.next().expect("n >= 2");
            std::thread::scope(|scope| {
                let handles: Vec<_> = iter
                    .enumerate()
                    .map(|(i, state)| {
                        let f = &f;
                        scope.spawn(move || f(i + 1, state))
                    })
                    .collect();
                let mut results = Vec::with_capacity(n);
                results.push(f(0, mine));
                for handle in handles {
                    results.push(
                        handle
                            .join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                    );
                }
                results
            })
        }
    }
}

/// Self-scheduling indexed map with per-worker scratch: run `f(i, &mut
/// scratch)` for every `i in 0..n`, tasks claimed atomically by up to
/// `states.len()` workers, results returned **in task order** (the
/// determinism contract). With one state (or `n <= 1`) this is a plain
/// serial loop over `states[0]`.
pub fn run_indexed_with<S, R, F>(n: usize, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    assert!(!states.is_empty(), "need at least one worker state");
    let workers = states.len().min(n.max(1));
    if workers <= 1 {
        let state = &mut states[0];
        return (0..n).map(|i| f(i, state)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Vec<Vec<(usize, R)>> = scope_with(&mut states[..workers], |_, state| {
        let mut mine = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            mine.push((i, f(i, state)));
        }
        mine
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in collected.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} ran twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every task claimed exactly once"))
        .collect()
}

/// Stateless [`run_indexed_with`]: `f(i)` for `i in 0..n` on up to
/// `threads` workers, results in task order.
pub fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    let mut states = vec![(); workers];
    run_indexed_with(n, &mut states, |i, ()| f(i))
}

/// Split `range` into up to `chunks` contiguous sub-ranges of
/// near-equal size (the first `len % chunks` ranges are one longer).
/// Deterministic for a given `(range, chunks)`; never returns an empty
/// sub-range.
pub fn chunk_ranges(range: Range<usize>, chunks: usize) -> Vec<Range<usize>> {
    let len = range.len();
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = range.start;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, range.end);
    out
}

/// Parallel map over contiguous chunks of a slice: `items` is split
/// into roughly `threads × OVERDECOMPOSE` chunks of at least
/// `min_chunk` items, each chunk is mapped by `f(chunk_start, chunk)`
/// on a self-scheduled worker, and the per-chunk results come back **in
/// chunk order** — concatenating them reproduces the serial sweep
/// exactly.
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = overdecomposed_ranges(0..items.len(), threads, min_chunk);
    run_indexed(ranges.len(), threads, |ci| {
        let r = ranges[ci].clone();
        f(r.start, &items[r])
    })
}

/// Chunk ranges for a self-scheduled sweep: over-decompose by
/// [`OVERDECOMPOSE`]× the worker count (so stragglers re-balance) while
/// keeping every chunk at least `min_chunk` long (so tiny tasks don't
/// drown in scheduling overhead).
pub fn overdecomposed_ranges(
    range: Range<usize>,
    threads: usize,
    min_chunk: usize,
) -> Vec<Range<usize>> {
    let len = range.len();
    let threads = threads.max(1);
    let max_chunks = len / min_chunk.max(1);
    let chunks = (threads * OVERDECOMPOSE).clamp(1, max_chunks.max(1));
    chunk_ranges(range, chunks)
}

/// Chunks per worker in [`overdecomposed_ranges`]: enough slack for the
/// atomic claim loop to re-balance irregular tasks, small enough that
/// per-chunk result buffers stay negligible.
pub const OVERDECOMPOSE: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_knob_defaults_to_serial() {
        // Do not mutate the global here: tests share the process.
        assert_eq!(ElbaPar::resolve(0), ElbaPar::threads());
        assert_eq!(ElbaPar::resolve(3), 3);
    }

    #[test]
    fn scope_with_runs_every_worker_once() {
        let mut states = vec![0u64; 5];
        let ids = scope_with(&mut states, |w, s| {
            *s += 1;
            w
        });
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(states, vec![1; 5]);
    }

    #[test]
    fn run_indexed_preserves_task_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_with_gives_each_worker_its_own_state() {
        let mut scratch = vec![Vec::<usize>::new(); 4];
        let out = run_indexed_with(100, &mut scratch, |i, mine| {
            mine.push(i);
            i
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        // Every task landed in exactly one worker's log.
        let mut all: Vec<usize> = scratch.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        for (len, chunks) in [(10usize, 3usize), (1, 5), (7, 7), (100, 1), (0, 4)] {
            let ranges = chunk_ranges(0..len, chunks);
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                assert!(!r.is_empty());
                covered += r.len();
                expect_start = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn par_chunks_concatenation_matches_serial() {
        let items: Vec<u32> = (0..1000).collect();
        let serial: u64 = items.iter().map(|&x| x as u64).sum();
        for threads in [1usize, 2, 4] {
            let partials = par_chunks(&items, threads, 16, |start, chunk| {
                (start, chunk.iter().map(|&x| x as u64).sum::<u64>())
            });
            // Chunk order is ascending start offsets.
            assert!(partials.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(partials.iter().map(|&(_, s)| s).sum::<u64>(), serial);
        }
    }

    #[test]
    fn min_chunk_respected() {
        let ranges = overdecomposed_ranges(0..10, 8, 4);
        assert!(ranges.iter().all(|r| r.len() >= 4 || ranges.len() == 1));
        assert!(ranges.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let mut states = vec![(); 3];
        let _ = run_indexed_with(16, &mut states, |i, ()| {
            if i == 7 {
                panic!("worker boom");
            }
            i
        });
    }
}
