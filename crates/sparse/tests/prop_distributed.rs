//! Property tests for the distributed sparse layer: SUMMA against the
//! dense oracle, transpose involution, distributed-vector primitives and
//! the Fig. 2 exchange, across random shapes and rank counts.

use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_sparse::dense::Dense;
use elba_sparse::semiring::PlusTimes;
use elba_sparse::{DistMat, DistVec};
use proptest::prelude::*;

fn dense_from(nrows: usize, ncols: usize, triples: &[(u64, u64, f64)]) -> Dense {
    let mut d = Dense::zeros(nrows, ncols);
    for &(r, c, v) in triples {
        d.set(r as usize, c as usize, v);
    }
    d
}

/// Sparse triples from a proptest-generated entry list (dedup last-wins).
fn to_triples(nrows: usize, ncols: usize, entries: &[(usize, usize, i8)]) -> Vec<(u64, u64, f64)> {
    let mut map = std::collections::BTreeMap::new();
    for &(r, c, v) in entries {
        if v != 0 {
            map.insert((r % nrows, c % ncols), v as f64);
        }
    }
    map.into_iter()
        .map(|((r, c), v)| (r as u64, c as u64, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn summa_equals_dense_reference(
        p_idx in 0usize..3,
        n in 1usize..14,
        k in 1usize..14,
        m in 1usize..14,
        a_entries in proptest::collection::vec((0usize..20, 0usize..20, -3i8..4), 0..60),
        b_entries in proptest::collection::vec((0usize..20, 0usize..20, -3i8..4), 0..60),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let a_triples = to_triples(n, k, &a_entries);
        let b_triples = to_triples(k, m, &b_entries);
        let want = dense_from(n, k, &a_triples).matmul(&dense_from(k, m, &b_triples));
        let (at, bt) = (a_triples.clone(), b_triples.clone());
        let got_triples = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine_a = if grid.world().rank() == 0 { at.clone() } else { Vec::new() };
            let mine_b = if grid.world().rank() == 0 { bt.clone() } else { Vec::new() };
            let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
            let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
            let c = a.spgemm(&grid, &b, &PlusTimes);
            c.gather_triples(&grid)
        }).remove(0);
        // SUMMA may produce explicit zeros from cancellation; compare densely.
        let got = dense_from(n, m, &got_triples);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn distributed_transpose_is_involution(
        p_idx in 0usize..3,
        n in 1usize..16,
        m in 1usize..16,
        entries in proptest::collection::vec((0usize..20, 0usize..20, 1i8..4), 0..50),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let triples = to_triples(n, m, &entries);
        let t_in = triples.clone();
        let (round_trip, transposed) = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine = if grid.world().rank() == 0 { t_in.clone() } else { Vec::new() };
            let a = DistMat::from_triples(&grid, n, m, mine, |_, _| unreachable!());
            let at = a.transpose(&grid);
            let att = at.transpose(&grid);
            (att.gather_triples(&grid), at.gather_triples(&grid))
        }).remove(0);
        let mut got = round_trip;
        got.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut want = triples.clone();
        want.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        prop_assert_eq!(got, want);
        // and single transpose swaps coordinates
        let mut tr = transposed;
        tr.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut want_t: Vec<(u64, u64, f64)> = triples.iter().map(|&(r, c, v)| (c, r, v)).collect();
        want_t.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        prop_assert_eq!(tr, want_t);
    }

    #[test]
    fn row_degrees_match_serial(
        p_idx in 0usize..3,
        n in 1usize..20,
        entries in proptest::collection::vec((0usize..24, 0usize..24, 1i8..2), 0..60),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let triples = to_triples(n, n, &entries);
        let mut want = vec![0u64; n];
        for &(r, _, _) in &triples {
            want[r as usize] += 1;
        }
        let t_in = triples.clone();
        let got = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine = if grid.world().rank() == 0 { t_in.clone() } else { Vec::new() };
            let m = DistMat::from_triples(&grid, n, n, mine, |_, _| unreachable!());
            m.row_degrees(&grid).to_global(&grid)
        }).remove(0);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dist_vec_gather_returns_requested_order(
        p_idx in 0usize..3,
        n in 1usize..40,
        queries in proptest::collection::vec(0usize..100, 0..30),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let indices: Vec<usize> = queries.iter().map(|&q| q % n).collect();
        let idx = indices.clone();
        let got = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, n, |g| g as u64 * 7 + 3);
            // only rank 0 issues this query set; others ask for nothing
            if grid.world().rank() == 0 {
                v.gather(&grid, &idx)
            } else {
                v.gather(&grid, &[])
            }
        }).remove(0);
        let want: Vec<u64> = indices.iter().map(|&g| g as u64 * 7 + 3).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fetch_aligned_always_covers_block_ranges(
        p_idx in 0usize..3,
        n in 1usize..60,
    ) {
        let p = [1usize, 4, 9][p_idx];
        let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, n, |g| g as u64 + 11);
            let (rows, cols) = v.fetch_aligned(&grid);
            let row_range = v.layout().block_range(grid.myrow());
            let col_range = v.layout().block_range(grid.mycol());
            rows.len() == row_range.len()
                && cols.len() == col_range.len()
                && row_range.zip(rows).all(|(g, val)| val == g as u64 + 11)
                && col_range.zip(cols).all(|(g, val)| val == g as u64 + 11)
        });
        prop_assert!(ok.iter().all(|&x| x));
    }

    #[test]
    fn mask_rows_cols_equals_serial_filter(
        p_idx in 0usize..2,
        n in 2usize..16,
        entries in proptest::collection::vec((0usize..20, 0usize..20, 1i8..2), 0..40),
        masked in proptest::collection::vec(0usize..20, 0..6),
    ) {
        let p = [1usize, 4][p_idx];
        let triples = to_triples(n, n, &entries);
        let mask: Vec<bool> = (0..n).map(|g| masked.iter().any(|&m| m % n == g)).collect();
        let want: Vec<(u64, u64)> = triples
            .iter()
            .filter(|&&(r, c, _)| !mask[r as usize] && !mask[c as usize])
            .map(|&(r, c, _)| (r, c))
            .collect();
        let (t_in, m_in) = (triples.clone(), mask.clone());
        let got = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine = if grid.world().rank() == 0 { t_in.clone() } else { Vec::new() };
            let mat = DistMat::from_triples(&grid, n, n, mine, |_, _| unreachable!());
            let mask_vec = DistVec::from_global(&grid, &m_in);
            let masked = mat.mask_rows_cols(&grid, &mask_vec);
            let mut got: Vec<(u64, u64)> =
                masked.gather_triples(&grid).into_iter().map(|(r, c, _)| (r, c)).collect();
            got.sort_unstable();
            got
        }).remove(0);
        let mut want_sorted = want;
        want_sorted.sort_unstable();
        prop_assert_eq!(got, want_sorted);
    }
}
