//! Proof that the SUMMA stage broadcasts are zero-copy: a value type
//! that counts its `Clone` calls flows through every distributed
//! schedule, and the count must not move during the multiply — stage
//! panels travel as `Arc` clones of the owners' resident blocks (no
//! root-side pack, no per-child deep copy), and the local kernels build
//! outputs from references.

use std::sync::atomic::{AtomicUsize, Ordering};

use elba_comm::{Backend, Runner};
use elba_comm::{CommMsg, ProcGrid};
use elba_sparse::semiring::Semiring;
use elba_sparse::{DistMat, SpGemmOptions};

/// Total `Tick::clone` calls across all rank threads.
static CLONES: AtomicUsize = AtomicUsize::new(0);

#[derive(Debug, PartialEq)]
struct Tick(u64);

impl Clone for Tick {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Tick(self.0)
    }
}

impl CommMsg for Tick {
    fn nbytes(&self) -> usize {
        8
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
    }

    fn wire_decode(
        r: &mut elba_comm::transport::wire::WireReader<'_>,
    ) -> Result<Self, elba_comm::transport::wire::WireError> {
        Ok(Tick(u64::wire_decode(r)?))
    }
}

/// Plus-times over `Tick`, building every product from references — any
/// clone observed during a multiply therefore comes from payload
/// copying in the schedule, not from the semiring.
struct TickPlusTimes;

impl Semiring for TickPlusTimes {
    type A = Tick;
    type B = Tick;
    type Out = Tick;

    fn multiply(&self, a: &Tick, b: &Tick) -> Option<Tick> {
        Some(Tick(a.0 * b.0))
    }

    fn add(&self, acc: &mut Tick, other: Tick) {
        acc.0 += other.0;
    }
}

#[test]
fn summa_schedules_deep_copy_no_payloads() {
    for p in [4usize, 9] {
        for (label, opts) in [
            ("eager", SpGemmOptions::eager()),
            ("pipelined", SpGemmOptions::pipelined()),
            ("blocked", SpGemmOptions::blocked(8)),
            ("column_batched", SpGemmOptions::column_batched(8, None)),
            (
                "column_batched_budget",
                SpGemmOptions::column_batched(8, Some(4 << 10)),
            ),
            ("layered2", SpGemmOptions::layered(2)),
            ("layered3", SpGemmOptions::layered(3)),
        ] {
            let checks = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let (n, k) = (30usize, 24usize);
                let triples: Vec<(u64, u64, Tick)> = if grid.world().rank() == 0 {
                    (0..n)
                        .flat_map(|r| {
                            (0..4).map(move |i| {
                                (
                                    r as u64,
                                    ((r * 7 + i * 5) % k) as u64,
                                    Tick(1 + (r % 3) as u64),
                                )
                            })
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let a = DistMat::from_triples(&grid, n, k, triples, |acc, v: Tick| acc.0 += v.0);
                // Building Aᵀ clones values (the transpose exchange owns
                // copies); the claim under test starts at the multiply.
                let at = a.transpose(&grid);
                grid.world().barrier();
                let before = CLONES.load(Ordering::SeqCst);
                let c = a.spgemm_with(&grid, &at, &TickPlusTimes, &opts);
                grid.world().barrier();
                let after = CLONES.load(Ordering::SeqCst);
                let checksum: u64 = c.local().values().iter().map(|t| t.0).sum();
                (after - before, checksum, c.local().nnz())
            });
            let cloned: usize = checks.iter().map(|&(d, _, _)| d).sum();
            assert_eq!(
                cloned, 0,
                "p={p} {label}: {cloned} payload deep-copies during the multiply"
            );
            let total: u64 = checks.iter().map(|&(_, s, _)| s).sum();
            assert!(total > 0, "p={p} {label}: product must be non-trivial");
        }
    }
}

#[test]
fn schedules_agree_on_tick_product() {
    // Sanity companion: the no-clone semiring computes the same product
    // under every schedule (checksums compare across schedules).
    let mut sums = Vec::new();
    for opts in [
        SpGemmOptions::eager(),
        SpGemmOptions::pipelined(),
        SpGemmOptions::blocked(4),
        SpGemmOptions::column_batched(4, Some(2 << 10)),
        SpGemmOptions::layered(2),
    ] {
        let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let triples: Vec<(u64, u64, Tick)> = if grid.world().rank() == 0 {
                (0..20u64)
                    .map(|r| (r % 10, (r * 3) % 8, Tick(r + 1)))
                    .collect()
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, 10, 8, triples, |acc, v: Tick| acc.0 += v.0);
            let at = a.transpose(&grid);
            let c = a.spgemm_with(&grid, &at, &TickPlusTimes, &opts);
            c.local().values().iter().map(|t| t.0).sum::<u64>()
        });
        sums.push(out.iter().sum::<u64>());
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}
