//! Property tests pinning the SUMMA schedule equivalence: the pipelined,
//! blocked, column-batched, layered, and auto-picked SpGEMM paths must
//! produce results *identical* to the eager reference — same structure
//! including
//! explicit zeros, same values — on random matrices across 1×1, 2×2,
//! and 3×3 process grids. The schedules may only differ in overlap and
//! peak memory, never output; tiny byte budgets force the column-batched
//! schedule through many single-column rounds, the worst case for a
//! concatenation bug.

use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_sparse::semiring::{MinPlus, PlusTimes};
use elba_sparse::{DistMat, SpGemmOptions};
use proptest::prelude::*;

/// Sparse triples from a proptest-generated entry list (dedup last-wins).
fn to_triples(nrows: usize, ncols: usize, entries: &[(usize, usize, i8)]) -> Vec<(u64, u64, f64)> {
    let mut map = std::collections::BTreeMap::new();
    for &(r, c, v) in entries {
        if v != 0 {
            map.insert((r % nrows, c % ncols), v as f64);
        }
    }
    map.into_iter()
        .map(|((r, c), v)| (r as u64, c as u64, v))
        .collect()
}

/// Run `A ⊗ B` on a p-rank grid under `opts`, returning the gathered,
/// sorted triple list (exact structure, explicit zeros included).
fn run_schedule(
    p: usize,
    n: usize,
    k: usize,
    m: usize,
    a_triples: &[(u64, u64, f64)],
    b_triples: &[(u64, u64, f64)],
    opts: SpGemmOptions,
) -> Vec<(u64, u64, f64)> {
    let (at, bt) = (a_triples.to_vec(), b_triples.to_vec());
    let mut got = Runner::new(Backend::InProcess)
        .ranks(p)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine_a = if grid.world().rank() == 0 {
                at.clone()
            } else {
                Vec::new()
            };
            let mine_b = if grid.world().rank() == 0 {
                bt.clone()
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
            let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
            a.spgemm_with(&grid, &b, &PlusTimes, &opts)
                .gather_triples(&grid)
        })
        .remove(0);
    got.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    got
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn pipelined_and_blocked_equal_eager(
        p_idx in 0usize..3,
        n in 1usize..14,
        k in 1usize..14,
        m in 1usize..14,
        batch in 1usize..8,
        c in 1usize..5,
        budget_raw in 0u64..4000,
        a_entries in proptest::collection::vec((0usize..20, 0usize..20, -3i8..4), 0..70),
        b_entries in proptest::collection::vec((0usize..20, 0usize..20, -3i8..4), 0..70),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let budget = (budget_raw > 0).then_some(budget_raw); // 0 = unbudgeted
        let a_triples = to_triples(n, k, &a_entries);
        let b_triples = to_triples(k, m, &b_entries);
        let eager =
            run_schedule(p, n, k, m, &a_triples, &b_triples, SpGemmOptions::eager());
        let pipelined =
            run_schedule(p, n, k, m, &a_triples, &b_triples, SpGemmOptions::pipelined());
        let blocked =
            run_schedule(p, n, k, m, &a_triples, &b_triples, SpGemmOptions::blocked(batch));
        let column_batched = run_schedule(
            p, n, k, m, &a_triples, &b_triples,
            SpGemmOptions::column_batched(batch, budget),
        );
        prop_assert_eq!(&pipelined, &eager, "pipelined != eager (p={})", p);
        prop_assert_eq!(&blocked, &eager, "blocked(batch={}) != eager (p={})", batch, p);
        prop_assert_eq!(
            &column_batched, &eager,
            "column_batched(batch={}, budget={:?}) != eager (p={})", batch, budget, p
        );
        // c sweeps past q on every grid here, exercising the clamp; c=1
        // is the pipelined dispatch.
        let layered =
            run_schedule(p, n, k, m, &a_triples, &b_triples, SpGemmOptions::layered(c));
        prop_assert_eq!(&layered, &eager, "layered(c={}) != eager (p={})", c, p);
        let auto =
            run_schedule(p, n, k, m, &a_triples, &b_triples, SpGemmOptions::auto());
        prop_assert_eq!(&auto, &eager, "auto != eager (p={})", p);
    }

    #[test]
    fn schedules_agree_on_aat(
        p_idx in 0usize..3,
        n in 1usize..12,
        k in 1usize..16,
        entries in proptest::collection::vec((0usize..16, 0usize..24, 1i8..3), 0..60),
    ) {
        // The overlap-detection shape: square output from A · Aᵀ.
        let p = [1usize, 4, 9][p_idx];
        let triples = to_triples(n, k, &entries);
        let run = |opts: SpGemmOptions| {
            let t = triples.clone();
            let mut got = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let mine = if grid.world().rank() == 0 { t.clone() } else { Vec::new() };
                let a = DistMat::from_triples(&grid, n, k, mine, |_, _| unreachable!());
                let at = a.transpose(&grid);
                a.spgemm_with(&grid, &at, &PlusTimes, &opts).gather_triples(&grid)
            })
            .remove(0);
            got.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
            got
        };
        let eager = run(SpGemmOptions::eager());
        prop_assert_eq!(&run(SpGemmOptions::pipelined()), &eager);
        prop_assert_eq!(&run(SpGemmOptions::blocked(2)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::column_batched(2, Some(256))), &eager);
        prop_assert_eq!(&run(SpGemmOptions::column_batched(1024, None)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::layered(2)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::layered(3)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::auto()), &eager);
    }

    #[test]
    fn schedules_agree_under_min_plus(
        p_idx in 0usize..3,
        n in 1usize..10,
        entries in proptest::collection::vec((0usize..12, 0usize..12, 1i8..9), 0..50),
    ) {
        // A non-arithmetic semiring (shortest two-hop paths): schedule
        // equivalence must not depend on PlusTimes-specific behavior.
        let p = [1usize, 4, 9][p_idx];
        let triples: Vec<(u64, u64, u64)> = {
            let mut map = std::collections::BTreeMap::new();
            for &(r, c, v) in &entries {
                map.insert((r % n, c % n), v as u64);
            }
            map.into_iter().map(|((r, c), v)| (r as u64, c as u64, v)).collect()
        };
        let run = |opts: SpGemmOptions| {
            let t = triples.clone();
            let mut got = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let mine = if grid.world().rank() == 0 { t.clone() } else { Vec::new() };
                let a = DistMat::from_triples(&grid, n, n, mine, |_, _| unreachable!());
                a.spgemm_with(&grid, &a, &MinPlus, &opts).gather_triples(&grid)
            })
            .remove(0);
            got.sort_unstable();
            got
        };
        let eager = run(SpGemmOptions::eager());
        prop_assert_eq!(&run(SpGemmOptions::pipelined()), &eager);
        prop_assert_eq!(&run(SpGemmOptions::blocked(1)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::blocked(5)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::column_batched(1, Some(1))), &eager);
        prop_assert_eq!(&run(SpGemmOptions::column_batched(5, Some(1000))), &eager);
        prop_assert_eq!(&run(SpGemmOptions::layered(2)), &eager);
        prop_assert_eq!(&run(SpGemmOptions::layered(3)), &eager);
    }
}
