//! Property tests pinning the intra-rank threading contract: the
//! threaded `SpGemmBatcher` multiply must be **byte-identical** to the
//! single-threaded one — same structure, same values, same row order —
//! for every thread count, window, and semiring, both at the local
//! kernel level and through the distributed SUMMA schedules on the
//! same 1×1 / 2×2 / 3×3 grids the schedule-equivalence props use.
//! Determinism is the contract that makes threading safe to land: if
//! these fail, `--threads` would change assembled contigs.

use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_sparse::semiring::{Count, MinPlus, PlusTimes, Semiring};
use elba_sparse::{Csr, DistMat, SpGemmBatcher, SpGemmOptions};
use proptest::prelude::*;

/// Sparse triples from a proptest-generated entry list (dedup last-wins).
fn to_triples(nrows: usize, ncols: usize, entries: &[(usize, usize, i8)]) -> Vec<(u64, u64, f64)> {
    let mut map = std::collections::BTreeMap::new();
    for &(r, c, v) in entries {
        if v != 0 {
            map.insert((r % nrows, c % ncols), v as f64);
        }
    }
    map.into_iter()
        .map(|((r, c), v)| (r as u64, c as u64, v))
        .collect()
}

fn csr_from(nrows: usize, ncols: usize, triples: &[(u64, u64, f64)]) -> Csr<f64> {
    let local: Vec<(u32, u32, f64)> = triples
        .iter()
        .map(|&(r, c, v)| (r as u32, c as u32, v))
        .collect();
    Csr::from_triples(nrows, ncols, local, |_, _| unreachable!())
}

/// Multiply a window under `semiring` with the given thread count and
/// return the exact parts (structure AND values — byte identity).
fn multiply<S>(
    a: &Csr<S::A>,
    b: &Csr<S::B>,
    semiring: &S,
    threads: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<u32>,
) -> (Vec<usize>, Vec<u32>, Vec<S::Out>)
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
{
    let mut batcher = SpGemmBatcher::new(a, b, semiring).with_threads(threads);
    batcher.multiply_rows_par(rows, cols).into_parts()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Local kernel: threaded == serial for arbitrary shapes, windows,
    /// and worker counts, under three different semirings.
    #[test]
    fn threaded_local_multiply_is_byte_identical(
        n in 1usize..40,
        k in 1usize..24,
        m in 1usize..40,
        a_entries in proptest::collection::vec((0usize..64, 0usize..64, -4i8..5), 0..160),
        b_entries in proptest::collection::vec((0usize..64, 0usize..64, -4i8..5), 0..160),
        threads in 2usize..9,
        window in (0usize..30, 0usize..30),
    ) {
        let a_triples = to_triples(n, k, &a_entries);
        let b_triples = to_triples(k, m, &b_entries);
        let a = csr_from(n, k, &a_triples);
        let b = csr_from(k, m, &b_triples);
        // Full multiply.
        let serial = multiply(&a, &b, &PlusTimes, 1, 0..n, 0..m as u32);
        let par = multiply(&a, &b, &PlusTimes, threads, 0..n, 0..m as u32);
        prop_assert_eq!(&serial, &par);
        // Row/column window (the blocked and column-batched kernels).
        let (w0, w1) = window;
        let rows = (w0 % n)..n;
        let cols = ((w1 % m) as u32)..(m as u32);
        let serial_w = multiply(&a, &b, &PlusTimes, 1, rows.clone(), cols.clone());
        let par_w = multiply(&a, &b, &PlusTimes, threads, rows.clone(), cols.clone());
        prop_assert_eq!(&serial_w, &par_w);
        // Other algebras: min-plus (u64) and the counting semiring.
        let au: Csr<u64> = Csr::from_triples(
            n, k,
            a_triples.iter().map(|&(r, c, v)| (r as u32, c as u32, v.abs() as u64)).collect(),
            |_, _| unreachable!(),
        );
        let bu: Csr<u64> = Csr::from_triples(
            k, m,
            b_triples.iter().map(|&(r, c, v)| (r as u32, c as u32, v.abs() as u64)).collect(),
            |_, _| unreachable!(),
        );
        prop_assert_eq!(
            multiply(&au, &bu, &MinPlus, 1, rows.clone(), cols.clone()),
            multiply(&au, &bu, &MinPlus, threads, rows.clone(), cols.clone())
        );
        prop_assert_eq!(
            multiply(&au, &bu, &Count::<u64, u64>::new(), 1, rows.clone(), cols.clone()),
            multiply(&au, &bu, &Count::<u64, u64>::new(), threads, rows, cols)
        );
    }

    /// Distributed: every SUMMA schedule at `threads = 4` matches its
    /// own serial run on 1×1 / 2×2 / 3×3 grids — and the per-rank
    /// profiled wire bytes are identical too (threads never enter the
    /// comm layer).
    #[test]
    fn threaded_summa_matches_serial_across_grids(
        p_idx in 0usize..3,
        n in 1usize..24,
        k in 1usize..16,
        m in 1usize..24,
        a_entries in proptest::collection::vec((0usize..32, 0usize..32, -3i8..4), 0..80),
        b_entries in proptest::collection::vec((0usize..32, 0usize..32, -3i8..4), 0..80),
        algo_idx in 0usize..4,
    ) {
        let p = [1usize, 4, 9][p_idx];
        let a_triples = to_triples(n, k, &a_entries);
        let b_triples = to_triples(k, m, &b_entries);
        let base = match algo_idx {
            0 => SpGemmOptions::eager(),
            1 => SpGemmOptions::pipelined(),
            2 => SpGemmOptions::blocked(3),
            _ => SpGemmOptions::column_batched(4, Some(512)),
        };
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let opts = base.with_threads(threads);
            let (at, bt) = (a_triples.clone(), b_triples.clone());
            let (out, profile) = Runner::new(Backend::InProcess).ranks(p).run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                let mine_a = if grid.world().rank() == 0 { at.clone() } else { Vec::new() };
                let mine_b = if grid.world().rank() == 0 { bt.clone() } else { Vec::new() };
                let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
                let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
                let c = {
                    let _g = grid.world().phase("mult");
                    a.spgemm_with(&grid, &b, &PlusTimes, &opts)
                };
                let mut got = c.gather_triples(&grid);
                got.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
                got
            });
            // Wire bytes are part of the contract: per-rank, per-op.
            let mut rank_bytes: Vec<Vec<(&'static str, u64, u64)>> = profile
                .rank_profiles()
                .iter()
                .map(|r| r.phase("mult").map(|ph| ph.collectives.clone()).unwrap_or_default())
                .collect();
            rank_bytes.iter_mut().for_each(|v| v.sort());
            runs.push((out.into_iter().next().expect("rank 0"), rank_bytes));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "threaded SUMMA output must match serial");
        prop_assert_eq!(&runs[0].1, &runs[1].1, "threads must not change profiled wire bytes");
    }
}
