//! Property pins for the layered (2.5D-style) SUMMA schedule:
//!
//! * output triples byte-identical to the eager reference across
//!   1×1 / 2×2 / 3×3 grids × c ∈ {1, 2, 3} × thread counts — including
//!   the uneven-slice case (q = 3, c = 2, where c ∤ q),
//! * per-rank profiled *wire bytes* identical to eager on every grid:
//!   the layered schedule posts the same q stage broadcasts down the
//!   same trees, the combine is local (wire-byte model stays sacred),
//! * c = 1 is *exactly* the pipelined path — same collectives, same
//!   per-op call and byte counts, not merely the same totals,
//! * c > q clamps instead of deadlocking or dropping stages,
//! * `SpGemmAlgorithm::Auto` resolves to a concrete schedule, matches
//!   the eager output, and reports its pick.

use elba_comm::{Backend, Runner};
use elba_comm::{ProcGrid, RunProfile};
use elba_sparse::semiring::PlusTimes;
use elba_sparse::{last_auto_spgemm_pick, DistMat, SpGemmOptions};

/// Deterministic AAᵀ-shaped inputs (the overlap-detection shape): `n`
/// reads × `k` k-mer columns, a few shared k-mers per read.
fn fixture_triples(n: usize, k: usize) -> Vec<(u64, u64, f64)> {
    (0..n)
        .flat_map(|r| {
            (0..5usize).map(move |i| {
                (
                    r as u64,
                    ((r * 11 + i * 3) % k) as u64,
                    1.0 + ((r + i) % 4) as f64,
                )
            })
        })
        .collect()
}

/// Run `A · Aᵀ` on `p` ranks under `opts`, profiled; returns the sorted
/// gathered triples and the run profile (wire bytes live in the
/// "spgemm" phase).
fn run_profiled(
    p: usize,
    n: usize,
    k: usize,
    opts: SpGemmOptions,
) -> (Vec<(u64, u64, f64)>, RunProfile) {
    let (mut results, profile) =
        Runner::new(Backend::InProcess)
            .ranks(p)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                let mine = if grid.world().rank() == 0 {
                    fixture_triples(n, k)
                } else {
                    Vec::new()
                };
                let a = DistMat::from_triples(&grid, n, k, mine, |acc, v| *acc += v);
                let at = a.transpose(&grid);
                let _guard = grid.world().phase("spgemm");
                a.spgemm_with(&grid, &at, &PlusTimes, &opts)
                    .gather_triples(&grid)
            });
    let mut triples = results.remove(0);
    triples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    (triples, profile)
}

/// Per-rank wire bytes of the "spgemm" phase (0 for ranks that have no
/// such phase entry — impossible here, but total() would hide a
/// per-rank asymmetry, which is exactly what this helper must expose).
fn spgemm_bytes_per_rank(profile: &RunProfile) -> Vec<u64> {
    profile
        .rank_profiles()
        .iter()
        .map(|rp| rp.phase("spgemm").map_or(0, |ph| ph.bytes_sent()))
        .collect()
}

#[test]
fn layered_matches_eager_triples_and_wire_bytes_on_every_grid() {
    for p in [1usize, 4, 9] {
        let (n, k) = (21, 17);
        let (eager_triples, eager_profile) = run_profiled(p, n, k, SpGemmOptions::eager());
        let eager_bytes = spgemm_bytes_per_rank(&eager_profile);
        assert!(
            eager_triples.iter().any(|&(_, _, v)| v != 0.0),
            "fixture must produce a non-trivial product"
        );
        // c=2 on the 3×3 grid is the uneven split (slices of 2 and 1
        // stages); c=3 on the 2×2 grid exercises the clamp.
        for c in [1usize, 2, 3] {
            for threads in [1usize, 4] {
                let opts = SpGemmOptions::layered(c).with_threads(threads);
                let (triples, profile) = run_profiled(p, n, k, opts);
                assert_eq!(
                    triples, eager_triples,
                    "layered(c={c}, t={threads}) output != eager on p={p}"
                );
                assert_eq!(
                    spgemm_bytes_per_rank(&profile),
                    eager_bytes,
                    "layered(c={c}, t={threads}) wire bytes != eager on p={p}"
                );
            }
        }
    }
}

#[test]
fn layered_c1_profile_is_exactly_pipelined() {
    for p in [1usize, 4, 9] {
        let (pipe_triples, pipe_profile) = run_profiled(p, 21, 17, SpGemmOptions::pipelined());
        let (lay_triples, lay_profile) = run_profiled(p, 21, 17, SpGemmOptions::layered(1));
        assert_eq!(lay_triples, pipe_triples, "p={p}");
        // Not just byte totals: identical op names, call counts, and
        // per-op bytes on every rank — c=1 takes the very same code
        // path, so the profiles must be indistinguishable.
        for (rank, (pipe_rank, lay_rank)) in pipe_profile
            .rank_profiles()
            .iter()
            .zip(lay_profile.rank_profiles())
            .enumerate()
        {
            let pipe_phase = pipe_rank.phase("spgemm").expect("phase recorded");
            let lay_phase = lay_rank.phase("spgemm").expect("phase recorded");
            assert_eq!(
                lay_phase.collectives, pipe_phase.collectives,
                "rank {rank} on p={p}: layered(1) collectives diverge from pipelined"
            );
            assert_eq!(
                lay_phase.p2p_bytes, pipe_phase.p2p_bytes,
                "rank {rank} p={p}"
            );
            assert_eq!(lay_phase.p2p_msgs, pipe_phase.p2p_msgs, "rank {rank} p={p}");
        }
    }
}

#[test]
fn layered_clamps_oversized_layer_counts() {
    // c far beyond the stage count must clamp to one stage per layer
    // (warning on stderr) and still match eager exactly.
    for p in [1usize, 4, 9] {
        let (eager_triples, _) = run_profiled(p, 15, 12, SpGemmOptions::eager());
        let (clamped, _) = run_profiled(p, 15, 12, SpGemmOptions::layered(64));
        assert_eq!(clamped, eager_triples, "layered(64) != eager on p={p}");
    }
}

#[test]
fn auto_resolves_matches_eager_and_reports_its_pick() {
    for p in [1usize, 4, 9] {
        let (eager_triples, _) = run_profiled(p, 21, 17, SpGemmOptions::eager());
        let (auto_triples, _) = run_profiled(p, 21, 17, SpGemmOptions::auto());
        assert_eq!(auto_triples, eager_triples, "auto != eager on p={p}");
        let pick = last_auto_spgemm_pick().expect("auto must record its pick");
        assert_ne!(
            pick,
            elba_sparse::SpGemmAlgorithm::Auto,
            "the recorded pick must be concrete"
        );
    }
}
