//! Doubly compressed sparse column (DCSC) storage (Buluç & Gilbert 2008).
//!
//! A 2D-distributed block is *hypersparse*: its nnz is far smaller than
//! its dimension, so a CSC column-pointer array of length `ncols + 1`
//! would dwarf the payload. DCSC stores pointers only for the non-empty
//! columns. ELBA keeps pipeline matrices in DCSC and converts each local
//! induced-subgraph block to CSC just before local assembly (§4.4) — "only
//! column pointers need to be uncompressed and the row indices array stays
//! intact"; [`Dcsc::to_csc`] reproduces exactly that linear-time expansion.

use crate::csc::Csc;
use crate::csr::Csr;

/// Sparse matrix storing only non-empty columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsc<T> {
    nrows: usize,
    ncols: usize,
    /// Indices of the non-empty columns, ascending (`JC` in DCSC papers).
    jc: Vec<u32>,
    /// Pointer per non-empty column into `ir`/`val` (`CP`), length `jc.len()+1`.
    cp: Vec<usize>,
    /// Row indices, grouped by non-empty column.
    ir: Vec<u32>,
    val: Vec<T>,
}

impl<T> Dcsc<T> {
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Dcsc {
            nrows,
            ncols,
            jc: Vec::new(),
            cp: vec![0],
            ir: Vec::new(),
            val: Vec::new(),
        }
    }

    /// Build from triples; duplicates merged with `combine`.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        mut triples: Vec<(u32, u32, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) -> Self {
        triples.sort_by_key(|&(r, c, _)| ((c as u64) << 32) | r as u64);
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(triples.len());
        let mut val: Vec<T> = Vec::with_capacity(triples.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in triples {
            debug_assert!((r as usize) < nrows && (c as usize) < ncols);
            if last == Some((r, c)) {
                combine(val.last_mut().expect("duplicate follows entry"), v);
                continue;
            }
            if jc.last() != Some(&c) {
                jc.push(c);
                cp.push(ir.len());
            }
            ir.push(r);
            val.push(v);
            *cp.last_mut().expect("cp non-empty") = ir.len();
            last = Some((r, c));
        }
        Dcsc {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            val,
        }
    }

    pub fn from_csr(m: Csr<T>) -> Self {
        let (nrows, ncols) = (m.nrows(), m.ncols());
        let triples: Vec<(u32, u32, T)> = m.into_triples();
        Self::from_triples(nrows, ncols, triples, |_, _| {
            unreachable!("CSR has no duplicates")
        })
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of non-empty columns (the quantity DCSC compresses on).
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Look up a column by global index (binary search over `jc`).
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        match self.jc.binary_search(&(j as u32)) {
            Ok(k) => {
                let span = self.cp[k]..self.cp[k + 1];
                (&self.ir[span.clone()], &self.val[span])
            }
            Err(_) => (&[], &[]),
        }
    }

    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (rows, vals) = self.col(j);
        rows.binary_search(&(i as u32)).ok().map(|k| &vals[k])
    }

    /// Iterate entries as `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        (0..self.jc.len()).flat_map(move |k| {
            let col = self.jc[k];
            let span = self.cp[k]..self.cp[k + 1];
            self.ir[span.clone()]
                .iter()
                .zip(&self.val[span])
                .map(move |(&r, v)| (r, col, v))
        })
    }

    /// Uncompress to CSC: expand `jc`/`cp` into a full column-pointer
    /// array; `ir` and `val` are reused unchanged (the paper's §4.4
    /// conversion, linear in the number of columns).
    pub fn to_csc(self) -> Csc<T> {
        let mut triples: Vec<(u32, u32, T)> = Vec::with_capacity(self.nnz());
        let mut vals = self.val.into_iter();
        for k in 0..self.jc.len() {
            let col = self.jc[k];
            for idx in self.cp[k]..self.cp[k + 1] {
                triples.push((self.ir[idx], col, vals.next().expect("value per entry")));
            }
        }
        Csc::from_triples(self.nrows, self.ncols, triples, |_, _| {
            unreachable!("DCSC has no duplicates")
        })
    }

    /// Memory footprint in bytes of the index structure (excludes values);
    /// used by tests asserting DCSC beats CSC on hypersparse blocks.
    pub fn index_bytes(&self) -> usize {
        self.jc.len() * 4 + self.cp.len() * 8 + self.ir.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypersparse() -> Dcsc<u8> {
        // 1000x1000 with 3 entries in 2 columns.
        Dcsc::from_triples(
            1000,
            1000,
            vec![(5, 700, 1), (900, 2, 2), (10, 700, 3)],
            |_, _| unreachable!(),
        )
    }

    #[test]
    fn stores_only_nonempty_columns() {
        let m = hypersparse();
        assert_eq!(m.nzc(), 2);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(700), (&[5u32, 10][..], &[1u8, 3][..]));
        assert_eq!(m.col(3).0.len(), 0);
    }

    #[test]
    fn get_matches() {
        let m = hypersparse();
        assert_eq!(m.get(900, 2), Some(&2));
        assert_eq!(m.get(5, 700), Some(&1));
        assert_eq!(m.get(5, 701), None);
    }

    #[test]
    fn to_csc_preserves_entries() {
        let m = hypersparse();
        let entries: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        let csc = m.to_csc();
        let csc_entries: Vec<_> = csc.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(entries, csc_entries);
        assert_eq!(csc.degree(700), 2);
    }

    #[test]
    fn index_smaller_than_csc_for_hypersparse() {
        let m = hypersparse();
        let csc_index_bytes = (m.ncols() + 1) * 8 + m.nnz() * 4;
        assert!(m.index_bytes() < csc_index_bytes / 10);
    }

    #[test]
    fn from_csr_round_trip() {
        let csr = Csr::from_triples(
            6,
            6,
            vec![(0u32, 5u32, 1.5f64), (3, 2, 2.5), (5, 5, 3.5)],
            |_, _| unreachable!(),
        );
        let entries: Vec<_> = csr.iter().map(|(r, c, &v)| (r, c, v)).collect();
        let dcsc = Dcsc::from_csr(csr);
        let mut got: Vec<_> = dcsc.iter().map(|(r, c, &v)| (r, c, v)).collect();
        got.sort_by_key(|&(r, c, _)| (r, c));
        let mut want = entries;
        want.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(got, want);
    }

    #[test]
    fn duplicates_merge() {
        let m = Dcsc::from_triples(4, 4, vec![(1, 1, 10u32), (1, 1, 5)], |acc, v| *acc += v);
        assert_eq!(m.get(1, 1), Some(&15));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty() {
        let m: Dcsc<u8> = Dcsc::empty(10, 10);
        assert_eq!(m.nzc(), 0);
        assert_eq!(m.col(5).0.len(), 0);
    }
}
