//! # elba-sparse — sparse matrix substrate for ELBA-RS
//!
//! ELBA (ICPP 2022) expresses the whole assembly pipeline in the language
//! of sparse linear algebra over CombBLAS. This crate rebuilds that
//! substrate in Rust:
//!
//! * local formats: [`csr::Csr`], [`csc::Csc`] (with the paper's
//!   `JC`/`IR`/`VAL` naming used by local assembly), and hypersparse
//!   [`dcsc::Dcsc`] with the §4.4 linear-time DCSC→CSC expansion,
//! * [`semiring::Semiring`] overloading of `(+, ×)`, including filtering
//!   semirings (a `multiply` that can annihilate),
//! * local kernels: Gustavson [`spgemm::spgemm`] with a sparse
//!   accumulator, [`spgemm::spmv`], element-wise merge,
//! * the 2D-distributed layer: [`dist_mat::DistMat`] (SUMMA SpGEMM,
//!   transpose, apply/prune, row reduction, branch masking) and
//!   [`dist_vec::DistVec`] (gather/scatter by global index and the
//!   paper's Fig. 2 row-allgather + transposed-p2p `fetch_aligned`
//!   exchange),
//! * [`dense::Dense`], a tiny dense oracle used by the test suite.

pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod dense;
pub mod dist_mat;
pub mod dist_vec;
pub mod layout;
pub mod semiring;
pub mod spgemm;

pub use csc::Csc;
pub use csr::Csr;
pub use dcsc::Dcsc;
pub use dist_mat::{
    algorithm_label, last_auto_spgemm_pick, DistMat, SpGemmAlgorithm, SpGemmOptions,
};
pub use dist_vec::DistVec;
pub use layout::Layout2D;
pub use semiring::Semiring;
pub use spgemm::SpGemmBatcher;
