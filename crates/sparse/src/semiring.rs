//! Semiring abstraction: CombBLAS-style overloading of `(+, ×)` so the
//! same SpGEMM/SpMV kernels serve numeric algebra, boolean reachability,
//! and ELBA's overlap-detection and transitive-reduction algebras.

/// A (possibly filtering) semiring over input types `A`, `B` and output
/// `Out`.
///
/// `multiply` may return `None` to annihilate a contribution — the sparse
/// analogue of multiplying by zero, used e.g. by the transitive-reduction
/// step to drop direction-incompatible paths.
pub trait Semiring {
    type A: Clone + Send;
    type B: Clone + Send;
    type Out: Clone + Send;

    fn multiply(&self, a: &Self::A, b: &Self::B) -> Option<Self::Out>;
    fn add(&self, acc: &mut Self::Out, other: Self::Out);
}

/// Standard arithmetic `(+, ×)` semiring over `f64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type A = f64;
    type B = f64;
    type Out = f64;

    #[inline]
    fn multiply(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a * b)
    }

    #[inline]
    fn add(&self, acc: &mut f64, other: f64) {
        *acc += other;
    }
}

/// Counting semiring over arbitrary inputs: every structural match
/// contributes 1; addition sums. Row-reducing with it yields degrees.
#[derive(Debug, Clone, Copy, Default)]
pub struct Count<A, B>(std::marker::PhantomData<(A, B)>);

impl<A, B> Count<A, B> {
    pub fn new() -> Self {
        Count(std::marker::PhantomData)
    }
}

impl<A: Clone + Send, B: Clone + Send> Semiring for Count<A, B> {
    type A = A;
    type B = B;
    type Out = u64;

    #[inline]
    fn multiply(&self, _: &A, _: &B) -> Option<u64> {
        Some(1)
    }

    #[inline]
    fn add(&self, acc: &mut u64, other: u64) {
        *acc += other;
    }
}

/// Boolean `(∨, ∧)` semiring: structural reachability.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type A = bool;
    type B = bool;
    type Out = bool;

    #[inline]
    fn multiply(&self, a: &bool, b: &bool) -> Option<bool> {
        (*a && *b).then_some(true)
    }

    #[inline]
    fn add(&self, acc: &mut bool, other: bool) {
        *acc |= other;
    }
}

/// Tropical `(min, +)` semiring over `u64` path lengths.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type A = u64;
    type B = u64;
    type Out = u64;

    #[inline]
    fn multiply(&self, a: &u64, b: &u64) -> Option<u64> {
        Some(a.saturating_add(*b))
    }

    #[inline]
    fn add(&self, acc: &mut u64, other: u64) {
        *acc = (*acc).min(other);
    }
}

/// `(min, select2nd)` semiring used by label-propagation style algorithms
/// (LACC hooking): multiplying an edge by a vertex label selects the
/// label; addition keeps the minimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinSelect2nd;

impl Semiring for MinSelect2nd {
    /// Edge presence (structural).
    type A = ();
    /// Vertex label.
    type B = u64;
    type Out = u64;

    #[inline]
    fn multiply(&self, _: &(), label: &u64) -> Option<u64> {
        Some(*label)
    }

    #[inline]
    fn add(&self, acc: &mut u64, other: u64) {
        *acc = (*acc).min(other);
    }
}

/// Adapt a plain closure pair into a semiring.
pub struct FnSemiring<A, B, Out, M, Add>
where
    M: Fn(&A, &B) -> Option<Out>,
    Add: Fn(&mut Out, Out),
{
    pub multiply: M,
    pub add: Add,
    _marker: std::marker::PhantomData<(A, B, Out)>,
}

impl<A, B, Out, M, Add> FnSemiring<A, B, Out, M, Add>
where
    M: Fn(&A, &B) -> Option<Out>,
    Add: Fn(&mut Out, Out),
{
    pub fn new(multiply: M, add: Add) -> Self {
        FnSemiring {
            multiply,
            add,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A, B, Out, M, Add> Semiring for FnSemiring<A, B, Out, M, Add>
where
    A: Clone + Send,
    B: Clone + Send,
    Out: Clone + Send,
    M: Fn(&A, &B) -> Option<Out>,
    Add: Fn(&mut Out, Out),
{
    type A = A;
    type B = B;
    type Out = Out;

    #[inline]
    fn multiply(&self, a: &A, b: &B) -> Option<Out> {
        (self.multiply)(a, b)
    }

    #[inline]
    fn add(&self, acc: &mut Out, other: Out) {
        (self.add)(acc, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times() {
        let s = PlusTimes;
        assert_eq!(s.multiply(&3.0, &4.0), Some(12.0));
        let mut acc = 1.0;
        s.add(&mut acc, 2.0);
        assert_eq!(acc, 3.0);
    }

    #[test]
    fn bool_annihilates_false() {
        let s = BoolOrAnd;
        assert_eq!(s.multiply(&true, &false), None);
        assert_eq!(s.multiply(&true, &true), Some(true));
    }

    #[test]
    fn min_plus_saturates() {
        let s = MinPlus;
        assert_eq!(s.multiply(&u64::MAX, &1), Some(u64::MAX));
        let mut acc = 9;
        s.add(&mut acc, 3);
        assert_eq!(acc, 3);
    }

    #[test]
    fn min_select2nd_propagates_labels() {
        let s = MinSelect2nd;
        assert_eq!(s.multiply(&(), &7), Some(7));
        let mut acc = 7;
        s.add(&mut acc, 4);
        assert_eq!(acc, 4);
    }

    #[test]
    fn fn_semiring_filters() {
        let s = FnSemiring::new(
            |a: &u64, b: &u64| (a + b > 5).then(|| a + b),
            |acc: &mut u64, x| *acc = (*acc).max(x),
        );
        assert_eq!(s.multiply(&1, &2), None);
        assert_eq!(s.multiply(&4, &3), Some(7));
    }
}
