//! Distributed vector over a √P×√P process grid.
//!
//! A vector of length `n` is partitioned into P contiguous chunks: rank
//! `(i, j)` owns sub-chunk `j` of block range `i` (see [`crate::layout`]).
//! This is the distribution ELBA uses for the degree vector `d`, the
//! branch vector `b`, the connected-component vector `v` and the
//! contig-to-processor assignment `p`.
//!
//! The key primitive is [`DistVec::fetch_aligned`] — the paper's Fig. 2
//! exchange: an `MPI_Allgather` over the grid-*row* communicator
//! reassembles the vector restricted to the local matrix block's row
//! range, and a point-to-point swap with the *transposed* rank `(j, i)`
//! yields the column range. Every rank then knows `v[u]` and `v[w]` for
//! every local nonzero `(u, w)` without a grid-wide allgather.

use elba_comm::{CommMsg, ProcGrid};

use crate::layout::Layout2D;

/// Tag used for the transposed-rank exchange inside `fetch_aligned`.
const FETCH_TAG: u64 = 0x00F1_F1F1;

/// A vector distributed in P chunks over the process grid.
#[derive(Debug, Clone)]
pub struct DistVec<T> {
    layout: Layout2D,
    local: Vec<T>,
}

impl<T: Clone + CommMsg> DistVec<T> {
    /// Build by evaluating `f` at every globally-owned index.
    pub fn from_fn(grid: &ProcGrid, n: usize, f: impl FnMut(usize) -> T) -> Self {
        let layout = Layout2D::new(n, grid.q());
        let range = layout.chunk_range(grid.myrow(), grid.mycol());
        DistVec {
            layout,
            local: range.map(f).collect(),
        }
    }

    /// Build from a replicated global slice (every rank passes the same
    /// data; each keeps only its chunk).
    pub fn from_global(grid: &ProcGrid, data: &[T]) -> Self {
        let layout = Layout2D::new(data.len(), grid.q());
        let range = layout.chunk_range(grid.myrow(), grid.mycol());
        DistVec {
            layout,
            local: data[range].to_vec(),
        }
    }

    /// Wrap an already-local chunk (must match the layout's chunk length).
    pub fn from_local(grid: &ProcGrid, n: usize, local: Vec<T>) -> Self {
        let layout = Layout2D::new(n, grid.q());
        assert_eq!(
            local.len(),
            layout.chunk_range(grid.myrow(), grid.mycol()).len()
        );
        DistVec { layout, local }
    }

    /// Global length.
    #[inline]
    pub fn len(&self) -> usize {
        self.layout.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.layout.is_empty()
    }

    #[inline]
    pub fn layout(&self) -> Layout2D {
        self.layout
    }

    /// This rank's chunk.
    #[inline]
    pub fn local(&self) -> &[T] {
        &self.local
    }

    #[inline]
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.local
    }

    /// Global index range of this rank's chunk.
    pub fn global_range(&self, grid: &ProcGrid) -> std::ops::Range<usize> {
        self.layout.chunk_range(grid.myrow(), grid.mycol())
    }

    /// Replicate the whole vector on every rank (world allgather; chunk
    /// ranges are increasing in rank order, so concatenation is global
    /// order).
    pub fn to_global(&self, grid: &ProcGrid) -> Vec<T> {
        let chunks = grid.world().allgather(self.local.clone());
        let mut out = Vec::with_capacity(self.layout.len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// Fetch arbitrary remote elements by global index (request/reply
    /// alltoallv pair). Returns values in the order of `indices`.
    pub fn gather(&self, grid: &ProcGrid, indices: &[usize]) -> Vec<T> {
        let p = grid.world().size();
        let mut requests: Vec<Vec<u64>> = vec![Vec::new(); p];
        let mut slots: Vec<(usize, usize)> = Vec::with_capacity(indices.len());
        for &g in indices {
            let owner = self.layout.owner_rank(g);
            slots.push((owner, requests[owner].len()));
            requests[owner].push(g as u64);
        }
        let incoming = grid.world().alltoallv(requests);
        let my_start = self.global_range(grid).start;
        let replies: Vec<Vec<T>> = incoming
            .into_iter()
            .map(|reqs| {
                reqs.into_iter()
                    .map(|g| self.local[g as usize - my_start].clone())
                    .collect()
            })
            .collect();
        let values = grid.world().alltoallv(replies);
        slots
            .into_iter()
            .map(|(owner, pos)| values[owner][pos].clone())
            .collect()
    }

    /// Route `(index, value)` updates to their owners and fold them into
    /// the local chunks with `combine`.
    pub fn scatter_combine(
        &mut self,
        grid: &ProcGrid,
        updates: Vec<(usize, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) {
        let p = grid.world().size();
        let mut outgoing: Vec<Vec<(u64, T)>> = (0..p).map(|_| Vec::new()).collect();
        for (g, v) in updates {
            outgoing[self.layout.owner_rank(g)].push((g as u64, v));
        }
        let incoming = grid.world().alltoallv(outgoing);
        let my_start = self.global_range(grid).start;
        for batch in incoming {
            for (g, v) in batch {
                combine(&mut self.local[g as usize - my_start], v);
            }
        }
    }

    /// The paper's Fig. 2 exchange. Returns `(row_vals, col_vals)`:
    /// the vector restricted to this rank's matrix block *row* range
    /// (`block_range(myrow)`) and block *column* range
    /// (`block_range(mycol)`), respectively.
    pub fn fetch_aligned(&self, grid: &ProcGrid) -> (Vec<T>, Vec<T>) {
        // Allgather over the Row dimension: grid row i's chunks
        // concatenated (in column order) cover block range i exactly.
        let row_chunks = grid.row().allgather(self.local.clone());
        let mut row_vals = Vec::with_capacity(self.layout.block_range(grid.myrow()).len());
        for chunk in row_chunks {
            row_vals.extend(chunk);
        }
        // Column range: the transposed processor P(j, i) just assembled
        // block range j — swap with it point-to-point.
        let col_vals = if grid.is_diagonal() {
            row_vals.clone()
        } else {
            let partner = grid.transpose_rank();
            grid.world().send(partner, FETCH_TAG, row_vals.clone());
            grid.world().recv::<Vec<T>>(partner, FETCH_TAG)
        };
        debug_assert_eq!(col_vals.len(), self.layout.block_range(grid.mycol()).len());
        (row_vals, col_vals)
    }

    /// Map element-wise (with global index).
    pub fn map<U: Clone + CommMsg>(
        &self,
        grid: &ProcGrid,
        mut f: impl FnMut(usize, &T) -> U,
    ) -> DistVec<U> {
        let range = self.global_range(grid);
        DistVec {
            layout: self.layout,
            local: range.zip(&self.local).map(|(g, v)| f(g, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};

    #[test]
    fn round_trip_global() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(|comm| {
                let grid = ProcGrid::new(comm);
                let data: Vec<u64> = (0..37).map(|i| i * i).collect();
                let v = DistVec::from_global(&grid, &data);
                v.to_global(&grid)
            });
            let want: Vec<u64> = (0..37).map(|i| i * i).collect();
            assert!(out.iter().all(|v| v == &want));
        }
    }

    #[test]
    fn from_fn_matches_from_global() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, 23, |g| g as u64 * 3);
            v.to_global(&grid)
        });
        assert_eq!(out[0], (0..23).map(|g| g as u64 * 3).collect::<Vec<_>>());
    }

    #[test]
    fn gather_arbitrary_indices() {
        let out = Runner::new(Backend::InProcess).ranks(9).run(|comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, 50, |g| g as u64 + 100);
            // every rank asks for a scattered, rank-dependent set
            let indices: Vec<usize> = (0..10)
                .map(|k| (k * 7 + grid.world().rank()) % 50)
                .collect();
            let got = v.gather(&grid, &indices);
            indices
                .into_iter()
                .zip(got)
                .all(|(g, val)| val == g as u64 + 100)
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn gather_with_duplicates_and_empty() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, 10, |g| g as u64);
            if grid.world().rank() == 0 {
                v.gather(&grid, &[3, 3, 9, 0, 3])
            } else {
                v.gather(&grid, &[])
            }
        });
        assert_eq!(out[0], vec![3, 3, 9, 0, 3]);
        assert!(out[1].is_empty());
    }

    #[test]
    fn scatter_combine_accumulates() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let mut v = DistVec::from_fn(&grid, 8, |_| 0u64);
            // every rank increments every index by its rank+1
            let updates: Vec<(usize, u64)> = (0..8)
                .map(|g| (g, grid.world().rank() as u64 + 1))
                .collect();
            v.scatter_combine(&grid, updates, |acc, x| *acc += x);
            v.to_global(&grid)
        });
        // 1+2+3+4 = 10 at every index
        assert_eq!(out[0], vec![10; 8]);
    }

    #[test]
    fn fetch_aligned_covers_block_ranges() {
        for p in [1usize, 4, 9, 16] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(|comm| {
                let grid = ProcGrid::new(comm);
                let n = 29;
                let v = DistVec::from_fn(&grid, n, |g| g as u64 * 2);
                let (row_vals, col_vals) = v.fetch_aligned(&grid);
                let row_range = v.layout().block_range(grid.myrow());
                let col_range = v.layout().block_range(grid.mycol());
                let row_ok = row_range
                    .clone()
                    .zip(&row_vals)
                    .all(|(g, &val)| val == g as u64 * 2)
                    && row_vals.len() == row_range.len();
                let col_ok = col_range
                    .clone()
                    .zip(&col_vals)
                    .all(|(g, &val)| val == g as u64 * 2)
                    && col_vals.len() == col_range.len();
                row_ok && col_ok
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }

    #[test]
    fn map_keeps_layout() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let v = DistVec::from_fn(&grid, 11, |g| g as u64);
            let w = v.map(&grid, |g, &x| (g as u64) + x);
            w.to_global(&grid)
        });
        assert_eq!(out[0], (0..11).map(|g| 2 * g as u64).collect::<Vec<_>>());
    }
}
