//! Index arithmetic for the 2D block distribution.
//!
//! A dimension of length `n` is split into `q` balanced block ranges (one
//! per grid row/column). Distributed *vectors* subdivide each block range
//! again into `q` sub-chunks, so that rank `(i, j)` owns sub-chunk `j` of
//! block `i`. By construction the union of the vector chunks held by grid
//! row `i` equals the matrix block-row range `i` — which is exactly the
//! property ELBA's induced-subgraph exchange (paper Fig. 2) relies on:
//! an allgather over the grid row reassembles the vector restricted to
//! the local block's row range.

/// Start offset of part `k` when splitting `n` items into `parts`
/// balanced contiguous pieces (sizes differ by at most one).
#[inline]
pub fn split_point(n: usize, parts: usize, k: usize) -> usize {
    debug_assert!(k <= parts);
    k * (n / parts) + k.min(n % parts)
}

/// Balanced block layout of one dimension over a √P×√P grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout2D {
    n: usize,
    q: usize,
}

impl Layout2D {
    pub fn new(n: usize, q: usize) -> Self {
        assert!(q > 0);
        Layout2D { n, q }
    }

    /// Global length of the dimension.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grid side length.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Global index range of matrix block `i` (a block-row or block-column).
    #[inline]
    pub fn block_range(&self, i: usize) -> std::ops::Range<usize> {
        split_point(self.n, self.q, i)..split_point(self.n, self.q, i + 1)
    }

    /// Which block a global index falls into.
    #[inline]
    pub fn block_of(&self, g: usize) -> usize {
        debug_assert!(g < self.n);
        let (base, rem) = (self.n / self.q, self.n % self.q);
        if base == 0 {
            // Fewer items than blocks: item g lives in block g.
            return g;
        }
        let boundary = rem * (base + 1);
        if g < boundary {
            g / (base + 1)
        } else {
            rem + (g - boundary) / base
        }
    }

    /// Global index range of vector sub-chunk `j` within block `i`
    /// (owned by grid rank `(i, j)`).
    #[inline]
    pub fn chunk_range(&self, i: usize, j: usize) -> std::ops::Range<usize> {
        let block = self.block_range(i);
        let m = block.len();
        (block.start + split_point(m, self.q, j))..(block.start + split_point(m, self.q, j + 1))
    }

    /// Grid position `(i, j)` of the rank owning vector element `g`.
    #[inline]
    pub fn chunk_owner(&self, g: usize) -> (usize, usize) {
        let i = self.block_of(g);
        let block = self.block_range(i);
        let m = block.len();
        let local = g - block.start;
        let (base, rem) = (m / self.q, m % self.q);
        let j = if base == 0 {
            local
        } else {
            let boundary = rem * (base + 1);
            if local < boundary {
                local / (base + 1)
            } else {
                rem + (local - boundary) / base
            }
        };
        (i, j)
    }

    /// World rank (row-major) owning vector element `g`.
    #[inline]
    pub fn owner_rank(&self, g: usize) -> usize {
        let (i, j) = self.chunk_owner(g);
        i * self.q + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_cover_exactly() {
        for n in [0usize, 1, 5, 7, 16, 100, 101] {
            for parts in [1usize, 2, 3, 4, 7] {
                assert_eq!(split_point(n, parts, 0), 0);
                assert_eq!(split_point(n, parts, parts), n);
                let mut total = 0;
                for k in 0..parts {
                    let len = split_point(n, parts, k + 1) - split_point(n, parts, k);
                    assert!(len >= n / parts && len <= n / parts + 1);
                    total += len;
                }
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn block_of_inverts_ranges() {
        for n in [1usize, 5, 16, 97, 100] {
            for q in [1usize, 2, 3, 5] {
                let layout = Layout2D::new(n, q);
                for g in 0..n {
                    let i = layout.block_of(g);
                    assert!(layout.block_range(i).contains(&g), "n={n} q={q} g={g}");
                }
            }
        }
    }

    #[test]
    fn chunks_partition_blocks() {
        for n in [4usize, 10, 37, 100] {
            for q in [2usize, 3, 4] {
                let layout = Layout2D::new(n, q);
                let mut seen = vec![false; n];
                for i in 0..q {
                    let mut union_len = 0;
                    for j in 0..q {
                        let chunk = layout.chunk_range(i, j);
                        union_len += chunk.len();
                        for g in chunk {
                            assert!(!seen[g]);
                            seen[g] = true;
                            assert_eq!(layout.chunk_owner(g), (i, j));
                            assert_eq!(layout.owner_rank(g), i * q + j);
                        }
                    }
                    assert_eq!(union_len, layout.block_range(i).len());
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn row_chunks_union_equals_block_row() {
        // The invariant Fig. 2 depends on: grid row i's vector chunks,
        // concatenated in column order, cover exactly block range i.
        let layout = Layout2D::new(103, 4);
        for i in 0..4 {
            let mut concat = Vec::new();
            for j in 0..4 {
                concat.extend(layout.chunk_range(i, j));
            }
            assert_eq!(concat, layout.block_range(i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tiny_dimension_fewer_items_than_blocks() {
        let layout = Layout2D::new(2, 3);
        assert_eq!(layout.block_range(0), 0..1);
        assert_eq!(layout.block_range(1), 1..2);
        assert_eq!(layout.block_range(2), 2..2);
        assert_eq!(layout.block_of(0), 0);
        assert_eq!(layout.block_of(1), 1);
    }
}
