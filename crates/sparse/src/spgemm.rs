//! Local sparse kernels: Gustavson SpGEMM with a sparse accumulator (SPA)
//! and semiring-generic SpMV. These run inside every SUMMA stage of the
//! distributed multiply (overlap detection `C = AAᵀ`) and inside the
//! transitive-reduction iteration.

use crate::csr::Csr;
use crate::semiring::Semiring;

/// Sparse accumulator for one output row: dense value+generation arrays
/// plus a touched-list, giving O(1) amortized insert and O(k log k) sorted
/// extraction for k entries. Reused across rows without clearing.
struct Spa<T> {
    values: Vec<Option<T>>,
    generation: Vec<u32>,
    current: u32,
    touched: Vec<u32>,
}

impl<T> Spa<T> {
    fn new(ncols: usize) -> Self {
        Spa {
            values: (0..ncols).map(|_| None).collect(),
            generation: vec![0; ncols],
            current: 0,
            touched: Vec::new(),
        }
    }

    fn next_row(&mut self) {
        self.current += 1;
        self.touched.clear();
    }

    fn accumulate<S>(&mut self, semiring: &S, col: u32, value: T)
    where
        S: Semiring<Out = T>,
    {
        let j = col as usize;
        if self.generation[j] == self.current {
            let acc = self.values[j].as_mut().expect("touched slot holds value");
            semiring.add(acc, value);
        } else {
            self.generation[j] = self.current;
            self.values[j] = Some(value);
            self.touched.push(col);
        }
    }

    fn drain_sorted(&mut self, indices: &mut Vec<u32>, values: &mut Vec<T>) {
        self.touched.sort_unstable();
        for &col in &self.touched {
            indices.push(col);
            values.push(
                self.values[col as usize]
                    .take()
                    .expect("touched slot holds value"),
            );
        }
    }
}

/// C = A ⊗ B under `semiring` (Gustavson's row-by-row algorithm).
///
/// `A` is nrows×k with values of type `S::A`, `B` is k×ncols with values
/// of type `S::B`; entries for which `multiply` returns `None` contribute
/// nothing (filtering semirings).
pub fn spgemm<S: Semiring>(a: &Csr<S::A>, b: &Csr<S::B>, semiring: &S) -> Csr<S::Out> {
    spgemm_range(a, b, semiring, 0..a.nrows())
}

/// [`spgemm`] restricted to the output rows `rows` of `A ⊗ B`: the
/// returned matrix has `rows.len()` rows (row `i` holding output row
/// `rows.start + i`). This is the batched kernel underneath the
/// memory-bounded distributed multiply: processing a bounded row window
/// at a time caps the sparse accumulator's high-water mark and lets the
/// caller merge results incrementally instead of materializing all
/// intermediate triples.
pub fn spgemm_range<S: Semiring>(
    a: &Csr<S::A>,
    b: &Csr<S::B>,
    semiring: &S,
    rows: std::ops::Range<usize>,
) -> Csr<S::Out> {
    SpGemmBatcher::new(a, b, semiring).multiply_rows(rows)
}

/// Multiply the output-row window `rows` of `a ⊗ b` restricted to the
/// output-column window `cols`, appending each produced row to
/// `indices`/`values` and one cumulative end offset per row to `indptr`
/// (relative to the buffers' state at entry). This is the single
/// serial kernel under both the one-SPA path and every worker of the
/// threaded path: a row's bytes depend only on `(a, b, semiring, row,
/// cols)`, never on which worker ran it — the determinism the threaded
/// merge relies on.
#[allow(clippy::too_many_arguments)]
fn multiply_window<S: Semiring>(
    a: &Csr<S::A>,
    b: &Csr<S::B>,
    semiring: &S,
    spa: &mut Spa<S::Out>,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<u32>,
    indptr: &mut Vec<usize>,
    indices: &mut Vec<u32>,
    values: &mut Vec<S::Out>,
) {
    let ncols = b.ncols();
    let full_width = cols.start == 0 && cols.end as usize == ncols;
    for i in rows {
        spa.next_row();
        let (a_cols, a_vals) = a.row(i);
        for (&k, a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            // Restrict B's row to the output-column window; rows are
            // sorted, so the window is one contiguous span.
            let (b_cols, b_vals) = if full_width {
                (b_cols, b_vals)
            } else {
                let lo = b_cols.partition_point(|&j| j < cols.start);
                let hi = lo + b_cols[lo..].partition_point(|&j| j < cols.end);
                (&b_cols[lo..hi], &b_vals[lo..hi])
            };
            for (&j, b_kj) in b_cols.iter().zip(b_vals) {
                if let Some(product) = semiring.multiply(a_ik, b_kj) {
                    spa.accumulate(semiring, j, product);
                }
            }
        }
        spa.drain_sorted(indices, values);
        indptr.push(indices.len());
    }
}

/// Row-batched SpGEMM driver owning one sparse accumulator *per worker*
/// that is reused across every [`SpGemmBatcher::multiply_rows`] call —
/// the SPA's generation counter makes reuse clearing-free, so batching
/// the output rows costs no repeated O(ncols) allocation. One batcher
/// serves one `(A, B)` pair; the blocked SUMMA schedule holds one per
/// stage and sweeps it over the row windows.
///
/// With [`SpGemmBatcher::with_threads`] the multiply partitions its row
/// window into contiguous chunks claimed by self-scheduling workers
/// (each with its own SPA) and concatenates the per-chunk results in
/// fixed row order, so the output CSR is **byte-identical across thread
/// counts** — the contract the intra-rank threading of ELBA's local
/// kernels rests on. Workers never touch the comm layer.
pub struct SpGemmBatcher<'m, S: Semiring> {
    a: &'m Csr<S::A>,
    b: &'m Csr<S::B>,
    semiring: &'m S,
    /// One SPA per worker; index 0 doubles as the serial accumulator.
    spas: Vec<Spa<S::Out>>,
    threads: usize,
    /// Whether the *last* multiply actually fanned out to > 1 worker (a
    /// tiny window falls back to the serial path even when
    /// `threads > 1`); callers gate their `par-s` booking on it.
    last_parallel: bool,
}

impl<'m, S: Semiring> SpGemmBatcher<'m, S> {
    pub fn new(a: &'m Csr<S::A>, b: &'m Csr<S::B>, semiring: &'m S) -> Self {
        assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
        SpGemmBatcher {
            a,
            b,
            semiring,
            spas: vec![Spa::new(b.ncols())],
            threads: 1,
            last_parallel: false,
        }
    }

    /// Use up to `threads` intra-rank workers for each multiply (`0`
    /// inherits the global [`elba_par::ElbaPar`] knob). SPAs for extra
    /// workers are allocated lazily on the first threaded multiply.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = elba_par::ElbaPar::resolve(threads);
        self
    }

    /// Effective intra-rank worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the *last* multiply on this batcher genuinely fanned
    /// out to more than one worker (as opposed to taking the serial
    /// fallback for a tiny window). The profile's `par-s` bucket is
    /// gated on this per multiply, so it never reports "threaded
    /// kernel" time for work that ran on one thread.
    pub fn last_run_parallel(&self) -> bool {
        self.last_parallel
    }

    /// Heap bytes of the *extra* per-worker sparse accumulators beyond
    /// the serial baseline (worker 0's SPA, which the serial path has
    /// always owned uncharged). This is what threading adds to the
    /// resident working set; callers charge it — via
    /// `record_mem_transient` or a resizable charge — so threaded runs
    /// stay honest in the `mem-hw` column while `threads = 1` numbers
    /// are bit-for-bit unchanged. Counted by the length convention:
    /// each SPA's dense value + generation arrays (ncols each); the
    /// `touched` list is cleared every row and bounded by a row's nnz,
    /// so it is noise, not charge.
    pub fn scratch_bytes(&self) -> usize {
        let per_spa =
            self.b.ncols() * (std::mem::size_of::<Option<S::Out>>() + std::mem::size_of::<u32>());
        self.spas.len().saturating_sub(1) * per_spa
    }

    /// Multiply the output-row window `rows` of `A ⊗ B`; the result has
    /// `rows.len()` rows (row `i` holding output row `rows.start + i`).
    /// Serial regardless of the thread knob; the threaded entry point is
    /// [`SpGemmBatcher::multiply_rows_par`] (extra `Sync` bounds).
    pub fn multiply_rows(&mut self, rows: std::ops::Range<usize>) -> Csr<S::Out> {
        let ncols = self.b.ncols() as u32;
        self.multiply_rows_in_cols(rows, 0..ncols)
    }

    /// [`SpGemmBatcher::multiply_rows`] restricted to output columns in
    /// `cols`: only products landing in that window are accumulated —
    /// the kernel underneath the column-batched distributed multiply,
    /// where each SUMMA round computes one column batch of `C` so the
    /// live accumulator never exceeds the batch. The result keeps the
    /// full column dimension (entries outside the window are simply
    /// absent), so outputs of consecutive windows concatenate row-wise
    /// without reindexing.
    pub fn multiply_rows_in_cols(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<u32>,
    ) -> Csr<S::Out> {
        assert!(rows.end <= self.a.nrows(), "row range out of bounds");
        let ncols = self.b.ncols();
        assert!(cols.end as usize <= ncols, "column range out of bounds");
        self.last_parallel = false;
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        multiply_window(
            self.a,
            self.b,
            self.semiring,
            &mut self.spas[0],
            rows.clone(),
            cols,
            &mut indptr,
            &mut indices,
            &mut values,
        );
        Csr::from_parts(rows.len(), ncols, indptr, indices, values)
    }
}

impl<'m, S> SpGemmBatcher<'m, S>
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
{
    /// Threaded [`SpGemmBatcher::multiply_rows_in_cols`]: the row window
    /// is over-decomposed into contiguous chunks, idle workers claim
    /// chunks atomically, each worker runs the serial kernel with its
    /// own SPA, and the per-chunk CSR pieces are concatenated **in
    /// chunk (= row) order** — so the result is byte-identical to the
    /// serial multiply for every thread count. Falls back to the serial
    /// path when the batcher has one thread or the window is tiny.
    pub fn multiply_rows_par(
        &mut self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<u32>,
    ) -> Csr<S::Out> {
        assert!(rows.end <= self.a.nrows(), "row range out of bounds");
        let ncols = self.b.ncols();
        assert!(cols.end as usize <= ncols, "column range out of bounds");
        let chunks = elba_par::overdecomposed_ranges(rows.clone(), self.threads, MIN_PAR_ROWS);
        if self.threads <= 1 || chunks.len() <= 1 {
            return self.multiply_rows_in_cols(rows, cols);
        }
        let workers = self.threads.min(chunks.len());
        self.last_parallel = true;
        while self.spas.len() < workers {
            self.spas.push(Spa::new(ncols));
        }
        let (a, b, semiring) = (self.a, self.b, self.semiring);
        // Self-scheduled chunk map, per-worker SPA scratch; results come
        // back in chunk (= row) order — the fixed-order merge contract.
        let parts: Vec<ChunkParts<S::Out>> =
            elba_par::run_indexed_with(chunks.len(), &mut self.spas[..workers], |ci, spa| {
                let chunk_rows = chunks[ci].clone();
                let mut indptr = Vec::with_capacity(chunk_rows.len());
                let mut indices = Vec::new();
                let mut values = Vec::new();
                multiply_window(
                    a,
                    b,
                    semiring,
                    spa,
                    chunk_rows,
                    cols.clone(),
                    &mut indptr,
                    &mut indices,
                    &mut values,
                );
                (indptr, indices, values)
            });
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<S::Out> = Vec::new();
        for (chunk_indptr, chunk_indices, chunk_values) in parts {
            let base = indices.len();
            indptr.extend(chunk_indptr.into_iter().map(|end| base + end));
            indices.extend(chunk_indices);
            values.extend(chunk_values);
        }
        Csr::from_parts(rows.len(), ncols, indptr, indices, values)
    }
}

/// Smallest row-chunk the threaded multiply will hand a worker; windows
/// below `2 × MIN_PAR_ROWS` run serially (spawn cost would dominate).
const MIN_PAR_ROWS: usize = 8;

/// One threaded chunk's raw CSR pieces: per-row cumulative end offsets
/// (relative to the chunk), column indices, values.
type ChunkParts<V> = (Vec<usize>, Vec<u32>, Vec<V>);

/// Merge two same-shape CSR matrices by a streaming two-way merge of
/// their rows (the 2-way case of a heap merge): entries present in both
/// are combined with `add`, the union structure is kept, and — unlike
/// [`ewise_add`] — no re-sort and no triple buffer: the merge walks the
/// raw `(indptr, indices, values)` arrays directly, so the cost is
/// linear in `nnz(a) + nnz(b)` with no per-entry row tags. This is the
/// per-stage accumulator of the pipelined and blocked SUMMA variants,
/// where `a` is the whole accumulated `C` block and must not be
/// re-materialized every stage.
pub fn csr_merge<T>(a: Csr<T>, b: Csr<T>, mut add: impl FnMut(&mut T, T)) -> Csr<T> {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let (a_indptr, a_indices, a_values) = a.into_parts();
    let (b_indptr, b_indices, b_values) = b.into_parts();
    let nnz_hint = a_indices.len() + b_indices.len();
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::with_capacity(nnz_hint);
    let mut values: Vec<T> = Vec::with_capacity(nnz_hint);
    // Values are consumed strictly in storage order, so plain iterators
    // hand them out as the column merge advances.
    let mut a_vals = a_values.into_iter();
    let mut b_vals = b_values.into_iter();
    for row in 0..nrows {
        let (mut ia, end_a) = (a_indptr[row], a_indptr[row + 1]);
        let (mut ib, end_b) = (b_indptr[row], b_indptr[row + 1]);
        while ia < end_a && ib < end_b {
            match a_indices[ia].cmp(&b_indices[ib]) {
                std::cmp::Ordering::Less => {
                    indices.push(a_indices[ia]);
                    values.push(a_vals.next().expect("value per index"));
                    ia += 1;
                }
                std::cmp::Ordering::Greater => {
                    indices.push(b_indices[ib]);
                    values.push(b_vals.next().expect("value per index"));
                    ib += 1;
                }
                std::cmp::Ordering::Equal => {
                    let mut merged = a_vals.next().expect("value per index");
                    add(&mut merged, b_vals.next().expect("value per index"));
                    indices.push(a_indices[ia]);
                    values.push(merged);
                    ia += 1;
                    ib += 1;
                }
            }
        }
        for &col in &a_indices[ia..end_a] {
            indices.push(col);
            values.push(a_vals.next().expect("value per index"));
        }
        for &col in &b_indices[ib..end_b] {
            indices.push(col);
            values.push(b_vals.next().expect("value per index"));
        }
        indptr.push(indices.len());
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

/// Merge `parts` — same-shape CSR matrices — into one in a single pass,
/// combining entries that share a coordinate with `add` **in part
/// order**. This is the one-rank collapse of a 2.5D allreduce combine
/// tree: on real layered grids the per-layer partials meet in a binomial
/// tree of pairwise merges, but with every layer resident on the same
/// rank the tree degenerates, and folding it level by level would touch
/// ~2·nnz bytes per level. The k-way walk touches each part's arrays
/// exactly once and allocates one output — same add order as the folded
/// tree (ascending part = ascending SUMMA stage), so the result is
/// byte-identical to repeated [`csr_merge`], at `Σ nnz(part) + nnz(out)`
/// traffic instead of `(k−1)·2·nnz`.
pub fn csr_kmerge<T>(parts: Vec<Csr<T>>, mut add: impl FnMut(&mut T, T)) -> Csr<T> {
    assert!(!parts.is_empty(), "csr_kmerge needs at least one part");
    if parts.len() == 1 {
        return parts.into_iter().next().expect("len checked");
    }
    let nrows = parts[0].nrows();
    let ncols = parts[0].ncols();
    let total: usize = parts.iter().map(Csr::nnz).sum();
    // Raw arrays per part; values are consumed strictly in storage order
    // (each cursor only ever advances), so plain iterators hand them out.
    let raw: Vec<(Vec<usize>, Vec<u32>, std::vec::IntoIter<T>)> = parts
        .into_iter()
        .map(|p| {
            assert_eq!((p.nrows(), p.ncols()), (nrows, ncols), "shape mismatch");
            let (indptr, indices, values) = p.into_parts();
            (indptr, indices, values.into_iter())
        })
        .collect();
    let mut raw = raw;
    let mut cursors = vec![0usize; raw.len()];
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::with_capacity(total);
    let mut values: Vec<T> = Vec::with_capacity(total);
    for row in 0..nrows {
        // Single-contributor fast path: when exactly one part has
        // entries in this row — the common case for layered SUMMA,
        // whose stages emit near-disjoint row slabs — bulk-copy its
        // row instead of min-scanning every element through k cursors.
        let mut holder: Option<usize> = None;
        let mut contested = false;
        for (k, (part_indptr, _, _)) in raw.iter().enumerate() {
            if cursors[k] < part_indptr[row + 1] {
                contested = holder.is_some();
                if contested {
                    break;
                }
                holder = Some(k);
            }
        }
        if let (Some(k), false) = (holder, contested) {
            let (part_indptr, part_indices, part_values) = &mut raw[k];
            let end = part_indptr[row + 1];
            let len = end - cursors[k];
            indices.extend_from_slice(&part_indices[cursors[k]..end]);
            values.extend(part_values.by_ref().take(len));
            cursors[k] = end;
            indptr.push(indices.len());
            continue;
        }
        loop {
            // Smallest pending column among the parts still inside this
            // row. k is tiny (the layer count), so a linear scan beats a
            // heap and keeps part order deterministic.
            let mut min_col = u32::MAX;
            let mut any = false;
            for (k, (part_indptr, part_indices, _)) in raw.iter().enumerate() {
                let cur = cursors[k];
                if cur < part_indptr[row + 1] {
                    let col = part_indices[cur];
                    if !any || col < min_col {
                        min_col = col;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            // Combine every part holding `min_col`, ascending part order
            // — the stage order the other schedules accumulate in, so a
            // non-commutative semiring add sees identical operand order.
            let mut acc: Option<T> = None;
            for (k, (part_indptr, part_indices, part_values)) in raw.iter_mut().enumerate() {
                let cur = cursors[k];
                if cur < part_indptr[row + 1] && part_indices[cur] == min_col {
                    let v = part_values.next().expect("value per index");
                    match acc.as_mut() {
                        Some(a) => add(a, v),
                        None => acc = Some(v),
                    }
                    cursors[k] += 1;
                }
            }
            indices.push(min_col);
            values.push(acc.expect("some part held min_col"));
        }
        indptr.push(indices.len());
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

/// Merge two same-shape matrices entry-wise: values present in both are
/// combined with `add`; the result keeps the union structure. Used to
/// accumulate SUMMA stage outputs.
pub fn ewise_add<T: Clone>(a: Csr<T>, b: Csr<T>, mut add: impl FnMut(&mut T, T)) -> Csr<T> {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let mut triples = a.into_triples();
    triples.extend(b.into_triples());
    Csr::from_triples(nrows, ncols, triples, |acc, v| add(acc, v))
}

/// Sparse matrix × dense vector under `semiring`: `y[i] = ⊕_j m[i,j] ⊗ x[j]`.
/// Rows with no surviving contribution yield `None`.
pub fn spmv<S: Semiring>(m: &Csr<S::A>, x: &[S::B], semiring: &S) -> Vec<Option<S::Out>> {
    assert_eq!(m.ncols(), x.len());
    (0..m.nrows())
        .map(|i| {
            let (cols, vals) = m.row(i);
            let mut acc: Option<S::Out> = None;
            for (&j, v) in cols.iter().zip(vals) {
                if let Some(product) = semiring.multiply(v, &x[j as usize]) {
                    match acc.as_mut() {
                        Some(a) => semiring.add(a, product),
                        None => acc = Some(product),
                    }
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::semiring::{BoolOrAnd, MinPlus, PlusTimes};

    fn csr_from_dense(d: &Dense) -> Csr<f64> {
        Csr::from_triples(d.nrows(), d.ncols(), d.triples(), |_, _| unreachable!())
    }

    #[test]
    fn matches_dense_reference() {
        let a = Dense::from_rows(vec![vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let b = Dense::from_rows(vec![vec![0.0, 1.0], vec![4.0, 0.0], vec![5.0, 6.0]]);
        let c = spgemm(&csr_from_dense(&a), &csr_from_dense(&b), &PlusTimes);
        let want = a.matmul(&b);
        assert_eq!(Dense::from_csr(&c), want);
    }

    #[test]
    fn empty_rows_and_columns() {
        let a: Csr<f64> = Csr::empty(3, 4);
        let b: Csr<f64> = Csr::empty(4, 2);
        let c = spgemm(&a, &b, &PlusTimes);
        assert_eq!(c.nnz(), 0);
        assert_eq!((c.nrows(), c.ncols()), (3, 2));
    }

    #[test]
    fn boolean_path_semiring() {
        // Path graph 0-1-2 squared reaches two hops.
        let adj = Csr::from_triples(
            3,
            3,
            vec![(0u32, 1u32, true), (1, 0, true), (1, 2, true), (2, 1, true)],
            |_, _| unreachable!(),
        );
        let two_hop = spgemm(&adj, &adj, &BoolOrAnd);
        assert_eq!(two_hop.get(0, 2), Some(&true));
        assert_eq!(two_hop.get(0, 0), Some(&true)); // back and forth
        assert_eq!(two_hop.get(0, 1), None); // no 2-hop path 0→1 in a path graph
    }

    #[test]
    fn min_plus_shortest_two_hop() {
        let w = Csr::from_triples(
            3,
            3,
            vec![(0u32, 1u32, 5u64), (1, 2, 7), (0, 2, 100)],
            |_, _| unreachable!(),
        );
        let two = spgemm(&w, &w, &MinPlus);
        assert_eq!(two.get(0, 2), Some(&12));
    }

    #[test]
    fn filtering_semiring_drops_products() {
        use crate::semiring::FnSemiring;
        let s = FnSemiring::new(
            |a: &u64, b: &u64| {
                let p = a + b;
                p.is_multiple_of(2).then_some(p)
            },
            |acc: &mut u64, v| *acc = (*acc).min(v),
        );
        let m = Csr::from_triples(
            2,
            2,
            vec![(0u32, 0u32, 1u64), (0, 1, 2)],
            |_, _| unreachable!(),
        );
        let n = Csr::from_triples(
            2,
            2,
            vec![(0u32, 0u32, 1u64), (1, 0, 3)],
            |_, _| unreachable!(),
        );
        // products into (0,0): 1+1=2 (kept), 2+3=5 (dropped)
        let c = spgemm(&m, &n, &s);
        assert_eq!(c.get(0, 0), Some(&2));
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn ewise_add_unions() {
        let a = Csr::from_triples(2, 2, vec![(0u32, 0u32, 1.0f64)], |_, _| unreachable!());
        let b = Csr::from_triples(
            2,
            2,
            vec![(0u32, 0u32, 2.0f64), (1, 1, 5.0)],
            |_, _| unreachable!(),
        );
        let c = ewise_add(a, b, |acc, v| *acc += v);
        assert_eq!(c.get(0, 0), Some(&3.0));
        assert_eq!(c.get(1, 1), Some(&5.0));
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn spmv_plus_times() {
        let m = Csr::from_triples(
            2,
            3,
            vec![(0u32, 0u32, 1.0f64), (0, 2, 2.0), (1, 1, 3.0)],
            |_, _| unreachable!(),
        );
        let y = spmv(&m, &[1.0, 10.0, 100.0], &PlusTimes);
        assert_eq!(y, vec![Some(201.0), Some(30.0)]);
    }

    #[test]
    fn spmv_empty_row_is_none() {
        let m: Csr<f64> = Csr::empty(2, 2);
        let y = spmv(&m, &[1.0, 1.0], &PlusTimes);
        assert_eq!(y, vec![None, None]);
    }

    #[test]
    fn spgemm_range_matches_row_slice() {
        let a = Dense::from_rows(vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 0.0],
            vec![4.0, 0.0, 5.0],
        ]);
        let b = Dense::from_rows(vec![vec![0.0, 1.0], vec![4.0, 0.0], vec![5.0, 6.0]]);
        let full = spgemm(&csr_from_dense(&a), &csr_from_dense(&b), &PlusTimes);
        let mid = spgemm_range(&csr_from_dense(&a), &csr_from_dense(&b), &PlusTimes, 1..3);
        assert_eq!(mid.nrows(), 2);
        for (r, c, v) in mid.iter() {
            assert_eq!(full.get(r as usize + 1, c as usize), Some(v));
        }
        assert_eq!(mid.nnz(), full.row_nnz(1) + full.row_nnz(2));
        let empty = spgemm_range(&csr_from_dense(&a), &csr_from_dense(&b), &PlusTimes, 2..2);
        assert_eq!((empty.nrows(), empty.nnz()), (0, 0));
    }

    #[test]
    fn csr_merge_matches_ewise_add() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let (n, m) = (rng.gen_range(1..10), rng.gen_range(1..10));
            let mut make = |density: f64| {
                let mut t = Vec::new();
                for i in 0..n {
                    for j in 0..m {
                        if rng.gen_bool(density) {
                            t.push((i as u32, j as u32, rng.gen_range(1..5) as f64));
                        }
                    }
                }
                Csr::from_triples(n, m, t, |_, _| unreachable!())
            };
            let a = make(0.4);
            let b = make(0.4);
            let merged = csr_merge(a.clone(), b.clone(), |acc, v| *acc += v);
            let reference = ewise_add(a, b, |acc, v| *acc += v);
            assert_eq!(Dense::from_csr(&merged), Dense::from_csr(&reference));
            // csr_merge must also keep indices sorted within rows
            for i in 0..merged.nrows() {
                let (cols, _) = merged.row(i);
                assert!(cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn csr_merge_with_empty_sides() {
        let a = Csr::from_triples(2, 2, vec![(0u32, 1u32, 2.0f64)], |_, _| unreachable!());
        let empty: Csr<f64> = Csr::empty(2, 2);
        let left = csr_merge(empty.clone(), a.clone(), |acc, v| *acc += v);
        let right = csr_merge(a.clone(), empty.clone(), |acc, v| *acc += v);
        assert_eq!(Dense::from_csr(&left), Dense::from_csr(&a));
        assert_eq!(Dense::from_csr(&right), Dense::from_csr(&a));
        let both = csr_merge(Csr::<f64>::empty(2, 2), Csr::empty(2, 2), |acc, v| {
            *acc += v
        });
        assert_eq!(both.nnz(), 0);
    }

    #[test]
    fn csr_kmerge_matches_folded_csr_merge() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        for parts_n in 1..=5usize {
            let (n, m) = (rng.gen_range(1..9), rng.gen_range(1..9));
            let mut make = || {
                let mut t = Vec::new();
                for i in 0..n {
                    for j in 0..m {
                        if rng.gen_bool(0.35) {
                            t.push((i as u32, j as u32, rng.gen_range(1..9) as f64));
                        }
                    }
                }
                Csr::from_triples(n, m, t, |_, _| unreachable!())
            };
            let parts: Vec<Csr<f64>> = (0..parts_n).map(|_| make()).collect();
            let folded = parts
                .iter()
                .cloned()
                .reduce(|a, b| csr_merge(a, b, |acc, v| *acc += v))
                .expect("non-empty");
            let kway = csr_kmerge(parts, |acc, v| *acc += v);
            assert_eq!(kway.indptr(), folded.indptr());
            assert_eq!(kway.indices(), folded.indices());
            assert_eq!(kway.values(), folded.values());
        }
    }

    #[test]
    fn csr_kmerge_preserves_part_order_for_noncommutative_add() {
        // Concatenation is order-sensitive: the k-way combine must apply
        // `add` in ascending part order, exactly like folding csr_merge
        // left to right (= SUMMA stage order).
        let part = |tag: &str| {
            Csr::from_triples(
                1,
                1,
                vec![(0u32, 0u32, tag.to_string())],
                |_, _| unreachable!(),
            )
        };
        let parts = vec![part("a"), part("b"), part("c")];
        let merged = csr_kmerge(parts, |acc, v| acc.push_str(&v));
        assert_eq!(merged.get(0, 0).map(String::as_str), Some("abc"));
    }

    #[test]
    fn csr_kmerge_single_part_is_identity() {
        let a = Csr::from_triples(2, 3, vec![(0u32, 2u32, 4.0f64)], |_, _| unreachable!());
        let out = csr_kmerge(vec![a.clone()], |_, _| unreachable!());
        assert_eq!(Dense::from_csr(&out), Dense::from_csr(&a));
    }

    #[test]
    fn randomized_against_dense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let (n, m, k) = (
                rng.gen_range(1..12),
                rng.gen_range(1..12),
                rng.gen_range(1..12),
            );
            let mut a = Dense::zeros(n, k);
            let mut b = Dense::zeros(k, m);
            for i in 0..n {
                for j in 0..k {
                    if rng.gen_bool(0.3) {
                        a.set(i, j, rng.gen_range(-4..5) as f64);
                    }
                }
            }
            for i in 0..k {
                for j in 0..m {
                    if rng.gen_bool(0.3) {
                        b.set(i, j, rng.gen_range(-4..5) as f64);
                    }
                }
            }
            let c = spgemm(&csr_from_dense(&a), &csr_from_dense(&b), &PlusTimes);
            assert_eq!(Dense::from_csr(&c), a.matmul(&b));
        }
    }
}
