//! Tiny dense matrix used as a *test oracle* for the sparse kernels
//! (exact `f64` arithmetic on small integer-valued matrices).

/// Row-major dense `f64` matrix. Not for production use — it exists so
/// property tests can check SpGEMM/SUMMA against straightforward
/// triple-loop multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == ncols));
        Dense {
            nrows,
            ncols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    pub fn from_csr(m: &crate::csr::Csr<f64>) -> Self {
        let mut out = Dense::zeros(m.nrows(), m.ncols());
        for (r, c, &v) in m.iter() {
            out.set(r as usize, c as usize, v);
        }
        out
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Nonzero entries as sparse triples.
    pub fn triples(&self) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                let v = self.get(i, j);
                if v != 0.0 {
                    out.push((i as u32, j as u32, v));
                }
            }
        }
        out
    }

    /// Triple-loop reference multiply.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.ncols, other.nrows);
        let mut out = Dense::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        out
    }

    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Dense::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = Dense::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Dense::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn triples_skip_zeros() {
        let a = Dense::from_rows(vec![vec![0.0, 2.0], vec![0.0, 0.0]]);
        assert_eq!(a.triples(), vec![(0, 1, 2.0)]);
    }
}
