//! Compressed sparse row storage — the workhorse local format for SpGEMM
//! and row-oriented reductions. Indices are `u32` (a local matrix block
//! never exceeds 2³² rows/columns in any ELBA workload).

/// A sparse matrix in CSR form with explicit `(indptr, indices, values)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<T>,
}

impl<T> Csr<T> {
    /// Empty matrix of the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from (row, col, value) triples; duplicates are merged with
    /// `combine` (applied left-to-right in input order).
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        mut triples: Vec<(u32, u32, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) -> Self {
        triples.sort_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut indptr = vec![0usize; nrows + 1];
        let mut indices = Vec::with_capacity(triples.len());
        let mut values: Vec<T> = Vec::with_capacity(triples.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in triples {
            debug_assert!((r as usize) < nrows && (c as usize) < ncols);
            if last == Some((r, c)) {
                let acc = values.last_mut().expect("duplicate follows an entry");
                combine(acc, v);
            } else {
                indptr[r as usize + 1] += 1;
                indices.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for i in 0..nrows {
            indptr[i + 1] += indptr[i];
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Build from parts already in canonical CSR order (sorted, deduped).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().expect("indptr non-empty"), indices.len());
        debug_assert!(indices.iter().all(|&c| (c as usize) < ncols));
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Bytes of heap storage behind this matrix (indptr + indices +
    /// values, by length). The quantity every stage charges against the
    /// memory tracker; deterministic across runs, unlike capacities.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// [`Csr::heap_bytes`] plus the heap owned *inside* the stored
    /// values ([`elba_mem::DeepBytes`]): the true resident footprint for
    /// value types that are not plain-old-data (a `Vec`-carrying matrix
    /// entry would be undercounted at `size_of`). Equal to `heap_bytes`
    /// for POD values.
    pub fn deep_heap_bytes(&self) -> usize
    where
        T: elba_mem::DeepBytes,
    {
        self.heap_bytes()
            + self
                .values
                .iter()
                .map(elba_mem::DeepBytes::deep_bytes)
                .sum::<usize>()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let span = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&(j as u32)).ok().map(|k| &vals[k])
    }

    /// Iterate all stored entries as `(row, col, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&c, v)| (i as u32, c, v))
        })
    }

    /// Consume into the raw `(indptr, indices, values)` arrays — the
    /// inverse of [`Csr::from_parts`]. Used by the blocked SUMMA path to
    /// concatenate disjoint row-batch outputs without re-sorting.
    pub fn into_parts(self) -> (Vec<usize>, Vec<u32>, Vec<T>) {
        (self.indptr, self.indices, self.values)
    }

    /// Consume into (row, col, value) triples in row-major order.
    pub fn into_triples(self) -> Vec<(u32, u32, T)> {
        let mut out = Vec::with_capacity(self.nnz());
        let mut values = self.values.into_iter();
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                out.push((
                    i as u32,
                    self.indices[k],
                    values.next().expect("value per index"),
                ));
            }
        }
        out
    }

    /// Map stored values, preserving structure.
    pub fn map<U>(self, mut f: impl FnMut(u32, u32, T) -> U) -> Csr<U> {
        let mut values = Vec::with_capacity(self.values.len());
        let mut it = self.values.into_iter();
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                values.push(f(
                    i as u32,
                    self.indices[k],
                    it.next().expect("value per index"),
                ));
            }
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr,
            indices: self.indices,
            values,
        }
    }

    /// Keep only entries satisfying the predicate (CombBLAS `Prune`).
    pub fn retain(self, mut keep: impl FnMut(u32, u32, &T) -> bool) -> Csr<T> {
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(self.indices.len());
        let mut values = Vec::with_capacity(self.values.len());
        let mut it = self.values.into_iter();
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let v = it.next().expect("value per index");
                let c = self.indices[k];
                if keep(i as u32, c, &v) {
                    indices.push(c);
                    values.push(v);
                    indptr[i + 1] += 1;
                }
            }
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Local transpose (O(nnz + dims)).
    pub fn transpose(self) -> Csr<T> {
        let mut indptr = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            indptr[j + 1] += indptr[j];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values: Vec<Option<T>> = (0..self.nnz()).map(|_| None).collect();
        let mut it = self.values.into_iter();
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k] as usize;
                let pos = cursor[c];
                cursor[c] += 1;
                indices[pos] = i as u32;
                values[pos] = Some(it.next().expect("value per index"));
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values: values
                .into_iter()
                .map(|v| v.expect("slot filled"))
                .collect(),
        }
    }

    /// Row-wise reduction: fold each row's values into one output.
    pub fn row_reduce<U>(
        &self,
        mut init: impl FnMut() -> U,
        mut fold: impl FnMut(&mut U, u32, &T),
    ) -> Vec<U> {
        (0..self.nrows)
            .map(|i| {
                let mut acc = init();
                let (cols, vals) = self.row(i);
                for (&c, v) in cols.iter().zip(vals) {
                    fold(&mut acc, c, v);
                }
                acc
            })
            .collect()
    }
}

impl<T: elba_comm::CommMsg + Clone> elba_comm::CommMsg for Csr<T> {
    fn nbytes(&self) -> usize {
        // Shape header + indptr + indices + values.
        16 + self.indptr.len() * 8
            + self.indices.len() * 4
            + self.values.iter().map(|v| v.nbytes()).sum::<usize>()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.nrows as u64).to_ne_bytes());
        out.extend_from_slice(&(self.ncols as u64).to_ne_bytes());
        self.indptr.wire_encode(out);
        self.indices.wire_encode(out);
        self.values.wire_encode(out);
    }

    fn wire_decode(
        r: &mut elba_comm::transport::wire::WireReader<'_>,
    ) -> Result<Self, elba_comm::transport::wire::WireError> {
        use elba_comm::transport::wire::WireError;
        let nrows =
            usize::try_from(r.read_u64()?).map_err(|_| WireError::Malformed("csr shape"))?;
        let ncols =
            usize::try_from(r.read_u64()?).map_err(|_| WireError::Malformed("csr shape"))?;
        let indptr = Vec::<usize>::wire_decode(r)?;
        let indices = Vec::<u32>::wire_decode(r)?;
        let values = Vec::<T>::wire_decode(r)?;
        // Cheap structural sanity so a corrupt frame cannot produce a
        // panel whose accessors index out of bounds.
        let consistent = indptr.len() == nrows + 1
            && indptr.first() == Some(&0)
            && indptr.last() == Some(&indices.len())
            && indices.len() == values.len();
        if !consistent {
            return Err(WireError::Malformed("csr structure"));
        }
        Ok(Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_triples(
            3,
            3,
            vec![(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)],
            |_, _| panic!("no duplicates"),
        )
    }

    #[test]
    fn from_triples_sorts() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0, 4.0][..]));
    }

    #[test]
    fn duplicates_merge() {
        let m = Csr::from_triples(
            2,
            2,
            vec![(0, 1, 1.0), (0, 1, 2.0), (0, 1, 4.0)],
            |acc, v| *acc += v,
        );
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), Some(&7.0));
    }

    #[test]
    fn get_and_iter() {
        let m = sample();
        assert_eq!(m.get(2, 1), Some(&4.0));
        assert_eq!(m.get(1, 1), None);
        let triples: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.clone().transpose();
        assert_eq!(t.get(1, 2), Some(&4.0));
        assert_eq!(t.get(0, 0), Some(&1.0));
        assert_eq!(t.get(2, 0), Some(&2.0));
        let back = t.transpose();
        assert_eq!(back, m);
    }

    #[test]
    fn retain_filters() {
        let m = sample().retain(|_, _, &v| v > 2.0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(2, 0), Some(&3.0));
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    fn map_preserves_structure() {
        let m = sample().map(|r, c, v| (r + c) as f64 + v);
        assert_eq!(m.get(2, 1), Some(&7.0));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn row_reduce_degrees() {
        let deg = sample().row_reduce(|| 0u64, |acc, _, _| *acc += 1);
        assert_eq!(deg, vec![2, 0, 2]);
    }

    #[test]
    fn into_triples_round_trip() {
        let m = sample();
        let t = m.clone().into_triples();
        let rebuilt = Csr::from_triples(3, 3, t, |_, _| unreachable!());
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn empty_matrix() {
        let m: Csr<u8> = Csr::empty(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(3).0.len(), 0);
    }
}
