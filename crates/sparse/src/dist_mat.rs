//! 2D-distributed sparse matrix (CombBLAS-style) over a √P×√P grid.
//!
//! Rank `(i, j)` owns block `(i, j)`: rows `row_layout.block_range(i)` ×
//! columns `col_layout.block_range(j)`, stored locally as CSR with local
//! indices. Provides the distributed operations ELBA's pipeline is built
//! from: triple routing, SUMMA SpGEMM under an arbitrary semiring,
//! transpose, element-wise apply/prune, row-wise reduction into a
//! [`DistVec`], and symmetric row+column masking (branch removal).

use std::sync::Arc;

use elba_comm::{CommMsg, MemCharge, ProcGrid};

use crate::csr::Csr;
use crate::dist_vec::DistVec;
use crate::layout::Layout2D;
use crate::semiring::Semiring;
use crate::spgemm::{csr_merge, SpGemmBatcher};

/// Tag for the transpose block exchange.
const TRANSPOSE_TAG: u64 = 0x00F1_7A7A;

/// See [`DistMat::pinned_copy_count`].
static PINNED_COPIES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Merge one batch-produced row (`cols`/`vals`, sorted by column) into a
/// per-row accumulator in place — the row-local step of the blocked
/// schedule's incremental accumulation. Transient memory is one merged
/// row, not a matrix.
fn merge_row<T>(
    acc: &mut (Vec<u32>, Vec<T>),
    cols: &[u32],
    vals: Vec<T>,
    mut add: impl FnMut(&mut T, T),
) {
    let (acc_cols, acc_vals) = acc;
    if acc_cols.is_empty() {
        acc_cols.extend_from_slice(cols);
        *acc_vals = vals;
        return;
    }
    let mut merged_cols = Vec::with_capacity(acc_cols.len() + cols.len());
    let mut merged_vals = Vec::with_capacity(acc_cols.len() + cols.len());
    let mut old_vals = std::mem::take(acc_vals).into_iter();
    let mut new_vals = vals.into_iter();
    let (mut ia, mut ib) = (0, 0);
    while ia < acc_cols.len() && ib < cols.len() {
        match acc_cols[ia].cmp(&cols[ib]) {
            std::cmp::Ordering::Less => {
                merged_cols.push(acc_cols[ia]);
                merged_vals.push(old_vals.next().expect("value per column"));
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                merged_cols.push(cols[ib]);
                merged_vals.push(new_vals.next().expect("value per column"));
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut v = old_vals.next().expect("value per column");
                add(&mut v, new_vals.next().expect("value per column"));
                merged_cols.push(acc_cols[ia]);
                merged_vals.push(v);
                ia += 1;
                ib += 1;
            }
        }
    }
    merged_cols.extend_from_slice(&acc_cols[ia..]);
    merged_vals.extend(old_vals);
    merged_cols.extend_from_slice(&cols[ib..]);
    merged_vals.extend(new_vals);
    *acc_cols = merged_cols;
    *acc_vals = merged_vals;
}

/// One SUMMA stage's row-blocked multiply merged straight into the
/// per-row accumulators: multiply `batch_rows` rows at a time over the
/// output-column `window` (across `threads` intra-rank workers), merge
/// each produced row, and re-size `charge` to `acc_entries ×
/// entry_bytes + resident` (plus the per-worker SPA scratch) after
/// every row batch so the tracker sees the true working set. Returns
/// the updated accumulated-entry count plus the wall seconds spent in
/// multiplies that genuinely fanned out to > 1 worker (the `par-s`
/// contribution — the serial per-row merge on the rank thread is
/// deliberately *not* counted, mirroring the eager/pipelined schedules
/// which time only the multiply). The shared inner loop of the blocked
/// and column-batched SUMMA schedules — they differ only in the window
/// and in what counts as `resident`.
#[allow(clippy::too_many_arguments)]
fn merge_stage_rows<S>(
    a_block: &Csr<S::A>,
    b_block: &Csr<S::B>,
    semiring: &S,
    window: std::ops::Range<u32>,
    batch_rows: usize,
    threads: usize,
    acc_rows: &mut [(Vec<u32>, Vec<S::Out>)],
    mut acc_entries: usize,
    entry_bytes: usize,
    resident: usize,
    charge: &mut MemCharge,
) -> (usize, f64)
where
    S: Semiring + Sync,
    S::A: Sync,
    S::B: Sync,
{
    let nrows = acc_rows.len();
    let mut batcher = SpGemmBatcher::new(a_block, b_block, semiring).with_threads(threads);
    let mut par_secs = 0.0f64;
    let mut start = 0;
    while start < nrows {
        let end = (start + batch_rows).min(nrows);
        let multiply_started = std::time::Instant::now();
        let batch = batcher.multiply_rows_par(start..end, window.clone());
        if batcher.last_run_parallel() {
            par_secs += multiply_started.elapsed().as_secs_f64();
        }
        let (batch_indptr, batch_indices, batch_values) = batch.into_parts();
        let mut batch_vals = batch_values.into_iter();
        for (in_batch, row) in (start..end).enumerate() {
            let width = batch_indptr[in_batch + 1] - batch_indptr[in_batch];
            if width == 0 {
                continue;
            }
            let cols = &batch_indices[batch_indptr[in_batch]..batch_indptr[in_batch + 1]];
            let vals: Vec<S::Out> = batch_vals.by_ref().take(width).collect();
            let before = acc_rows[row].0.len();
            merge_row(&mut acc_rows[row], cols, vals, |a, v| semiring.add(a, v));
            acc_entries += acc_rows[row].0.len() - before;
        }
        charge.set(acc_entries * entry_bytes + resident + batcher.scratch_bytes());
        start = end;
    }
    charge.set(acc_entries * entry_bytes + resident);
    (acc_entries, par_secs)
}

/// Pack per-row `(cols, vals)` accumulators into one CSR. The packed
/// arrays are allocated at full capacity while the row Vecs are still
/// resident (rows free one by one as they are consumed), so assembly
/// transiently doubles the accumulated bytes — `charge` is bumped to
/// that peak and settled back to 1× once packed. Shared by the blocked
/// and column-batched SUMMA schedules.
fn pack_rows_into_csr<V>(
    acc_rows: Vec<(Vec<u32>, Vec<V>)>,
    ncols: usize,
    entries: usize,
    entry_bytes: usize,
    charge: &mut MemCharge,
) -> Csr<V> {
    charge.set(2 * entries * entry_bytes);
    let nrows = acc_rows.len();
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::with_capacity(entries);
    let mut values: Vec<V> = Vec::with_capacity(entries);
    for (cols, vals) in acc_rows {
        indices.extend(cols);
        values.extend(vals);
        indptr.push(indices.len());
    }
    charge.set(entries * entry_bytes);
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

/// Wall-clock accumulator for the (potentially threaded) local kernel
/// spans of one SUMMA schedule. The rank thread is blocked while its
/// workers run, so kernel time is already inside the phase's wall time;
/// this clock additionally books it to the profile's dedicated
/// `par-s` bucket (via [`elba_comm::Comm::record_par_time`]) when the
/// schedule actually ran threaded, making intra-rank parallel time
/// observable without touching the wire-byte model.
struct ParKernelClock {
    total: f64,
}

impl ParKernelClock {
    fn new() -> Self {
        ParKernelClock { total: 0.0 }
    }

    /// Accumulate kernel span seconds that *genuinely* fanned out
    /// (callers gate on [`SpGemmBatcher::last_run_parallel`], so a tiny
    /// window's serial fallback books nothing even at `threads > 1`).
    fn add(&mut self, secs: f64) {
        self.total += secs;
    }

    /// Book the accumulated threaded-kernel seconds to the rank profile
    /// (no-op when nothing fanned out, keeping serial profiles
    /// bit-identical to the pre-threading ones).
    fn book(&self, grid: &ProcGrid) {
        if self.total > 0.0 {
            grid.world().record_par_time(self.total);
        }
    }
}

/// Which distributed SUMMA schedule [`DistMat::spgemm_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpGemmAlgorithm {
    /// The naive schedule: a blocking broadcast per stage, every stage's
    /// output kept as raw triples, one global sort-merge at the end.
    /// Highest peak memory, no communication/computation overlap; kept
    /// as the reference baseline.
    Eager,
    /// Double-buffered pipeline: stage `s+1`'s A/B broadcasts are posted
    /// (non-blocking `ibcast`) before stage `s` is computed, so the
    /// transfer overlaps the local multiply; each stage's output is
    /// merged into the accumulated CSR immediately, bounding live
    /// intermediates to two stages of blocks plus the running result.
    Pipelined,
    /// Memory-bounded schedule: blocking broadcasts (one stage of
    /// remote blocks resident, never two), the local multiply run over
    /// row batches of at most [`SpGemmOptions::batch_rows`] rows, each
    /// batch merged into a per-row accumulator immediately — no global
    /// triple buffer and no stage-wide intermediate matrix ever exist.
    /// Live transients beyond the growing result are one batch of
    /// output rows and one merged row. The schedule of choice when the
    /// result block is large relative to the memory budget.
    Blocked,
    /// ELBA's full batched algorithm: the *output* is split into column
    /// batches sized from [`SpGemmOptions::mem_budget`] via a cheap
    /// flop/nnz estimate pass (structure-only broadcasts), and one
    /// pipelined, row-blocked SUMMA round runs per batch over the
    /// `ibcast` pipeline. The accumulated batch block plus the resident
    /// broadcast blocks never exceed the budget (each batch's flop-count
    /// upper-bounds its accumulator), so overlap detection's memory is
    /// bounded regardless of how dense `C = AAᵀ` gets — at the price of
    /// re-broadcasting the input blocks once per round.
    ColumnBatched,
    /// Communication-avoiding layered SUMMA (the one-process-per-rank
    /// shape of 2.5D/Solomonik–Demmel grids): the `q` stages are split
    /// into `c` contiguous slices, each slice's A/B broadcasts are
    /// posted together as one non-blocking batch (the in-flight batch
    /// is the layer's replicated panel set; the next slice prefetches
    /// while this one multiplies), every slice accumulates an
    /// *independent* partial CSR, and the resident partials meet in one
    /// final fixed-order k-way combine — the degenerate form of 2.5D's
    /// allreduce tree when all layers share a rank. Trades `c` resident
    /// partial results (honestly charged to the memory tracker) for
    /// slice-deep broadcast overlap and strictly less merge traffic
    /// than the per-stage binary merges of [`SpGemmAlgorithm::Pipelined`].
    /// Wire bytes are identical to every other schedule (same q stage
    /// broadcasts; the byte model is sacred). `c = 1` *is* the
    /// pipelined path; `c > q` clamps to `q` with a warning.
    Layered {
        /// Layer count: how many slices the stages split into.
        c: usize,
    },
    /// Model-driven schedule selection: run the ColumnBatched structure
    /// pass once, reduce the flop/nnz estimates grid-wide, and let
    /// [`elba_comm::CostConstants::predict_phase`] pick the cheapest
    /// feasible schedule (eager / pipelined / column-batched / layered)
    /// at assemble time. Deterministic across ranks: every input to the
    /// prediction is allreduced and the calibration constants are
    /// fixed, so all ranks reach the same pick and the collective
    /// schedule stays synchronized. The choice is observable via
    /// [`last_auto_spgemm_pick`] and a rank-0 `[auto-spgemm]` line.
    Auto,
}

/// Options threaded through every distributed SpGEMM call site
/// (overlap detection, transitive reduction, benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpGemmOptions {
    pub algorithm: SpGemmAlgorithm,
    /// Row-batch size for [`SpGemmAlgorithm::Blocked`] and the per-round
    /// multiply of [`SpGemmAlgorithm::ColumnBatched`]; ignored by the
    /// other schedules. Smaller batches mean smaller live transients
    /// (the batch's output rows) at slightly more per-batch overhead.
    pub batch_rows: usize,
    /// Per-rank transient byte cap for [`SpGemmAlgorithm::ColumnBatched`]
    /// (broadcast blocks + batch accumulator); `None` runs a single
    /// column batch. Ignored by the other schedules.
    pub mem_budget: Option<u64>,
    /// Intra-rank worker threads for the local multiply inside every
    /// SUMMA stage (`0` inherits the global [`elba_par::ElbaPar`] knob,
    /// whose default of 1 is the historical serial behavior). Output is
    /// byte-identical across thread counts — per-row results merge in
    /// fixed row order — and workers never enter the comm layer, so
    /// profiled wire bytes are unchanged too.
    pub threads: usize,
}

impl Default for SpGemmOptions {
    fn default() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Pipelined,
            batch_rows: 1024,
            mem_budget: None,
            threads: 0,
        }
    }
}

impl SpGemmOptions {
    pub fn eager() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Eager,
            ..Self::default()
        }
    }

    pub fn pipelined() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Pipelined,
            ..Self::default()
        }
    }

    pub fn blocked(batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "blocked SpGEMM needs a positive batch size");
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Blocked,
            batch_rows,
            ..Self::default()
        }
    }

    /// Use `threads` intra-rank workers for the local multiply of every
    /// SUMMA stage (`0` inherits the global knob).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The output-column-batched schedule under a transient byte budget
    /// per rank (`None` = one batch, i.e. a pipelined blocked multiply).
    pub fn column_batched(batch_rows: usize, mem_budget: Option<u64>) -> Self {
        assert!(batch_rows > 0, "batched SpGEMM needs a positive batch size");
        assert!(
            mem_budget != Some(0),
            "a SpGEMM memory budget must be positive"
        );
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::ColumnBatched,
            batch_rows,
            mem_budget,
            ..Self::default()
        }
    }

    /// The layered (2.5D-style) schedule with `c` layers. `c = 1` is the
    /// pipelined schedule; `c` greater than the grid's stage count
    /// clamps at run time.
    pub fn layered(c: usize) -> Self {
        assert!(c >= 1, "layered SpGEMM needs at least one layer");
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Layered { c },
            ..Self::default()
        }
    }

    /// Model-driven schedule selection ([`SpGemmAlgorithm::Auto`]).
    pub fn auto() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Auto,
            ..Self::default()
        }
    }
}

/// Last schedule resolved by [`SpGemmAlgorithm::Auto`], encoded for the
/// atomic (0 = none yet). Written by rank 0 only — the pick is
/// grid-uniform by construction, so one writer suffices and the
/// "changed?" test that gates the log line stays race-free.
static LAST_AUTO_PICK: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn encode_pick(algorithm: SpGemmAlgorithm) -> usize {
    match algorithm {
        SpGemmAlgorithm::Eager => 1,
        SpGemmAlgorithm::Pipelined => 2,
        SpGemmAlgorithm::Blocked => 3,
        SpGemmAlgorithm::ColumnBatched => 4,
        SpGemmAlgorithm::Layered { c } => 5 + c,
        SpGemmAlgorithm::Auto => unreachable!("auto resolves to a concrete schedule"),
    }
}

/// The schedule the most recent [`SpGemmAlgorithm::Auto`] resolution
/// picked, if any ran in this process. Benches and the CLI use this to
/// report the tuner's decision next to measured ground truth.
pub fn last_auto_spgemm_pick() -> Option<SpGemmAlgorithm> {
    match LAST_AUTO_PICK.load(std::sync::atomic::Ordering::Relaxed) {
        0 => None,
        1 => Some(SpGemmAlgorithm::Eager),
        2 => Some(SpGemmAlgorithm::Pipelined),
        3 => Some(SpGemmAlgorithm::Blocked),
        4 => Some(SpGemmAlgorithm::ColumnBatched),
        n => Some(SpGemmAlgorithm::Layered { c: n - 5 }),
    }
}

/// Short CLI/bench label for a schedule ("layered:2", "auto", ...).
pub fn algorithm_label(algorithm: SpGemmAlgorithm) -> String {
    match algorithm {
        SpGemmAlgorithm::Eager => "eager".into(),
        SpGemmAlgorithm::Pipelined => "pipelined".into(),
        SpGemmAlgorithm::Blocked => "blocked".into(),
        SpGemmAlgorithm::ColumnBatched => "column-batched".into(),
        SpGemmAlgorithm::Layered { c } => format!("layered:{c}"),
        SpGemmAlgorithm::Auto => "auto".into(),
    }
}

/// Contiguous near-even split of the `q` SUMMA stages into `c` layer
/// slices: the first `q % c` slices get one extra stage, so prime stage
/// counts (where `c ∤ q`) yield uneven-but-exhaustive slices. Requires
/// `1 ≤ c ≤ q`; every slice is non-empty.
fn layer_slices(q: usize, c: usize) -> Vec<std::ops::Range<usize>> {
    debug_assert!(c >= 1 && c <= q);
    let base = q / c;
    let rem = q % c;
    let mut slices = Vec::with_capacity(c);
    let mut start = 0;
    for l in 0..c {
        let len = base + usize::from(l < rem);
        slices.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, q);
    slices
}

/// A sparse matrix distributed in 2D blocks over the process grid.
///
/// The local block lives behind an [`Arc`]: SUMMA stage broadcasts ship
/// it down the grid row/column as `Arc` clones (zero payload
/// deep-copies, root included — see [`elba_comm::Comm::ibcast_shared`]),
/// and cloning a `DistMat` is a shallow reference bump. Every mutating
/// operation consumes `self` and produces a fresh block, so shared
/// references can never observe mutation.
#[derive(Debug, Clone)]
pub struct DistMat<T> {
    row_layout: Layout2D,
    col_layout: Layout2D,
    local: Arc<Csr<T>>,
}

impl<T: Clone + CommMsg + Sync> DistMat<T> {
    /// Collectively build from triples with *global* indices; each rank may
    /// contribute any subset (triples are routed to their owner block).
    /// Duplicate entries are merged with `combine`.
    pub fn from_triples(
        grid: &ProcGrid,
        nrows: usize,
        ncols: usize,
        triples: Vec<(u64, u64, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) -> Self {
        let q = grid.q();
        let row_layout = Layout2D::new(nrows, q);
        let col_layout = Layout2D::new(ncols, q);
        let p = grid.world().size();
        let mut outgoing: Vec<Vec<(u64, u64, T)>> = (0..p).map(|_| Vec::new()).collect();
        for (r, c, v) in triples {
            let bi = row_layout.block_of(r as usize);
            let bj = col_layout.block_of(c as usize);
            outgoing[grid.rank_of(bi, bj)].push((r, c, v));
        }
        let incoming = grid.world().alltoallv(outgoing);
        let row_range = row_layout.block_range(grid.myrow());
        let col_range = col_layout.block_range(grid.mycol());
        let local_triples: Vec<(u32, u32, T)> = incoming
            .into_iter()
            .flatten()
            .map(|(r, c, v)| {
                (
                    (r as usize - row_range.start) as u32,
                    (c as usize - col_range.start) as u32,
                    v,
                )
            })
            .collect();
        let local = Csr::from_triples(row_range.len(), col_range.len(), local_triples, |acc, v| {
            combine(acc, v)
        });
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(local),
        }
    }

    /// Wrap an existing local block (layouts must match the grid).
    pub fn from_local(grid: &ProcGrid, nrows: usize, ncols: usize, local: Csr<T>) -> Self {
        let row_layout = Layout2D::new(nrows, grid.q());
        let col_layout = Layout2D::new(ncols, grid.q());
        assert_eq!(local.nrows(), row_layout.block_range(grid.myrow()).len());
        assert_eq!(local.ncols(), col_layout.block_range(grid.mycol()).len());
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(local),
        }
    }

    /// Global row count.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.row_layout.len()
    }

    /// Global column count.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.col_layout.len()
    }

    #[inline]
    pub fn row_layout(&self) -> Layout2D {
        self.row_layout
    }

    #[inline]
    pub fn col_layout(&self) -> Layout2D {
        self.col_layout
    }

    /// This rank's local block.
    #[inline]
    pub fn local(&self) -> &Csr<T> {
        &self.local
    }

    /// The `Arc` behind this rank's local block — the handle the shared
    /// broadcast path clones and [`elba_comm::Comm::mem_charge_shared`]
    /// keys its once-per-rank charge on.
    #[inline]
    pub fn local_arc(&self) -> &Arc<Csr<T>> {
        &self.local
    }

    /// Take the local block out, copying only if other references to it
    /// are still alive (a freshly built matrix is sole owner). The copy
    /// fallback is deliberate — mutating one handle of a shallowly
    /// cloned `DistMat` must not disturb the other — but the copy is
    /// *invisible to the memory tracker* (no `Comm` in scope here):
    /// callers holding a `SharedMemCharge` on the block should drop the
    /// guard before a consuming operation (see the TrReduction ordering
    /// in `elba-core`). [`DistMat::pinned_copy_count`] counts fallback
    /// firings so hot paths can be pinned to zero in tests.
    fn into_local(self) -> Csr<T> {
        Arc::try_unwrap(self.local).unwrap_or_else(|arc| {
            PINNED_COPIES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            (*arc).clone()
        })
    }

    /// Process-wide count of `DistMat::into_local` copy fallbacks
    /// (consuming a block whose `Arc` something else still pins). A
    /// diagnostic, not an error: nonzero means an untracked deep copy
    /// happened somewhere.
    pub fn pinned_copy_count() -> usize {
        PINNED_COPIES.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Heap bytes behind this rank's local block — what one rank charges
    /// against the memory tracker while the matrix is resident.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.local.heap_bytes()
    }

    /// [`DistMat::heap_bytes`] including heap nested *inside* values
    /// (see [`Csr::deep_heap_bytes`]) — what honest residency charging
    /// uses for non-POD value types.
    #[inline]
    pub fn deep_heap_bytes(&self) -> usize
    where
        T: elba_mem::DeepBytes,
    {
        self.local.deep_heap_bytes()
    }

    /// Global nonzero count (collective).
    pub fn nnz_global(&self, grid: &ProcGrid) -> u64 {
        grid.world()
            .allreduce(self.local.nnz() as u64, |a, b| a + b)
    }

    /// Global index offsets of the local block: `(row_start, col_start)`.
    pub fn local_offsets(&self, grid: &ProcGrid) -> (usize, usize) {
        (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        )
    }

    /// Iterate local entries with *global* coordinates.
    pub fn iter_global<'a>(
        &'a self,
        grid: &ProcGrid,
    ) -> impl Iterator<Item = (u64, u64, &'a T)> + 'a {
        let (r0, c0) = self.local_offsets(grid);
        self.local
            .iter()
            .map(move |(r, c, v)| ((r as usize + r0) as u64, (c as usize + c0) as u64, v))
    }

    /// Gather every triple on every rank (test/diagnostic helper; global
    /// coordinates, unsorted).
    pub fn gather_triples(&self, grid: &ProcGrid) -> Vec<(u64, u64, T)> {
        let local: Vec<(u64, u64, T)> = self
            .iter_global(grid)
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        grid.world()
            .allgather(local)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Element-wise value transform (CombBLAS `Apply`); local, no
    /// communication. `f` sees global coordinates.
    pub fn map_values<U: Clone + CommMsg>(
        self,
        grid: &ProcGrid,
        mut f: impl FnMut(u64, u64, T) -> U,
    ) -> DistMat<U> {
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        let (row_layout, col_layout) = (self.row_layout, self.col_layout);
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(
                self.into_local()
                    .map(|r, c, v| f((r as usize + r0) as u64, (c as usize + c0) as u64, v)),
            ),
        }
    }

    /// Keep only entries satisfying `keep` (CombBLAS `Prune`); local.
    pub fn prune(self, grid: &ProcGrid, mut keep: impl FnMut(u64, u64, &T) -> bool) -> DistMat<T> {
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        let (row_layout, col_layout) = (self.row_layout, self.col_layout);
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(
                self.into_local()
                    .retain(|r, c, v| keep((r as usize + r0) as u64, (c as usize + c0) as u64, v)),
            ),
        }
    }

    /// Prune entries of `self` using the co-located entry of another
    /// same-shape, same-layout matrix (local; no communication). `keep`
    /// receives global coordinates, the value, and the other matrix's
    /// entry at the same position if present.
    pub fn zip_prune<U>(
        self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        mut keep: impl FnMut(u64, u64, &T, Option<&U>) -> bool,
    ) -> DistMat<T> {
        assert_eq!(self.row_layout, other.row_layout);
        assert_eq!(self.col_layout, other.col_layout);
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        let other_local = Arc::clone(&other.local);
        let (row_layout, col_layout) = (self.row_layout, self.col_layout);
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(self.into_local().retain(|r, c, v| {
                keep(
                    (r as usize + r0) as u64,
                    (c as usize + c0) as u64,
                    v,
                    other_local.get(r as usize, c as usize),
                )
            })),
        }
    }

    /// Distributed transpose: block `(i, j)` swaps (transposed) triples
    /// with the rank at `(j, i)`.
    pub fn transpose(&self, grid: &ProcGrid) -> DistMat<T> {
        let transposed: Vec<(u64, u64, T)> = self
            .iter_global(grid)
            .map(|(r, c, v)| (c, r, v.clone()))
            .collect();
        let received = if grid.is_diagonal() {
            transposed
        } else {
            let partner = grid.transpose_rank();
            grid.world().send(partner, TRANSPOSE_TAG, transposed);
            grid.world()
                .recv::<Vec<(u64, u64, T)>>(partner, TRANSPOSE_TAG)
        };
        // After the swap this rank holds block (myrow, mycol) of Aᵀ, whose
        // row layout is A's column layout and vice versa.
        let row_layout = self.col_layout;
        let col_layout = self.row_layout;
        let row_range = row_layout.block_range(grid.myrow());
        let col_range = col_layout.block_range(grid.mycol());
        let local_triples: Vec<(u32, u32, T)> = received
            .into_iter()
            .map(|(r, c, v)| {
                (
                    (r as usize - row_range.start) as u32,
                    (c as usize - col_range.start) as u32,
                    v,
                )
            })
            .collect();
        let local = Csr::from_triples(row_range.len(), col_range.len(), local_triples, |_, _| {
            unreachable!("transpose cannot create duplicates")
        });
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(local),
        }
    }

    /// Distributed SpGEMM `C = self ⊗ other` under `semiring`, via the 2D
    /// SUMMA algorithm: at stage `s`, block column `s` of `A` is broadcast
    /// along grid rows and block row `s` of `B` along grid columns; each
    /// rank multiplies the pair locally and accumulates its `C` block.
    ///
    /// Runs the default schedule ([`SpGemmAlgorithm::Pipelined`]); use
    /// [`DistMat::spgemm_with`] to pick a schedule explicitly.
    pub fn spgemm<S, U>(&self, grid: &ProcGrid, other: &DistMat<U>, semiring: &S) -> DistMat<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        self.spgemm_with(grid, other, semiring, &SpGemmOptions::default())
    }

    /// Distributed SUMMA SpGEMM under an explicit schedule; all schedules
    /// produce identical results (the equivalence property tests pin
    /// this), differing only in overlap and peak memory.
    pub fn spgemm_with<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        opts: &SpGemmOptions,
    ) -> DistMat<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        assert_eq!(
            self.col_layout, other.row_layout,
            "inner dimension layouts must agree for SUMMA"
        );
        let entry_bytes = (std::mem::size_of::<u32>() + std::mem::size_of::<S::Out>()) as u64;
        let opts = self.resolved_options(grid, other, opts, entry_bytes);
        let threads = elba_par::ElbaPar::resolve(opts.threads);
        let local = match opts.algorithm {
            SpGemmAlgorithm::Eager => self.summa_eager(grid, other, semiring, threads),
            SpGemmAlgorithm::Pipelined => self.summa_pipelined(grid, other, semiring, threads),
            SpGemmAlgorithm::Blocked => {
                self.summa_blocked(grid, other, semiring, opts.batch_rows.max(1), threads)
            }
            SpGemmAlgorithm::ColumnBatched => self.summa_column_batched(
                grid,
                other,
                semiring,
                opts.batch_rows.max(1),
                opts.mem_budget,
                threads,
                &mut |_, _, _| true,
            ),
            SpGemmAlgorithm::Layered { c } => {
                if c <= 1 {
                    // c=1 *is* the pipelined schedule, not a lookalike:
                    // identical code path, identical profile numbers.
                    self.summa_pipelined(grid, other, semiring, threads)
                } else {
                    self.summa_layered(grid, other, semiring, c, threads)
                }
            }
            SpGemmAlgorithm::Auto => unreachable!("auto resolved above"),
        };
        DistMat {
            row_layout: self.row_layout,
            col_layout: other.col_layout,
            local: Arc::new(local),
        }
    }

    /// [`DistMat::spgemm_with`] fused with an entry-wise prune:
    /// equivalent to `spgemm_with(..).prune(grid, keep)` for every
    /// schedule, but under [`SpGemmAlgorithm::ColumnBatched`] the
    /// predicate runs on each column batch *as it completes* — exactly
    /// ELBA's batched overlap detection, where the shared-k-mer
    /// threshold is applied per batch so only the pruned output is ever
    /// retained. Without the fusion, a budget can bound every transient
    /// and still drown in the unpruned product; with it, the retained
    /// bytes are the pruned matrix from the first batch on. `keep` sees
    /// global coordinates.
    pub fn spgemm_pruned_with<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        opts: &SpGemmOptions,
        mut keep: impl FnMut(u64, u64, &S::Out) -> bool,
    ) -> DistMat<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        // Resolve Auto first: a pick of ColumnBatched must take the
        // fused per-batch prune below, not the unfused fallback.
        let entry_bytes = (std::mem::size_of::<u32>() + std::mem::size_of::<S::Out>()) as u64;
        let opts = &self.resolved_options(grid, other, opts, entry_bytes);
        if opts.algorithm != SpGemmAlgorithm::ColumnBatched {
            return self
                .spgemm_with(grid, other, semiring, opts)
                .prune(grid, keep);
        }
        assert_eq!(
            self.col_layout, other.row_layout,
            "inner dimension layouts must agree for SUMMA"
        );
        let local = self.summa_column_batched(
            grid,
            other,
            semiring,
            opts.batch_rows.max(1),
            opts.mem_budget,
            elba_par::ElbaPar::resolve(opts.threads),
            &mut keep,
        );
        DistMat {
            row_layout: self.row_layout,
            col_layout: other.col_layout,
            local: Arc::new(local),
        }
    }

    /// Naive SUMMA: blocking broadcasts, global triple accumulation, one
    /// final sort-merge. Peak memory holds every stage's intermediate
    /// triples at once.
    fn summa_eager<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        threads: usize,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        let mut charge = grid.world().mem_charge(0);
        let mut acc: Vec<(u32, u32, S::Out)> = Vec::new();
        let triple_bytes = std::mem::size_of::<(u32, u32, S::Out)>();
        let mut par = ParKernelClock::new();
        for s in 0..q {
            let a_block = grid
                .row()
                .bcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local)));
            let b_block = grid
                .col()
                .bcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local)));
            // Stage blocks charge through the shared (ptr-keyed) path:
            // one charge per rank per block, so the owner's own resident
            // matrix is never counted twice.
            let _a_res = grid
                .world()
                .mem_charge_shared(&a_block, a_block.heap_bytes());
            let _b_res = grid
                .world()
                .mem_charge_shared(&b_block, b_block.heap_bytes());
            let stage = {
                let started = std::time::Instant::now();
                let mut batcher =
                    SpGemmBatcher::new(&a_block, &b_block, semiring).with_threads(threads);
                let nrows = a_block.nrows();
                let stage = batcher.multiply_rows_par(0..nrows, 0..b_block.ncols() as u32);
                // Per-worker SPA scratch (0 when serial): a transient
                // spike on top of whatever is currently charged.
                grid.world().record_mem_transient(batcher.scratch_bytes());
                if batcher.last_run_parallel() {
                    par.add(started.elapsed().as_secs_f64());
                }
                stage
            };
            acc.extend(stage.into_triples());
            charge.set(acc.len() * triple_bytes);
        }
        par.book(grid);
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        Csr::from_triples(row_range.len(), col_range.len(), acc, |a, v| {
            semiring.add(a, v)
        })
    }

    /// Double-buffered SUMMA: the broadcasts for stage `s+1` are posted
    /// before stage `s` is multiplied, so (as in ELBA's overlap-detection
    /// multiply) communication for the next stage flows while this stage
    /// computes; each stage folds into the accumulator CSR immediately.
    fn summa_pipelined<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        threads: usize,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let post = |s: usize| {
            let a_req = grid
                .row()
                .ibcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local)));
            let b_req = grid
                .col()
                .ibcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local)));
            (a_req, b_req)
        };
        let mut charge = grid.world().mem_charge(0);
        let mut acc: Csr<S::Out> = Csr::empty(row_range.len(), col_range.len());
        let mut inflight = Some(post(0));
        let mut par = ParKernelClock::new();
        for s in 0..q {
            // Prefetch stage s+1 before touching stage s: the roots' tree
            // sends go out now and ride alongside this stage's multiply.
            let next = (s + 1 < q).then(|| post(s + 1));
            let (a_req, b_req) = inflight.take().expect("stage request posted");
            let a_block = a_req.wait();
            let b_block = b_req.wait();
            inflight = next;
            // Shared-path charging: once per rank per block (the stage
            // owner's resident matrix is the block — no double count).
            let _a_res = grid
                .world()
                .mem_charge_shared(&a_block, a_block.heap_bytes());
            let _b_res = grid
                .world()
                .mem_charge_shared(&b_block, b_block.heap_bytes());
            let stage = {
                let started = std::time::Instant::now();
                let mut batcher =
                    SpGemmBatcher::new(&a_block, &b_block, semiring).with_threads(threads);
                let nrows = a_block.nrows();
                let stage = batcher.multiply_rows_par(0..nrows, 0..b_block.ncols() as u32);
                grid.world().record_mem_transient(batcher.scratch_bytes());
                if batcher.last_run_parallel() {
                    par.add(started.elapsed().as_secs_f64());
                }
                stage
            };
            charge.set(acc.heap_bytes() + stage.heap_bytes());
            acc = csr_merge(acc, stage, |a, v| semiring.add(a, v));
        }
        par.book(grid);
        acc
    }

    /// Layered (2.5D-style) SUMMA: see [`SpGemmAlgorithm::Layered`].
    ///
    /// Slice `l`'s whole broadcast batch is posted before slice `l-1` is
    /// consumed (slice-deep prefetch, vs the pipelined schedule's
    /// one-stage lookahead), each slice folds into its own partial CSR,
    /// completed partials stay resident — the honest c-fold replication
    /// memory cost, kept visible to the tracker — and one k-way
    /// [`crate::spgemm::csr_kmerge`] combines them in slice order at the
    /// end. The combine is local: on one rank the 2.5D allreduce tree
    /// has nothing to ship, so wire bytes stay byte-identical to the
    /// eager schedule (same q stage broadcasts, same trees); the
    /// bandwidth-vs-memory trade that layered grids buy on real
    /// machines lives in [`elba_comm::CostConstants::predict_phase`]'s
    /// formulas, which is what [`SpGemmAlgorithm::Auto`] prices.
    ///
    /// Callers dispatch `c <= 1` to [`DistMat::summa_pipelined`]; `c > q`
    /// clamps to one stage per layer with a rank-0 warning.
    fn summa_layered<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        c: usize,
        threads: usize,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        debug_assert!(c >= 2);
        let layers = if c > q {
            if grid.world().rank() == 0 {
                eprintln!(
                    "[layered-spgemm] c={c} layers exceed the {q} SUMMA stage(s); clamping to c={q}"
                );
            }
            q
        } else {
            c
        };
        if layers <= 1 {
            // A 1×1 grid has one stage: one layer, i.e. the pipelined path.
            return self.summa_pipelined(grid, other, semiring, threads);
        }
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let slices = layer_slices(q, layers);
        let post_slice = |slice: &std::ops::Range<usize>| {
            slice
                .clone()
                .map(|s| {
                    let a_req = grid
                        .row()
                        .ibcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local)));
                    let b_req = grid
                        .col()
                        .ibcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local)));
                    (a_req, b_req)
                })
                .collect::<Vec<_>>()
        };
        let mut charge = grid.world().mem_charge(0);
        let mut par = ParKernelClock::new();
        let mut partials: Vec<Csr<S::Out>> = Vec::with_capacity(layers);
        // Heap bytes of the completed layers' partials — the replicated
        // residency this schedule pays for its overlap; every re-charge
        // below sits on top of it.
        let mut partial_bytes = 0usize;
        let mut inflight = post_slice(&slices[0]);
        for l in 0..layers {
            // Prefetch the whole next slice before consuming this one:
            // its roots' tree sends go out now and ride alongside this
            // layer's multiplies and merges.
            let next = slices.get(l + 1).map(post_slice);
            let reqs = std::mem::replace(&mut inflight, next.unwrap_or_default());
            let mut partial: Option<Csr<S::Out>> = None;
            for (a_req, b_req) in reqs {
                let a_block = a_req.wait();
                let b_block = b_req.wait();
                // Shared-path charging: once per rank per block (the
                // stage owner's resident matrix is the block itself).
                let _a_res = grid
                    .world()
                    .mem_charge_shared(&a_block, a_block.heap_bytes());
                let _b_res = grid
                    .world()
                    .mem_charge_shared(&b_block, b_block.heap_bytes());
                let stage = {
                    let started = std::time::Instant::now();
                    let mut batcher =
                        SpGemmBatcher::new(&a_block, &b_block, semiring).with_threads(threads);
                    let nrows = a_block.nrows();
                    let stage = batcher.multiply_rows_par(0..nrows, 0..b_block.ncols() as u32);
                    grid.world().record_mem_transient(batcher.scratch_bytes());
                    if batcher.last_run_parallel() {
                        par.add(started.elapsed().as_secs_f64());
                    }
                    stage
                };
                charge.set(
                    partial_bytes
                        + partial.as_ref().map_or(0, Csr::heap_bytes)
                        + stage.heap_bytes(),
                );
                partial = Some(match partial {
                    // First stage of the layer: the stage CSR *is* the
                    // partial — merging into an empty CSR would copy the
                    // whole stage output for nothing.
                    None => stage,
                    Some(p) => csr_merge(p, stage, |a, v| semiring.add(a, v)),
                });
            }
            let partial = partial.unwrap_or_else(|| Csr::empty(row_range.len(), col_range.len()));
            partial_bytes += partial.heap_bytes();
            charge.set(partial_bytes);
            partials.push(partial);
        }
        par.book(grid);
        // Final combine: one k-way pass in slice (= stage) order, so a
        // non-commutative semiring add sees the same operand order as
        // the per-stage merges of the other schedules. Peak = the c
        // resident partials plus the combined output being written.
        charge.set(2 * partial_bytes);
        let combined = crate::spgemm::csr_kmerge(partials, |a, v| semiring.add(a, v));
        charge.set(combined.heap_bytes());
        combined
    }

    /// Memory-bounded SUMMA: blocking broadcasts (only one stage of
    /// remote blocks resident) and a per-row accumulator that batches
    /// merge directly into — no stage-wide CSR or triple buffer ever
    /// exists. Live intermediates beyond the accumulated result are one
    /// batch of output rows (≤ `batch_rows`), one merged row, and the
    /// multiply's O(block cols) dense accumulator arrays; the final CSR
    /// is assembled once after the last stage.
    fn summa_blocked<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        batch_rows: usize,
        threads: usize,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let nrows = row_range.len();
        let entry_bytes = std::mem::size_of::<u32>() + std::mem::size_of::<S::Out>();
        let mut charge = grid.world().mem_charge(0);
        let mut acc_entries = 0usize;
        let mut par = ParKernelClock::new();
        // Accumulate per row (sorted column/value pairs) so each batch
        // merges in place, touching only its own row window.
        let mut acc_rows: Vec<(Vec<u32>, Vec<S::Out>)> =
            (0..nrows).map(|_| (Vec::new(), Vec::new())).collect();
        for s in 0..q {
            let a_block = grid
                .row()
                .bcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local)));
            let b_block = grid
                .col()
                .bcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local)));
            // Stage blocks charge through the once-per-rank shared path;
            // `merge_stage_rows` only tracks the accumulator on top.
            let _a_res = grid
                .world()
                .mem_charge_shared(&a_block, a_block.heap_bytes());
            let _b_res = grid
                .world()
                .mem_charge_shared(&b_block, b_block.heap_bytes());
            let (entries, par_secs) = merge_stage_rows(
                &a_block,
                &b_block,
                semiring,
                0..b_block.ncols() as u32,
                batch_rows,
                threads,
                &mut acc_rows,
                acc_entries,
                entry_bytes,
                0,
                &mut charge,
            );
            acc_entries = entries;
            par.add(par_secs);
        }
        par.book(grid);
        pack_rows_into_csr(
            acc_rows,
            col_range.len(),
            acc_entries,
            entry_bytes,
            &mut charge,
        )
    }

    /// The ColumnBatched structure/estimate pass, shared with the Auto
    /// resolver: per SUMMA stage, the `A`-block owner broadcasts its
    /// per-column nonzero counts along the grid row and the `B`-block
    /// owner its structure (`indptr`/`indices`, no values) along the
    /// grid column — a fraction of a full block broadcast. Returns per
    /// local output column the exact multiply-add count landing there
    /// (`flops(j) = Σ_s Σ_{k : B_s[k,j]≠0} nnz_col(A_s, k)`) and the
    /// full A+B block bytes per stage. Collective: every rank of the
    /// grid must call it together.
    fn structure_estimates<U>(&self, grid: &ProcGrid, other: &DistMat<U>) -> (Vec<u64>, Vec<usize>)
    where
        U: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        let world = grid.world();
        let ncols = other.col_layout.block_range(grid.mycol()).len();
        let mut col_flops: Vec<u64> = vec![0; ncols];
        let mut stage_bytes: Vec<usize> = Vec::with_capacity(q);
        let mut est_charge = world.mem_charge(0);
        for s in 0..q {
            // Structure-only packs travel Arc-shared too: the owner
            // builds each pack once and the tree fans out reference
            // clones, not vector copies.
            let a_pack = grid.row().bcast_shared(
                s,
                (grid.mycol() == s).then(|| {
                    let mut counts = vec![0u32; self.local.ncols()];
                    for &c in self.local.indices() {
                        counts[c as usize] += 1;
                    }
                    Arc::new((counts, self.local.heap_bytes()))
                }),
            );
            let (a_col_nnz, a_bytes) = (&a_pack.0, a_pack.1);
            let b_pack = grid.col().bcast_shared(
                s,
                (grid.myrow() == s).then(|| {
                    Arc::new((
                        other.local.indptr().to_vec(),
                        other.local.indices().to_vec(),
                        other.local.heap_bytes(),
                    ))
                }),
            );
            let (b_indptr, b_indices, b_bytes) = (&b_pack.0, &b_pack.1, b_pack.2);
            // The received structure vectors are real resident
            // bytes; the budget verdict is only trustworthy if the
            // pass that sizes the batches charges its own working
            // set too.
            est_charge.set(
                col_flops.len() * std::mem::size_of::<u64>()
                    + a_col_nnz.len() * std::mem::size_of::<u32>()
                    + b_indptr.len() * std::mem::size_of::<usize>()
                    + b_indices.len() * std::mem::size_of::<u32>(),
            );
            stage_bytes.push(a_bytes + b_bytes);
            for (k, &ann) in a_col_nnz.iter().enumerate() {
                if ann == 0 {
                    continue;
                }
                for &j in &b_indices[b_indptr[k]..b_indptr[k + 1]] {
                    col_flops[j as usize] += ann as u64;
                }
            }
        }
        (col_flops, stage_bytes)
    }

    /// Resolve [`SpGemmAlgorithm::Auto`] to a concrete schedule (other
    /// algorithms pass through untouched): run the structure pass,
    /// allreduce the per-rank estimates to their grid-wide maxima (the
    /// critical path — and the reason every rank computes the *same*
    /// pick from the same numbers), and take the cheapest feasible
    /// schedule under [`elba_comm::CostConstants::in_process`]. The
    /// constants are fixed rather than measured per run: a rank-local
    /// timing would diverge across ranks and desynchronize the
    /// collective schedule; ranking schedules only needs relative
    /// weights, which the perf bench scores against measured walls.
    fn resolved_options<U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        opts: &SpGemmOptions,
        entry_bytes: u64,
    ) -> SpGemmOptions
    where
        U: Clone + CommMsg + Sync,
    {
        if opts.algorithm != SpGemmAlgorithm::Auto {
            return *opts;
        }
        let q = grid.q();
        let world = grid.world();
        let nrows = self.row_layout.block_range(grid.myrow()).len() as u64;
        let (col_flops, stage_bytes) = self.structure_estimates(grid, other);
        let flops: u64 = col_flops.iter().sum();
        // Same cap as the batch sizing: a column's accumulator can't
        // exceed nrows entries however many flops land in it.
        let entries: u64 = col_flops.iter().map(|&f| f.min(nrows)).sum();
        let max_stage = stage_bytes.iter().copied().max().unwrap_or(0) as u64;
        let struct_local = (self.local.ncols() * std::mem::size_of::<u32>()
            + std::mem::size_of_val(other.local.indptr())
            + std::mem::size_of_val(other.local.indices())) as u64;
        let maxes = world.allreduce(vec![flops, entries, max_stage, struct_local], |a, b| {
            a.into_iter().zip(b).map(|(x, y)| x.max(y)).collect()
        });
        let est = elba_comm::SpGemmEstimate {
            grid_q: q,
            stage_bytes: maxes[2] as f64,
            struct_bytes: maxes[3] as f64,
            flops: maxes[0] as f64,
            result_entries: maxes[1] as f64,
            entry_bytes: entry_bytes as f64,
            mem_budget: opts.mem_budget,
        };
        // Preference order breaks exact ties (degenerate grids where
        // layered collapses into pipelined). ColumnBatched is always
        // feasible, so the list can never come back empty-handed.
        let mut candidates = vec![elba_comm::SchedulePlan::Pipelined];
        for c in 2..=q.min(4) {
            candidates.push(elba_comm::SchedulePlan::Layered { c });
        }
        candidates.push(elba_comm::SchedulePlan::ColumnBatched);
        candidates.push(elba_comm::SchedulePlan::Eager);
        let constants = elba_comm::CostConstants::in_process();
        let (plan, predicted) = constants.pick_schedule(&est, &candidates);
        let algorithm = match plan {
            elba_comm::SchedulePlan::Eager => SpGemmAlgorithm::Eager,
            elba_comm::SchedulePlan::Pipelined => SpGemmAlgorithm::Pipelined,
            elba_comm::SchedulePlan::ColumnBatched => SpGemmAlgorithm::ColumnBatched,
            elba_comm::SchedulePlan::Layered { c } => SpGemmAlgorithm::Layered { c },
        };
        if world.rank() == 0 {
            // One writer: the pick is grid-uniform, so rank 0's view is
            // everyone's. Log only on change — transitive reduction
            // calls this every iteration.
            let code = encode_pick(algorithm);
            let prev = LAST_AUTO_PICK.swap(code, std::sync::atomic::Ordering::Relaxed);
            if prev != code {
                println!(
                    "[auto-spgemm] grid={q}x{q} flops~{} entries~{} stage~{}B picked={} \
                     (predicted {:.3} ms)",
                    maxes[0],
                    maxes[1],
                    maxes[2],
                    algorithm_label(algorithm),
                    predicted * 1e3,
                );
            }
        }
        SpGemmOptions { algorithm, ..*opts }
    }

    /// ELBA's batched SpGEMM: split the *output* into column batches and
    /// run one pipelined, row-blocked SUMMA round per batch, so the live
    /// batch accumulator plus the resident broadcast blocks stay under
    /// `budget` bytes per rank.
    ///
    /// Batch sizing uses a cheap flop/nnz estimate pass before any real
    /// multiply: per SUMMA stage, the `A`-block owner broadcasts its
    /// per-column nonzero counts along the grid row and the `B`-block
    /// owner its structure (`indptr`/`indices`, no values) along the
    /// grid column — a fraction of a full block broadcast (and the
    /// received vectors are charged to the tracker while held). From those
    /// each rank computes `flops(j) = Σ_s Σ_{k : B_s[k,j]≠0} nnz_col(A_s, k)`
    /// for every local output column `j`: the exact multiply-add count
    /// landing in that column, which upper-bounds the column's batch
    /// accumulator entries (merging only shrinks them). Columns are then
    /// packed greedily so each batch's estimated bytes fit the budget
    /// left after two stages of broadcast blocks (the `ibcast` pipeline
    /// double-buffers). Ranks batch their own columns independently —
    /// broadcasts ship full blocks either way, so per-rank batch bounds
    /// need no global agreement beyond the round *count* (an allreduce
    /// max; short ranks pad with empty batches to stay collective).
    /// Without a budget the estimate pass is skipped entirely — the run
    /// is a single round over every column, so the structure broadcasts
    /// would be pure overhead.
    ///
    /// The price of the bound is re-broadcasting the inputs once per
    /// round (`rounds × q` stage broadcasts), exactly as in ELBA's
    /// multi-round formulation. Every transient is charged against the
    /// rank's memory tracker, so a profiled run *shows* the bound
    /// holding instead of claiming it.
    #[allow(clippy::too_many_arguments)]
    fn summa_column_batched<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        batch_rows: usize,
        budget: Option<u64>,
        threads: usize,
        keep: &mut impl FnMut(u64, u64, &S::Out) -> bool,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U> + Sync,
        U: Clone + CommMsg + Sync,
        S::Out: Clone + CommMsg + Sync,
    {
        let q = grid.q();
        let world = grid.world();
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let (nrows, ncols) = (row_range.len(), col_range.len());

        let entry_bytes = (std::mem::size_of::<u32>() + std::mem::size_of::<S::Out>()) as u64;

        // ---- estimate pass (budgeted runs only): per-column flops ----
        // An unbudgeted run is a single round over every column, so the
        // structure broadcasts and the counting sweep would be pure
        // overhead; resident blocks are then charged from the blocks as
        // they arrive instead of from `stage_bytes`. The gate is
        // grid-uniform (every rank holds the same options), so the
        // collectives below stay collective.
        let mut col_est: Vec<u64> = Vec::new();
        let mut stage_bytes: Vec<usize> = Vec::new();
        if budget.is_some() {
            let (col_flops, sb) = self.structure_estimates(grid, other);
            stage_bytes = sb;
            // The accumulator holds at most `nrows` entries per column no
            // matter how many flops land there (the SPA merges
            // duplicates), so cap the flop bound per column — under heavy
            // inner-index multiplicity (k-mers shared by many reads) the
            // raw flop count overshoots the real accumulator by orders of
            // magnitude.
            col_est = col_flops
                .iter()
                .map(|&f| f.min(nrows as u64) * entry_bytes)
                .collect();
        }

        // ---- column batching under the budget ----
        // The broadcast-block residency floor must be agreed grid-wide:
        // it decides between the double-buffered ibcast pipeline and
        // single-buffered blocking rounds, and a rank-divergent choice
        // would desynchronize the collective schedule.
        let max_stage = world.allreduce(
            stage_bytes.iter().copied().max().unwrap_or(0) as u64,
            u64::max,
        );
        // Prefetching doubles the resident blocks; only pipeline when the
        // budget leaves at least half of itself for the accumulator.
        let double_buffer = budget.is_none_or(|b| 4 * max_stage <= b);
        let resident_floor = if double_buffer {
            2 * max_stage
        } else {
            max_stage
        };

        // ---- one row-blocked SUMMA round per column batch ----
        let post = |s: usize| {
            let a_req = grid
                .row()
                .ibcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local)));
            let b_req = grid
                .col()
                .ibcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local)));
            (a_req, b_req)
        };
        let mut out_rows: Vec<(Vec<u32>, Vec<S::Out>)> =
            (0..nrows).map(|_| (Vec::new(), Vec::new())).collect();
        let mut out_entries = 0usize;
        let mut out_charge = world.mem_charge(0);
        let mut par = ParKernelClock::new();
        let mut next_col = 0usize; // first local column not yet computed
        loop {
            // Rounds are collective (each one broadcasts every block), so
            // all ranks keep going until the slowest-packing rank is done;
            // finished ranks run empty windows.
            let more = world.allreduce(u64::from(next_col < ncols), u64::max);
            if more == 0 {
                break;
            }
            // Re-pack each round against the budget left after the bytes
            // already accumulated into the (pruned) output and the
            // resident broadcast blocks: each column's estimate bounds
            // its accumulator entries, so a batch packed under `usable`
            // keeps the round's working set within the cap. A budget
            // below the resident floor can't be met by more batching
            // (the inputs themselves exceed it), so `usable` floors at a
            // quarter budget instead of degrading to one-column rounds
            // whose broadcasts would dwarf any saving.
            let start_col = next_col;
            if let Some(b) = budget {
                let usable = b
                    .saturating_sub(resident_floor + out_entries as u64 * entry_bytes)
                    .max(b / 4)
                    .max(entry_bytes);
                let mut batch_est = 0u64;
                while next_col < ncols {
                    let w = col_est[next_col];
                    if batch_est > 0 && batch_est + w > usable {
                        break;
                    }
                    batch_est += w;
                    next_col += 1;
                }
            } else {
                // Unbudgeted: every column in one round.
                next_col = ncols;
            }
            let window = (start_col as u32)..(next_col as u32);
            let mut transient = world.mem_charge(0);
            let mut acc_rows: Vec<(Vec<u32>, Vec<S::Out>)> =
                (0..nrows).map(|_| (Vec::new(), Vec::new())).collect();
            let mut acc_entries = 0usize;
            let mut inflight = double_buffer.then(|| post(0));
            for s in 0..q {
                let (a_block, b_block) = if double_buffer {
                    let next = (s + 1 < q).then(|| post(s + 1));
                    let (a_req, b_req) = inflight.take().expect("stage request posted");
                    let blocks = (a_req.wait(), b_req.wait());
                    inflight = next;
                    blocks
                } else {
                    (
                        grid.row()
                            .bcast_shared(s, (grid.mycol() == s).then(|| Arc::clone(&self.local))),
                        grid.col()
                            .bcast_shared(s, (grid.myrow() == s).then(|| Arc::clone(&other.local))),
                    )
                };
                // Unbudgeted rounds charge the blocks actually resident
                // through the once-per-rank shared path; budgeted rounds
                // model residency from the estimate pass's `stage_bytes`
                // (grid-uniform, includes the prefetched stage) and so
                // skip the guards — guards on top would double-count.
                let _res = budget.is_none().then(|| {
                    (
                        world.mem_charge_shared(&a_block, a_block.heap_bytes()),
                        world.mem_charge_shared(&b_block, b_block.heap_bytes()),
                    )
                });
                // A finished rank padding out the collective round has
                // an empty window: the broadcasts above must still run
                // (they are collective), but the multiply sweep over
                // every A nonzero would produce nothing — skip it.
                if window.is_empty() {
                    continue;
                }
                let resident = match stage_bytes.get(s) {
                    // Budgeted: estimate-pass sizes, including the
                    // prefetched next stage under double buffering.
                    Some(&sb) => {
                        sb + if double_buffer && s + 1 < q {
                            stage_bytes[s + 1]
                        } else {
                            0
                        }
                    }
                    // Unbudgeted: the shared guards above already hold
                    // the resident blocks.
                    None => 0,
                };
                let (entries, par_secs) = merge_stage_rows(
                    &a_block,
                    &b_block,
                    semiring,
                    window.clone(),
                    batch_rows,
                    threads,
                    &mut acc_rows,
                    acc_entries,
                    entry_bytes as usize,
                    resident,
                    &mut transient,
                );
                acc_entries = entries;
                par.add(par_secs);
            }
            // Prune-as-you-go (ELBA's per-batch thresholding), then
            // concatenate the survivors onto the output: windows arrive
            // in increasing column order, so per-row appends stay sorted.
            // The accumulator hands its rows over one at a time (moves,
            // not copies), so its charge is dropped before the append —
            // holding both would double-count the batch during handover.
            transient.set(0);
            let (r0, c0) = (row_range.start, col_range.start);
            for (row, (cols, vals)) in acc_rows.into_iter().enumerate() {
                let global_row = (row + r0) as u64;
                for (col, val) in cols.into_iter().zip(vals) {
                    if keep(global_row, (col as usize + c0) as u64, &val) {
                        out_rows[row].0.push(col);
                        out_rows[row].1.push(val);
                        out_entries += 1;
                    }
                }
            }
            out_charge.set(out_entries * entry_bytes as usize);
        }
        par.book(grid);

        pack_rows_into_csr(
            out_rows,
            ncols,
            out_entries,
            entry_bytes as usize,
            &mut out_charge,
        )
    }

    /// Row-wise reduction into a [`DistVec`] aligned with the row layout:
    /// `out[i] = fold over row i's entries`. Implemented as a local
    /// reduction followed by a reduce-scatter over the grid-row
    /// communicator (each rank ends up with its vector sub-chunk).
    pub fn row_reduce<U>(
        &self,
        grid: &ProcGrid,
        mut init: impl FnMut() -> U,
        mut fold: impl FnMut(&mut U, u64, &T),
        merge: impl Fn(U, U) -> U + Copy,
    ) -> DistVec<U>
    where
        U: Clone + CommMsg + Sync,
    {
        let (_, c0) = self.local_offsets(grid);
        let partial: Vec<U> = self.local.row_reduce(&mut init, |acc, c, v| {
            fold(acc, (c as usize + c0) as u64, v)
        });
        // Slice the block-row partials into the q vector sub-chunks owned
        // by this grid row and reduce-scatter them across the row comm.
        let row_range = self.row_layout.block_range(grid.myrow());
        let contributions: Vec<Vec<U>> = (0..grid.q())
            .map(|j| {
                let chunk = self.row_layout.chunk_range(grid.myrow(), j);
                partial[(chunk.start - row_range.start)..(chunk.end - row_range.start)].to_vec()
            })
            .collect();
        let reduced = grid.row().reduce_scatter_block(contributions, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| merge(x, y)).collect()
        });
        DistVec::from_local(grid, self.row_layout.len(), reduced)
    }

    /// Vertex degrees: row-wise nonzero count (the paper's "summation
    /// reduction over the row dimension" producing the degree vector `d`).
    pub fn row_degrees(&self, grid: &ProcGrid) -> DistVec<u64> {
        self.row_reduce(grid, || 0u64, |acc, _, _| *acc += 1, |a, b| a + b)
    }

    /// Zero out every row **and** column whose mask entry is `true`
    /// (ELBA's branch-vertex masking; requires a square matrix). The
    /// matrix keeps its dimensions — "row 10 is still a row in the
    /// matrix" — only its nonzeros change.
    pub fn mask_rows_cols(self, grid: &ProcGrid, mask: &DistVec<bool>) -> DistMat<T> {
        assert_eq!(
            self.row_layout, self.col_layout,
            "mask_rows_cols needs a square matrix"
        );
        assert_eq!(mask.len(), self.nrows());
        let (row_mask, col_mask) = mask.fetch_aligned(grid);
        // Local indices are block-relative and the fetched masks cover
        // exactly this block's row/column ranges, so direct indexing works.
        let (row_layout, col_layout) = (self.row_layout, self.col_layout);
        DistMat {
            row_layout,
            col_layout,
            local: Arc::new(
                self.into_local()
                    .retain(|r, c, _| !row_mask[r as usize] && !col_mask[c as usize]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::semiring::{Count, PlusTimes};
    use elba_comm::{Backend, Runner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_triples(
        rng: &mut StdRng,
        nrows: usize,
        ncols: usize,
        density: f64,
    ) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                if rng.gen_bool(density) {
                    out.push((r as u64, c as u64, rng.gen_range(-3..4) as f64));
                }
            }
        }
        out.retain(|&(_, _, v)| v != 0.0);
        out
    }

    fn dense_from_triples(nrows: usize, ncols: usize, t: &[(u64, u64, f64)]) -> Dense {
        let mut d = Dense::zeros(nrows, ncols);
        for &(r, c, v) in t {
            d.set(r as usize, c as usize, v);
        }
        d
    }

    #[test]
    fn from_triples_round_trip() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                // Only rank 0 contributes; routing must deliver to owners.
                let triples = if grid.world().rank() == 0 {
                    vec![(0u64, 0u64, 1.0f64), (6, 3, 2.0), (3, 6, 3.0), (9, 9, 4.0)]
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 10, 10, triples, |_, _| unreachable!());
                let mut all = m.gather_triples(&grid);
                all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                all
            });
            assert_eq!(
                out[0],
                vec![(0, 0, 1.0), (3, 6, 3.0), (6, 3, 2.0), (9, 9, 4.0)],
                "p={p}"
            );
        }
    }

    #[test]
    fn duplicate_triples_combined() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            // every rank contributes the same entry
            let triples = vec![(2u64, 2u64, 1.0f64)];
            let m = DistMat::from_triples(&grid, 5, 5, triples, |acc, v| *acc += v);
            m.gather_triples(&grid)
        });
        assert_eq!(out[0], vec![(2, 2, 4.0)]);
    }

    #[test]
    fn transpose_matches_serial() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let mut rng = StdRng::seed_from_u64(11);
                let triples = random_triples(&mut rng, 13, 7, 0.2);
                let mine = if grid.world().rank() == 0 {
                    triples.clone()
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 13, 7, mine, |_, _| unreachable!());
                let t = m.transpose(&grid);
                assert_eq!(t.nrows(), 7);
                assert_eq!(t.ncols(), 13);
                let mut got = t.gather_triples(&grid);
                got.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let mut want: Vec<(u64, u64, f64)> =
                    triples.iter().map(|&(r, c, v)| (c, r, v)).collect();
                want.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                got == want
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }

    #[test]
    fn summa_matches_dense_reference() {
        for p in [1usize, 4, 9, 16] {
            let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let mut rng = StdRng::seed_from_u64(23 + p as u64);
                let (n, k, m) = (17, 11, 9);
                let a_triples = random_triples(&mut rng, n, k, 0.25);
                let b_triples = random_triples(&mut rng, k, m, 0.25);
                let mine_a = if grid.world().rank() == 0 {
                    a_triples.clone()
                } else {
                    Vec::new()
                };
                let mine_b = if grid.world().rank() == 0 {
                    b_triples.clone()
                } else {
                    Vec::new()
                };
                let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
                let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
                let c = a.spgemm(&grid, &b, &PlusTimes);
                let want = dense_from_triples(n, k, &a_triples)
                    .matmul(&dense_from_triples(k, m, &b_triples));
                let got_triples = c.gather_triples(&grid);
                let got = dense_from_triples(n, m, &got_triples);
                got == want
            });
            assert!(ok.iter().all(|&x| x), "p={p}");
        }
    }

    #[test]
    fn all_schedules_match_dense_reference() {
        for p in [1usize, 4, 9] {
            for opts in [
                SpGemmOptions::eager(),
                SpGemmOptions::pipelined(),
                SpGemmOptions::blocked(1),
                SpGemmOptions::blocked(3),
                SpGemmOptions::blocked(1024),
                SpGemmOptions::column_batched(1024, None),
                SpGemmOptions::column_batched(2, Some(1)),
                SpGemmOptions::column_batched(7, Some(400)),
                SpGemmOptions::column_batched(1024, Some(1 << 30)),
                SpGemmOptions::layered(1),
                SpGemmOptions::layered(2),
                SpGemmOptions::layered(3),
                SpGemmOptions::layered(7), // > q everywhere: clamps
                SpGemmOptions::auto(),
            ] {
                let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let mut rng = StdRng::seed_from_u64(101 + p as u64);
                    let (n, k, m) = (15, 12, 10);
                    let a_triples = random_triples(&mut rng, n, k, 0.3);
                    let b_triples = random_triples(&mut rng, k, m, 0.3);
                    let mine_a = if grid.world().rank() == 0 {
                        a_triples.clone()
                    } else {
                        Vec::new()
                    };
                    let mine_b = if grid.world().rank() == 0 {
                        b_triples.clone()
                    } else {
                        Vec::new()
                    };
                    let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
                    let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
                    let c = a.spgemm_with(&grid, &b, &PlusTimes, &opts);
                    let want = dense_from_triples(n, k, &a_triples)
                        .matmul(&dense_from_triples(k, m, &b_triples));
                    let got = dense_from_triples(n, m, &c.gather_triples(&grid));
                    got == want
                });
                assert!(ok.iter().all(|&x| x), "p={p} opts={opts:?}");
            }
        }
    }

    #[test]
    fn layer_slices_cover_stages_evenly_and_unevenly() {
        assert_eq!(layer_slices(4, 2), vec![0..2, 2..4]);
        // c ∤ q: earlier slices take the extra stage.
        assert_eq!(layer_slices(3, 2), vec![0..2, 2..3]);
        assert_eq!(layer_slices(5, 3), vec![0..2, 2..4, 4..5]);
        assert_eq!(layer_slices(3, 3), vec![0..1, 1..2, 2..3]);
        assert_eq!(layer_slices(1, 1), vec![0..1]);
        for q in 1..=9usize {
            for c in 1..=q {
                let slices = layer_slices(q, c);
                assert_eq!(slices.len(), c, "q={q} c={c}");
                assert!(slices.iter().all(|s| !s.is_empty()), "q={q} c={c}");
                assert_eq!(slices.first().expect("non-empty").start, 0);
                assert_eq!(slices.last().expect("non-empty").end, q);
                assert!(
                    slices.windows(2).all(|w| w[0].end == w[1].start),
                    "slices must tile contiguously: q={q} c={c}"
                );
            }
        }
    }

    #[test]
    fn column_batched_tracked_high_water_respects_budget() {
        // The ELBA overlap-detection shape: a dense-ish C = AAᵀ whose
        // *unpruned* block dwarfs what survives the fused prune (strict
        // upper triangle + value threshold). A single round must hold
        // the whole unpruned accumulator at once and blow past the
        // budget; the column-batched schedule prunes batch by batch and
        // provably stays under it. The budget is computed from the real
        // retained sizes: 4/3 × (pruned C + two resident broadcast
        // stages) — the packer's feasibility bound — plus slack.
        let run = |opts: SpGemmOptions| {
            Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let mut rng = StdRng::seed_from_u64(4242);
                    let (n, k) = (200usize, 64usize);
                    let triples = random_triples(&mut rng, n, k, 0.2);
                    let mine = if grid.world().rank() == 0 {
                        triples
                    } else {
                        Vec::new()
                    };
                    let a = DistMat::from_triples(&grid, n, k, mine, |_, _| unreachable!());
                    let at = a.transpose(&grid);
                    let c = {
                        let _g = grid.world().phase("spgemm");
                        a.spgemm_pruned_with(&grid, &at, &PlusTimes, &opts, |r, col, v| {
                            r < col && *v >= 6.0
                        })
                    };
                    let stage_bytes = a.heap_bytes() + at.heap_bytes();
                    let mut got = c.gather_triples(&grid);
                    got.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
                    (got, c.heap_bytes(), stage_bytes)
                })
        };
        let (outputs, unbatched) = run(SpGemmOptions::column_batched(64, None));
        let hw_single = unbatched.max_mem_hw("spgemm");
        let max_c = outputs.iter().map(|(_, cb, _)| *cb).max().expect("ranks");
        let max_stage = outputs.iter().map(|(_, _, sb)| *sb).max().expect("ranks");
        let budget = (4 * (max_c + 2 * max_stage) / 3 + 8192) as u64;
        assert!(
            hw_single > budget,
            "workload too small to exercise the bound: single-round hw \
             {hw_single} vs budget {budget}"
        );
        let (batched_outputs, batched) = run(SpGemmOptions::column_batched(64, Some(budget)));
        let hw_batched = batched.max_mem_hw("spgemm");
        assert!(
            hw_batched <= budget,
            "column-batched hw {hw_batched} exceeds budget {budget}"
        );
        // The eager schedule pruning after the fact is the reference.
        let (eager_outputs, _) = run(SpGemmOptions::eager());
        assert_eq!(
            outputs[0].0, batched_outputs[0].0,
            "batching must not change the pruned product"
        );
        assert_eq!(
            outputs[0].0, eager_outputs[0].0,
            "fused prune must equal prune-after-eager"
        );
    }

    #[test]
    fn aat_with_count_semiring_counts_shared_columns() {
        // Mirrors overlap detection: A is reads×kmers, C = AAᵀ counts
        // shared k-mers between each read pair.
        let ok = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            // reads: 0 has kmers {0,1}, 1 has {1,2}, 2 has {3}
            let triples = if grid.world().rank() == 0 {
                vec![
                    (0u64, 0u64, 1u8),
                    (0, 1, 1),
                    (1, 1, 1),
                    (1, 2, 1),
                    (2, 3, 1),
                ]
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, 3, 4, triples, |_, _| unreachable!());
            let at = a.transpose(&grid);
            let c = a.spgemm(&grid, &at, &Count::<u8, u8>::new());
            let mut got = c.gather_triples(&grid);
            got.sort();
            got == vec![(0, 0, 2), (0, 1, 1), (1, 0, 1), (1, 1, 2), (2, 2, 1)]
        });
        assert!(ok.iter().all(|&x| x));
    }

    #[test]
    fn row_degrees_match_serial() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                // path graph 0-1-2-3-4 plus branch 2-5, symmetric
                let edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)];
                let triples: Vec<(u64, u64, u8)> = if grid.world().rank() == 0 {
                    edges
                        .iter()
                        .flat_map(|&(u, v)| [(u, v, 1u8), (v, u, 1u8)])
                        .collect()
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 6, 6, triples, |_, _| unreachable!());
                let deg = m.row_degrees(&grid);
                deg.to_global(&grid)
            });
            assert_eq!(out[0], vec![1, 2, 3, 2, 1, 1], "p={p}");
        }
    }

    #[test]
    fn mask_rows_cols_removes_branch_vertex() {
        // The §4.2 worked example: v1→v2→v3, v3→v4→v5→v6, v3→v7→v8
        // (0-indexed: v3 = vertex 2). Masking vertex 2 leaves chains
        // {0,1}, {3,4,5}, {6,7}.
        for p in [1usize, 4] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let edges: Vec<(u64, u64)> =
                    vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7)];
                let triples: Vec<(u64, u64, u8)> = if grid.world().rank() == 0 {
                    edges
                        .iter()
                        .flat_map(|&(u, v)| [(u, v, 1u8), (v, u, 1u8)])
                        .collect()
                } else {
                    Vec::new()
                };
                let s = DistMat::from_triples(&grid, 8, 8, triples, |_, _| unreachable!());
                let deg = s.row_degrees(&grid);
                let mask = deg.map(&grid, |_, &d| d >= 3);
                let l = s.mask_rows_cols(&grid, &mask);
                let mut got: Vec<(u64, u64)> = l
                    .gather_triples(&grid)
                    .into_iter()
                    .map(|(r, c, _)| (r, c))
                    .collect();
                got.sort();
                got
            });
            let want: Vec<(u64, u64)> = vec![
                (0, 1),
                (1, 0),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 4),
                (6, 7),
                (7, 6),
            ];
            assert_eq!(out[0], want, "p={p}");
        }
    }

    #[test]
    fn map_values_and_prune() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let triples = if grid.world().rank() == 0 {
                vec![(0u64, 1u64, 5u64), (1, 0, 6), (2, 2, 7)]
            } else {
                Vec::new()
            };
            let m = DistMat::from_triples(&grid, 3, 3, triples, |_, _| unreachable!());
            let doubled = m.map_values(&grid, |_, _, v| v * 2);
            let kept = doubled.prune(&grid, |r, c, _| r != c);
            let mut got = kept.gather_triples(&grid);
            got.sort();
            got
        });
        assert_eq!(out[0], vec![(0, 1, 10), (1, 0, 12)]);
    }
}
