//! 2D-distributed sparse matrix (CombBLAS-style) over a √P×√P grid.
//!
//! Rank `(i, j)` owns block `(i, j)`: rows `row_layout.block_range(i)` ×
//! columns `col_layout.block_range(j)`, stored locally as CSR with local
//! indices. Provides the distributed operations ELBA's pipeline is built
//! from: triple routing, SUMMA SpGEMM under an arbitrary semiring,
//! transpose, element-wise apply/prune, row-wise reduction into a
//! [`DistVec`], and symmetric row+column masking (branch removal).

use elba_comm::{CommMsg, ProcGrid};

use crate::csr::Csr;
use crate::dist_vec::DistVec;
use crate::layout::Layout2D;
use crate::semiring::Semiring;
use crate::spgemm::{csr_merge, spgemm, SpGemmBatcher};

/// Tag for the transpose block exchange.
const TRANSPOSE_TAG: u64 = 0x00F1_7A7A;

/// Merge one batch-produced row (`cols`/`vals`, sorted by column) into a
/// per-row accumulator in place — the row-local step of the blocked
/// schedule's incremental accumulation. Transient memory is one merged
/// row, not a matrix.
fn merge_row<T>(
    acc: &mut (Vec<u32>, Vec<T>),
    cols: &[u32],
    vals: Vec<T>,
    mut add: impl FnMut(&mut T, T),
) {
    let (acc_cols, acc_vals) = acc;
    if acc_cols.is_empty() {
        acc_cols.extend_from_slice(cols);
        *acc_vals = vals;
        return;
    }
    let mut merged_cols = Vec::with_capacity(acc_cols.len() + cols.len());
    let mut merged_vals = Vec::with_capacity(acc_cols.len() + cols.len());
    let mut old_vals = std::mem::take(acc_vals).into_iter();
    let mut new_vals = vals.into_iter();
    let (mut ia, mut ib) = (0, 0);
    while ia < acc_cols.len() && ib < cols.len() {
        match acc_cols[ia].cmp(&cols[ib]) {
            std::cmp::Ordering::Less => {
                merged_cols.push(acc_cols[ia]);
                merged_vals.push(old_vals.next().expect("value per column"));
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                merged_cols.push(cols[ib]);
                merged_vals.push(new_vals.next().expect("value per column"));
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut v = old_vals.next().expect("value per column");
                add(&mut v, new_vals.next().expect("value per column"));
                merged_cols.push(acc_cols[ia]);
                merged_vals.push(v);
                ia += 1;
                ib += 1;
            }
        }
    }
    merged_cols.extend_from_slice(&acc_cols[ia..]);
    merged_vals.extend(old_vals);
    merged_cols.extend_from_slice(&cols[ib..]);
    merged_vals.extend(new_vals);
    *acc_cols = merged_cols;
    *acc_vals = merged_vals;
}

/// Which distributed SUMMA schedule [`DistMat::spgemm_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpGemmAlgorithm {
    /// The naive schedule: a blocking broadcast per stage, every stage's
    /// output kept as raw triples, one global sort-merge at the end.
    /// Highest peak memory, no communication/computation overlap; kept
    /// as the reference baseline.
    Eager,
    /// Double-buffered pipeline: stage `s+1`'s A/B broadcasts are posted
    /// (non-blocking `ibcast`) before stage `s` is computed, so the
    /// transfer overlaps the local multiply; each stage's output is
    /// merged into the accumulated CSR immediately, bounding live
    /// intermediates to two stages of blocks plus the running result.
    Pipelined,
    /// Memory-bounded schedule: blocking broadcasts (one stage of
    /// remote blocks resident, never two), the local multiply run over
    /// row batches of at most [`SpGemmOptions::batch_rows`] rows, each
    /// batch merged into a per-row accumulator immediately — no global
    /// triple buffer and no stage-wide intermediate matrix ever exist.
    /// Live transients beyond the growing result are one batch of
    /// output rows and one merged row. The schedule of choice when the
    /// result block is large relative to the memory budget.
    Blocked,
}

/// Options threaded through every distributed SpGEMM call site
/// (overlap detection, transitive reduction, benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpGemmOptions {
    pub algorithm: SpGemmAlgorithm,
    /// Row-batch size for [`SpGemmAlgorithm::Blocked`]; ignored by the
    /// other schedules. Smaller batches mean smaller live transients
    /// (the batch's output rows) at slightly more per-batch overhead.
    pub batch_rows: usize,
}

impl Default for SpGemmOptions {
    fn default() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Pipelined,
            batch_rows: 1024,
        }
    }
}

impl SpGemmOptions {
    pub fn eager() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Eager,
            ..Self::default()
        }
    }

    pub fn pipelined() -> Self {
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Pipelined,
            ..Self::default()
        }
    }

    pub fn blocked(batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "blocked SpGEMM needs a positive batch size");
        SpGemmOptions {
            algorithm: SpGemmAlgorithm::Blocked,
            batch_rows,
        }
    }
}

/// A sparse matrix distributed in 2D blocks over the process grid.
#[derive(Debug, Clone)]
pub struct DistMat<T> {
    row_layout: Layout2D,
    col_layout: Layout2D,
    local: Csr<T>,
}

impl<T: Clone + CommMsg> DistMat<T> {
    /// Collectively build from triples with *global* indices; each rank may
    /// contribute any subset (triples are routed to their owner block).
    /// Duplicate entries are merged with `combine`.
    pub fn from_triples(
        grid: &ProcGrid,
        nrows: usize,
        ncols: usize,
        triples: Vec<(u64, u64, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) -> Self {
        let q = grid.q();
        let row_layout = Layout2D::new(nrows, q);
        let col_layout = Layout2D::new(ncols, q);
        let p = grid.world().size();
        let mut outgoing: Vec<Vec<(u64, u64, T)>> = (0..p).map(|_| Vec::new()).collect();
        for (r, c, v) in triples {
            let bi = row_layout.block_of(r as usize);
            let bj = col_layout.block_of(c as usize);
            outgoing[grid.rank_of(bi, bj)].push((r, c, v));
        }
        let incoming = grid.world().alltoallv(outgoing);
        let row_range = row_layout.block_range(grid.myrow());
        let col_range = col_layout.block_range(grid.mycol());
        let local_triples: Vec<(u32, u32, T)> = incoming
            .into_iter()
            .flatten()
            .map(|(r, c, v)| {
                (
                    (r as usize - row_range.start) as u32,
                    (c as usize - col_range.start) as u32,
                    v,
                )
            })
            .collect();
        let local = Csr::from_triples(row_range.len(), col_range.len(), local_triples, |acc, v| {
            combine(acc, v)
        });
        DistMat {
            row_layout,
            col_layout,
            local,
        }
    }

    /// Wrap an existing local block (layouts must match the grid).
    pub fn from_local(grid: &ProcGrid, nrows: usize, ncols: usize, local: Csr<T>) -> Self {
        let row_layout = Layout2D::new(nrows, grid.q());
        let col_layout = Layout2D::new(ncols, grid.q());
        assert_eq!(local.nrows(), row_layout.block_range(grid.myrow()).len());
        assert_eq!(local.ncols(), col_layout.block_range(grid.mycol()).len());
        DistMat {
            row_layout,
            col_layout,
            local,
        }
    }

    /// Global row count.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.row_layout.len()
    }

    /// Global column count.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.col_layout.len()
    }

    #[inline]
    pub fn row_layout(&self) -> Layout2D {
        self.row_layout
    }

    #[inline]
    pub fn col_layout(&self) -> Layout2D {
        self.col_layout
    }

    /// This rank's local block.
    #[inline]
    pub fn local(&self) -> &Csr<T> {
        &self.local
    }

    /// Global nonzero count (collective).
    pub fn nnz_global(&self, grid: &ProcGrid) -> u64 {
        grid.world()
            .allreduce(self.local.nnz() as u64, |a, b| a + b)
    }

    /// Global index offsets of the local block: `(row_start, col_start)`.
    pub fn local_offsets(&self, grid: &ProcGrid) -> (usize, usize) {
        (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        )
    }

    /// Iterate local entries with *global* coordinates.
    pub fn iter_global<'a>(
        &'a self,
        grid: &ProcGrid,
    ) -> impl Iterator<Item = (u64, u64, &'a T)> + 'a {
        let (r0, c0) = self.local_offsets(grid);
        self.local
            .iter()
            .map(move |(r, c, v)| ((r as usize + r0) as u64, (c as usize + c0) as u64, v))
    }

    /// Gather every triple on every rank (test/diagnostic helper; global
    /// coordinates, unsorted).
    pub fn gather_triples(&self, grid: &ProcGrid) -> Vec<(u64, u64, T)> {
        let local: Vec<(u64, u64, T)> = self
            .iter_global(grid)
            .map(|(r, c, v)| (r, c, v.clone()))
            .collect();
        grid.world()
            .allgather(local)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Element-wise value transform (CombBLAS `Apply`); local, no
    /// communication. `f` sees global coordinates.
    pub fn map_values<U: Clone + CommMsg>(
        self,
        grid: &ProcGrid,
        mut f: impl FnMut(u64, u64, T) -> U,
    ) -> DistMat<U> {
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        DistMat {
            row_layout: self.row_layout,
            col_layout: self.col_layout,
            local: self
                .local
                .map(|r, c, v| f((r as usize + r0) as u64, (c as usize + c0) as u64, v)),
        }
    }

    /// Keep only entries satisfying `keep` (CombBLAS `Prune`); local.
    pub fn prune(self, grid: &ProcGrid, mut keep: impl FnMut(u64, u64, &T) -> bool) -> DistMat<T> {
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        DistMat {
            row_layout: self.row_layout,
            col_layout: self.col_layout,
            local: self
                .local
                .retain(|r, c, v| keep((r as usize + r0) as u64, (c as usize + c0) as u64, v)),
        }
    }

    /// Prune entries of `self` using the co-located entry of another
    /// same-shape, same-layout matrix (local; no communication). `keep`
    /// receives global coordinates, the value, and the other matrix's
    /// entry at the same position if present.
    pub fn zip_prune<U>(
        self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        mut keep: impl FnMut(u64, u64, &T, Option<&U>) -> bool,
    ) -> DistMat<T> {
        assert_eq!(self.row_layout, other.row_layout);
        assert_eq!(self.col_layout, other.col_layout);
        let (r0, c0) = (
            self.row_layout.block_range(grid.myrow()).start,
            self.col_layout.block_range(grid.mycol()).start,
        );
        let other_local = &other.local;
        DistMat {
            row_layout: self.row_layout,
            col_layout: self.col_layout,
            local: self.local.retain(|r, c, v| {
                keep(
                    (r as usize + r0) as u64,
                    (c as usize + c0) as u64,
                    v,
                    other_local.get(r as usize, c as usize),
                )
            }),
        }
    }

    /// Distributed transpose: block `(i, j)` swaps (transposed) triples
    /// with the rank at `(j, i)`.
    pub fn transpose(&self, grid: &ProcGrid) -> DistMat<T> {
        let transposed: Vec<(u64, u64, T)> = self
            .iter_global(grid)
            .map(|(r, c, v)| (c, r, v.clone()))
            .collect();
        let received = if grid.is_diagonal() {
            transposed
        } else {
            let partner = grid.transpose_rank();
            grid.world().send(partner, TRANSPOSE_TAG, transposed);
            grid.world()
                .recv::<Vec<(u64, u64, T)>>(partner, TRANSPOSE_TAG)
        };
        // After the swap this rank holds block (myrow, mycol) of Aᵀ, whose
        // row layout is A's column layout and vice versa.
        let row_layout = self.col_layout;
        let col_layout = self.row_layout;
        let row_range = row_layout.block_range(grid.myrow());
        let col_range = col_layout.block_range(grid.mycol());
        let local_triples: Vec<(u32, u32, T)> = received
            .into_iter()
            .map(|(r, c, v)| {
                (
                    (r as usize - row_range.start) as u32,
                    (c as usize - col_range.start) as u32,
                    v,
                )
            })
            .collect();
        let local = Csr::from_triples(row_range.len(), col_range.len(), local_triples, |_, _| {
            unreachable!("transpose cannot create duplicates")
        });
        DistMat {
            row_layout,
            col_layout,
            local,
        }
    }

    /// Distributed SpGEMM `C = self ⊗ other` under `semiring`, via the 2D
    /// SUMMA algorithm: at stage `s`, block column `s` of `A` is broadcast
    /// along grid rows and block row `s` of `B` along grid columns; each
    /// rank multiplies the pair locally and accumulates its `C` block.
    ///
    /// Runs the default schedule ([`SpGemmAlgorithm::Pipelined`]); use
    /// [`DistMat::spgemm_with`] to pick a schedule explicitly.
    pub fn spgemm<S, U>(&self, grid: &ProcGrid, other: &DistMat<U>, semiring: &S) -> DistMat<S::Out>
    where
        S: Semiring<A = T, B = U>,
        U: Clone + CommMsg,
        S::Out: Clone + CommMsg,
    {
        self.spgemm_with(grid, other, semiring, &SpGemmOptions::default())
    }

    /// Distributed SUMMA SpGEMM under an explicit schedule; all schedules
    /// produce identical results (the equivalence property tests pin
    /// this), differing only in overlap and peak memory.
    pub fn spgemm_with<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        opts: &SpGemmOptions,
    ) -> DistMat<S::Out>
    where
        S: Semiring<A = T, B = U>,
        U: Clone + CommMsg,
        S::Out: Clone + CommMsg,
    {
        assert_eq!(
            self.col_layout, other.row_layout,
            "inner dimension layouts must agree for SUMMA"
        );
        let local = match opts.algorithm {
            SpGemmAlgorithm::Eager => self.summa_eager(grid, other, semiring),
            SpGemmAlgorithm::Pipelined => self.summa_pipelined(grid, other, semiring),
            SpGemmAlgorithm::Blocked => {
                self.summa_blocked(grid, other, semiring, opts.batch_rows.max(1))
            }
        };
        DistMat {
            row_layout: self.row_layout,
            col_layout: other.col_layout,
            local,
        }
    }

    /// Naive SUMMA: blocking broadcasts, global triple accumulation, one
    /// final sort-merge. Peak memory holds every stage's intermediate
    /// triples at once.
    fn summa_eager<S, U>(&self, grid: &ProcGrid, other: &DistMat<U>, semiring: &S) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U>,
        U: Clone + CommMsg,
        S::Out: Clone + CommMsg,
    {
        let q = grid.q();
        let mut acc: Vec<(u32, u32, S::Out)> = Vec::new();
        for s in 0..q {
            let a_block = grid
                .row()
                .bcast(s, (grid.mycol() == s).then(|| self.local.clone()));
            let b_block = grid
                .col()
                .bcast(s, (grid.myrow() == s).then(|| other.local.clone()));
            let stage = spgemm(&a_block, &b_block, semiring);
            acc.extend(stage.into_triples());
        }
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        Csr::from_triples(row_range.len(), col_range.len(), acc, |a, v| {
            semiring.add(a, v)
        })
    }

    /// Double-buffered SUMMA: the broadcasts for stage `s+1` are posted
    /// before stage `s` is multiplied, so (as in ELBA's overlap-detection
    /// multiply) communication for the next stage flows while this stage
    /// computes; each stage folds into the accumulator CSR immediately.
    fn summa_pipelined<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U>,
        U: Clone + CommMsg,
        S::Out: Clone + CommMsg,
    {
        let q = grid.q();
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let post = |s: usize| {
            let a_req = grid
                .row()
                .ibcast(s, (grid.mycol() == s).then(|| self.local.clone()));
            let b_req = grid
                .col()
                .ibcast(s, (grid.myrow() == s).then(|| other.local.clone()));
            (a_req, b_req)
        };
        let mut acc: Csr<S::Out> = Csr::empty(row_range.len(), col_range.len());
        let mut inflight = Some(post(0));
        for s in 0..q {
            // Prefetch stage s+1 before touching stage s: the roots' tree
            // sends go out now and ride alongside this stage's multiply.
            let next = (s + 1 < q).then(|| post(s + 1));
            let (a_req, b_req) = inflight.take().expect("stage request posted");
            let a_block = a_req.wait();
            let b_block = b_req.wait();
            inflight = next;
            let stage = spgemm(&a_block, &b_block, semiring);
            acc = csr_merge(acc, stage, |a, v| semiring.add(a, v));
        }
        acc
    }

    /// Memory-bounded SUMMA: blocking broadcasts (only one stage of
    /// remote blocks resident) and a per-row accumulator that batches
    /// merge directly into — no stage-wide CSR or triple buffer ever
    /// exists. Live intermediates beyond the accumulated result are one
    /// batch of output rows (≤ `batch_rows`), one merged row, and the
    /// multiply's O(block cols) dense accumulator arrays; the final CSR
    /// is assembled once after the last stage.
    fn summa_blocked<S, U>(
        &self,
        grid: &ProcGrid,
        other: &DistMat<U>,
        semiring: &S,
        batch_rows: usize,
    ) -> Csr<S::Out>
    where
        S: Semiring<A = T, B = U>,
        U: Clone + CommMsg,
        S::Out: Clone + CommMsg,
    {
        let q = grid.q();
        let row_range = self.row_layout.block_range(grid.myrow());
        let col_range = other.col_layout.block_range(grid.mycol());
        let nrows = row_range.len();
        // Accumulate per row (sorted column/value pairs) so each batch
        // merges in place, touching only its own row window.
        let mut acc_rows: Vec<(Vec<u32>, Vec<S::Out>)> =
            (0..nrows).map(|_| (Vec::new(), Vec::new())).collect();
        for s in 0..q {
            let a_block = grid
                .row()
                .bcast(s, (grid.mycol() == s).then(|| self.local.clone()));
            let b_block = grid
                .col()
                .bcast(s, (grid.myrow() == s).then(|| other.local.clone()));
            let mut batcher = SpGemmBatcher::new(&a_block, &b_block, semiring);
            let mut start = 0;
            while start < nrows {
                let end = (start + batch_rows).min(nrows);
                let batch = batcher.multiply_rows(start..end);
                let (batch_indptr, batch_indices, batch_values) = batch.into_parts();
                let mut batch_vals = batch_values.into_iter();
                for (in_batch, row) in (start..end).enumerate() {
                    let width = batch_indptr[in_batch + 1] - batch_indptr[in_batch];
                    if width == 0 {
                        continue;
                    }
                    let cols = &batch_indices[batch_indptr[in_batch]..batch_indptr[in_batch + 1]];
                    let vals: Vec<S::Out> = batch_vals.by_ref().take(width).collect();
                    merge_row(&mut acc_rows[row], cols, vals, |a, v| semiring.add(a, v));
                }
                start = end;
            }
        }
        let nnz = acc_rows.iter().map(|(cols, _)| cols.len()).sum();
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        let mut values: Vec<S::Out> = Vec::with_capacity(nnz);
        for (cols, vals) in acc_rows {
            indices.extend(cols);
            values.extend(vals);
            indptr.push(indices.len());
        }
        Csr::from_parts(nrows, col_range.len(), indptr, indices, values)
    }

    /// Row-wise reduction into a [`DistVec`] aligned with the row layout:
    /// `out[i] = fold over row i's entries`. Implemented as a local
    /// reduction followed by a reduce-scatter over the grid-row
    /// communicator (each rank ends up with its vector sub-chunk).
    pub fn row_reduce<U>(
        &self,
        grid: &ProcGrid,
        mut init: impl FnMut() -> U,
        mut fold: impl FnMut(&mut U, u64, &T),
        merge: impl Fn(U, U) -> U + Copy,
    ) -> DistVec<U>
    where
        U: Clone + CommMsg,
    {
        let (_, c0) = self.local_offsets(grid);
        let partial: Vec<U> = self.local.row_reduce(&mut init, |acc, c, v| {
            fold(acc, (c as usize + c0) as u64, v)
        });
        // Slice the block-row partials into the q vector sub-chunks owned
        // by this grid row and reduce-scatter them across the row comm.
        let row_range = self.row_layout.block_range(grid.myrow());
        let contributions: Vec<Vec<U>> = (0..grid.q())
            .map(|j| {
                let chunk = self.row_layout.chunk_range(grid.myrow(), j);
                partial[(chunk.start - row_range.start)..(chunk.end - row_range.start)].to_vec()
            })
            .collect();
        let reduced = grid.row().reduce_scatter_block(contributions, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| merge(x, y)).collect()
        });
        DistVec::from_local(grid, self.row_layout.len(), reduced)
    }

    /// Vertex degrees: row-wise nonzero count (the paper's "summation
    /// reduction over the row dimension" producing the degree vector `d`).
    pub fn row_degrees(&self, grid: &ProcGrid) -> DistVec<u64> {
        self.row_reduce(grid, || 0u64, |acc, _, _| *acc += 1, |a, b| a + b)
    }

    /// Zero out every row **and** column whose mask entry is `true`
    /// (ELBA's branch-vertex masking; requires a square matrix). The
    /// matrix keeps its dimensions — "row 10 is still a row in the
    /// matrix" — only its nonzeros change.
    pub fn mask_rows_cols(self, grid: &ProcGrid, mask: &DistVec<bool>) -> DistMat<T> {
        assert_eq!(
            self.row_layout, self.col_layout,
            "mask_rows_cols needs a square matrix"
        );
        assert_eq!(mask.len(), self.nrows());
        let (row_mask, col_mask) = mask.fetch_aligned(grid);
        // Local indices are block-relative and the fetched masks cover
        // exactly this block's row/column ranges, so direct indexing works.
        DistMat {
            row_layout: self.row_layout,
            col_layout: self.col_layout,
            local: self
                .local
                .retain(|r, c, _| !row_mask[r as usize] && !col_mask[c as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::semiring::{Count, PlusTimes};
    use elba_comm::Cluster;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_triples(
        rng: &mut StdRng,
        nrows: usize,
        ncols: usize,
        density: f64,
    ) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                if rng.gen_bool(density) {
                    out.push((r as u64, c as u64, rng.gen_range(-3..4) as f64));
                }
            }
        }
        out.retain(|&(_, _, v)| v != 0.0);
        out
    }

    fn dense_from_triples(nrows: usize, ncols: usize, t: &[(u64, u64, f64)]) -> Dense {
        let mut d = Dense::zeros(nrows, ncols);
        for &(r, c, v) in t {
            d.set(r as usize, c as usize, v);
        }
        d
    }

    #[test]
    fn from_triples_round_trip() {
        for p in [1usize, 4, 9] {
            let out = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                // Only rank 0 contributes; routing must deliver to owners.
                let triples = if grid.world().rank() == 0 {
                    vec![(0u64, 0u64, 1.0f64), (6, 3, 2.0), (3, 6, 3.0), (9, 9, 4.0)]
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 10, 10, triples, |_, _| unreachable!());
                let mut all = m.gather_triples(&grid);
                all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                all
            });
            assert_eq!(
                out[0],
                vec![(0, 0, 1.0), (3, 6, 3.0), (6, 3, 2.0), (9, 9, 4.0)],
                "p={p}"
            );
        }
    }

    #[test]
    fn duplicate_triples_combined() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            // every rank contributes the same entry
            let triples = vec![(2u64, 2u64, 1.0f64)];
            let m = DistMat::from_triples(&grid, 5, 5, triples, |acc, v| *acc += v);
            m.gather_triples(&grid)
        });
        assert_eq!(out[0], vec![(2, 2, 4.0)]);
    }

    #[test]
    fn transpose_matches_serial() {
        for p in [1usize, 4, 9] {
            let out = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                let mut rng = StdRng::seed_from_u64(11);
                let triples = random_triples(&mut rng, 13, 7, 0.2);
                let mine = if grid.world().rank() == 0 {
                    triples.clone()
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 13, 7, mine, |_, _| unreachable!());
                let t = m.transpose(&grid);
                assert_eq!(t.nrows(), 7);
                assert_eq!(t.ncols(), 13);
                let mut got = t.gather_triples(&grid);
                got.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                let mut want: Vec<(u64, u64, f64)> =
                    triples.iter().map(|&(r, c, v)| (c, r, v)).collect();
                want.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                got == want
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }

    #[test]
    fn summa_matches_dense_reference() {
        for p in [1usize, 4, 9, 16] {
            let ok = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                let mut rng = StdRng::seed_from_u64(23 + p as u64);
                let (n, k, m) = (17, 11, 9);
                let a_triples = random_triples(&mut rng, n, k, 0.25);
                let b_triples = random_triples(&mut rng, k, m, 0.25);
                let mine_a = if grid.world().rank() == 0 {
                    a_triples.clone()
                } else {
                    Vec::new()
                };
                let mine_b = if grid.world().rank() == 0 {
                    b_triples.clone()
                } else {
                    Vec::new()
                };
                let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
                let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
                let c = a.spgemm(&grid, &b, &PlusTimes);
                let want = dense_from_triples(n, k, &a_triples)
                    .matmul(&dense_from_triples(k, m, &b_triples));
                let got_triples = c.gather_triples(&grid);
                let got = dense_from_triples(n, m, &got_triples);
                got == want
            });
            assert!(ok.iter().all(|&x| x), "p={p}");
        }
    }

    #[test]
    fn all_schedules_match_dense_reference() {
        for p in [1usize, 4, 9] {
            for opts in [
                SpGemmOptions::eager(),
                SpGemmOptions::pipelined(),
                SpGemmOptions::blocked(1),
                SpGemmOptions::blocked(3),
                SpGemmOptions::blocked(1024),
            ] {
                let ok = Cluster::run(p, move |comm| {
                    let grid = ProcGrid::new(comm);
                    let mut rng = StdRng::seed_from_u64(101 + p as u64);
                    let (n, k, m) = (15, 12, 10);
                    let a_triples = random_triples(&mut rng, n, k, 0.3);
                    let b_triples = random_triples(&mut rng, k, m, 0.3);
                    let mine_a = if grid.world().rank() == 0 {
                        a_triples.clone()
                    } else {
                        Vec::new()
                    };
                    let mine_b = if grid.world().rank() == 0 {
                        b_triples.clone()
                    } else {
                        Vec::new()
                    };
                    let a = DistMat::from_triples(&grid, n, k, mine_a, |_, _| unreachable!());
                    let b = DistMat::from_triples(&grid, k, m, mine_b, |_, _| unreachable!());
                    let c = a.spgemm_with(&grid, &b, &PlusTimes, &opts);
                    let want = dense_from_triples(n, k, &a_triples)
                        .matmul(&dense_from_triples(k, m, &b_triples));
                    let got = dense_from_triples(n, m, &c.gather_triples(&grid));
                    got == want
                });
                assert!(ok.iter().all(|&x| x), "p={p} opts={opts:?}");
            }
        }
    }

    #[test]
    fn aat_with_count_semiring_counts_shared_columns() {
        // Mirrors overlap detection: A is reads×kmers, C = AAᵀ counts
        // shared k-mers between each read pair.
        let ok = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            // reads: 0 has kmers {0,1}, 1 has {1,2}, 2 has {3}
            let triples = if grid.world().rank() == 0 {
                vec![
                    (0u64, 0u64, 1u8),
                    (0, 1, 1),
                    (1, 1, 1),
                    (1, 2, 1),
                    (2, 3, 1),
                ]
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, 3, 4, triples, |_, _| unreachable!());
            let at = a.transpose(&grid);
            let c = a.spgemm(&grid, &at, &Count::<u8, u8>::new());
            let mut got = c.gather_triples(&grid);
            got.sort();
            got == vec![(0, 0, 2), (0, 1, 1), (1, 0, 1), (1, 1, 2), (2, 2, 1)]
        });
        assert!(ok.iter().all(|&x| x));
    }

    #[test]
    fn row_degrees_match_serial() {
        for p in [1usize, 4, 9] {
            let out = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                // path graph 0-1-2-3-4 plus branch 2-5, symmetric
                let edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)];
                let triples: Vec<(u64, u64, u8)> = if grid.world().rank() == 0 {
                    edges
                        .iter()
                        .flat_map(|&(u, v)| [(u, v, 1u8), (v, u, 1u8)])
                        .collect()
                } else {
                    Vec::new()
                };
                let m = DistMat::from_triples(&grid, 6, 6, triples, |_, _| unreachable!());
                let deg = m.row_degrees(&grid);
                deg.to_global(&grid)
            });
            assert_eq!(out[0], vec![1, 2, 3, 2, 1, 1], "p={p}");
        }
    }

    #[test]
    fn mask_rows_cols_removes_branch_vertex() {
        // The §4.2 worked example: v1→v2→v3, v3→v4→v5→v6, v3→v7→v8
        // (0-indexed: v3 = vertex 2). Masking vertex 2 leaves chains
        // {0,1}, {3,4,5}, {6,7}.
        for p in [1usize, 4] {
            let out = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                let edges: Vec<(u64, u64)> =
                    vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7)];
                let triples: Vec<(u64, u64, u8)> = if grid.world().rank() == 0 {
                    edges
                        .iter()
                        .flat_map(|&(u, v)| [(u, v, 1u8), (v, u, 1u8)])
                        .collect()
                } else {
                    Vec::new()
                };
                let s = DistMat::from_triples(&grid, 8, 8, triples, |_, _| unreachable!());
                let deg = s.row_degrees(&grid);
                let mask = deg.map(&grid, |_, &d| d >= 3);
                let l = s.mask_rows_cols(&grid, &mask);
                let mut got: Vec<(u64, u64)> = l
                    .gather_triples(&grid)
                    .into_iter()
                    .map(|(r, c, _)| (r, c))
                    .collect();
                got.sort();
                got
            });
            let want: Vec<(u64, u64)> = vec![
                (0, 1),
                (1, 0),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 4),
                (6, 7),
                (7, 6),
            ];
            assert_eq!(out[0], want, "p={p}");
        }
    }

    #[test]
    fn map_values_and_prune() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            let triples = if grid.world().rank() == 0 {
                vec![(0u64, 1u64, 5u64), (1, 0, 6), (2, 2, 7)]
            } else {
                Vec::new()
            };
            let m = DistMat::from_triples(&grid, 3, 3, triples, |_, _| unreachable!());
            let doubled = m.map_values(&grid, |_, _, v| v * 2);
            let kept = doubled.prune(&grid, |r, c, _| r != c);
            let mut got = kept.gather_triples(&grid);
            got.sort();
            got
        });
        assert_eq!(out[0], vec![(0, 1, 10), (1, 0, 12)]);
    }
}
