//! Compressed sparse column storage with the paper's field names:
//! `JC` (column pointers), `IR` (row indices), `VAL` (edge payloads).
//!
//! ELBA converts each rank's induced-subgraph block from DCSC to CSC
//! before local assembly "for simplicity and faster vertex (column)
//! indexing" (§4.4) — the local-assembly walk reads `JC[c+1] − JC[c]` as
//! the vertex degree and scans `IR[JC[c]..JC[c+1]]` for successors. This
//! type exposes exactly those access patterns.

use crate::csr::Csr;

/// Sparse matrix in CSC form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    /// Column pointer array (`JC` in the paper), length `ncols + 1`.
    jc: Vec<usize>,
    /// Row index array (`IR`), length `nnz`.
    ir: Vec<u32>,
    /// Value array (`VAL`), length `nnz`.
    val: Vec<T>,
}

impl<T> Csc<T> {
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            jc: vec![0; ncols + 1],
            ir: Vec::new(),
            val: Vec::new(),
        }
    }

    /// Build from triples; duplicates merged with `combine`.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        mut triples: Vec<(u32, u32, T)>,
        mut combine: impl FnMut(&mut T, T),
    ) -> Self {
        triples.sort_by_key(|&(r, c, _)| ((c as u64) << 32) | r as u64);
        let mut jc = vec![0usize; ncols + 1];
        let mut ir = Vec::with_capacity(triples.len());
        let mut val: Vec<T> = Vec::with_capacity(triples.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in triples {
            debug_assert!((r as usize) < nrows && (c as usize) < ncols);
            if last == Some((r, c)) {
                combine(val.last_mut().expect("duplicate follows entry"), v);
            } else {
                jc[c as usize + 1] += 1;
                ir.push(r);
                val.push(v);
                last = Some((r, c));
            }
        }
        for j in 0..ncols {
            jc[j + 1] += jc[j];
        }
        Csc {
            nrows,
            ncols,
            jc,
            ir,
            val,
        }
    }

    /// Convert from CSR (O(nnz)); CSC of `m` equals CSR of `mᵀ` reinterpreted.
    pub fn from_csr(m: Csr<T>) -> Self {
        let nrows = m.nrows();
        let ncols = m.ncols();
        let t = m.transpose(); // CSR of mᵀ: rows of t are columns of m
        let (indptr, indices, values) = {
            let trip = t.into_triples();
            // t is already column-grouped for m; rebuild arrays directly.
            let mut jc = vec![0usize; ncols + 1];
            let mut ir = Vec::with_capacity(trip.len());
            let mut val = Vec::with_capacity(trip.len());
            for (tc, tr, v) in trip {
                // In t, row index = original column, col index = original row.
                jc[tc as usize + 1] += 1;
                ir.push(tr);
                val.push(v);
            }
            for j in 0..ncols {
                jc[j + 1] += jc[j];
            }
            (jc, ir, val)
        };
        Csc {
            nrows,
            ncols,
            jc: indptr,
            ir: indices,
            val: values,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// The paper's `JC` column-pointer array.
    #[inline]
    pub fn jc(&self) -> &[usize] {
        &self.jc
    }

    /// The paper's `IR` row-index array.
    #[inline]
    pub fn ir(&self) -> &[u32] {
        &self.ir
    }

    /// The paper's `VAL` payload array.
    #[inline]
    pub fn val(&self) -> &[T] {
        &self.val
    }

    /// Degree of vertex (column) `j`: `JC[j+1] − JC[j]` — the expression
    /// the local-assembly root scan evaluates.
    #[inline]
    pub fn degree(&self, j: usize) -> usize {
        self.jc[j + 1] - self.jc[j]
    }

    /// Row indices and values stored in column `j` (the successor slice
    /// `IR[JC[c] .. JC[c+1]]`).
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        let span = self.jc[j]..self.jc[j + 1];
        (&self.ir[span.clone()], &self.val[span])
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        let (rows, vals) = self.col(j);
        rows.binary_search(&(i as u32)).ok().map(|k| &vals[k])
    }

    /// Iterate entries as `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&r, v)| (r, j as u32, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<i32> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csc::from_triples(
            3,
            3,
            vec![(2, 1, 4), (0, 0, 1), (0, 2, 2), (2, 0, 3)],
            |_, _| panic!("no duplicates"),
        )
    }

    #[test]
    fn columns_are_grouped() {
        let m = sample();
        assert_eq!(m.col(0), (&[0u32, 2][..], &[1, 3][..]));
        assert_eq!(m.col(1), (&[2u32][..], &[4][..]));
        assert_eq!(m.col(2), (&[0u32][..], &[2][..]));
    }

    #[test]
    fn degree_matches_paper_expression() {
        let m = sample();
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(1), 1);
        assert_eq!(m.degree(2), 1);
        assert_eq!(m.jc()[1] - m.jc()[0], 2);
    }

    #[test]
    fn from_csr_matches_from_triples() {
        let triples = vec![(2u32, 1u32, 4), (0, 0, 1), (0, 2, 2), (2, 0, 3)];
        let csr = Csr::from_triples(3, 3, triples.clone(), |_, _| unreachable!());
        let via_csr = Csc::from_csr(csr);
        let direct = Csc::from_triples(3, 3, triples, |_, _| unreachable!());
        assert_eq!(via_csr, direct);
    }

    #[test]
    fn get_and_iter_column_major() {
        let m = sample();
        assert_eq!(m.get(2, 0), Some(&3));
        assert_eq!(m.get(1, 1), None);
        let order: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(order, vec![(0, 0, 1), (2, 0, 3), (2, 1, 4), (0, 2, 2)]);
    }

    #[test]
    fn duplicate_merge() {
        let m = Csc::from_triples(2, 2, vec![(1, 1, 5), (1, 1, 6)], |acc, v| *acc += v);
        assert_eq!(m.get(1, 1), Some(&11));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty() {
        let m: Csc<u8> = Csc::empty(3, 4);
        assert_eq!(m.degree(3), 0);
        assert_eq!(m.nnz(), 0);
    }
}
