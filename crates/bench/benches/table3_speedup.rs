//! Table 3 — ELBA's speedup over the shared-memory state of the art.
//!
//! The paper runs Hifiasm and HiCanu on one Cori node and ELBA on 18–128
//! nodes, reporting 3–36× (Hifiasm) and 11–159× (HiCanu) speedups. Here
//! the comparators are the two from-scratch serial baselines (minimizer
//! ≈ Hifiasm-family, BOG ≈ HiCanu-family). Two views are printed:
//! measured in-process runs (P ≤ 16 ranks sharing the host's cores —
//! here ELBA does *not* win, consistent with the paper's own per-core
//! economics: their ELBA needs 576 ranks to beat 32-thread Hifiasm 3×)
//! and the α–β projection at the paper's 18–128 node counts, where the
//! reproduced shape appears: (a) ELBA beats both, (b) the BOG-family
//! column is the larger speedup, (c) speedup grows with node count.

use std::time::Instant;

use elba_baseline::{assemble_bog, assemble_minimizer, BaselineConfig};
use elba_bench::{banner, dataset, pipeline_time, project_series, run_pipeline, PAPER_NODE_COUNTS};
use elba_comm::MachineModel;
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;

fn main() {
    banner("Table 3 — ELBA speedup over shared-memory assemblers");
    for spec in [
        DatasetSpec::celegans_like(0.30, 71),
        DatasetSpec::osativa_like(0.25, 72),
    ] {
        let (_genome, reads) = dataset(&spec);
        println!("\n--- {} ({} reads) ---", spec.name, reads.len());

        let bcfg = BaselineConfig {
            k: spec.k,
            xdrop: spec.xdrop,
            min_overlap: (spec.reads.mean_len as f64 * 0.05) as usize,
            fuzz: (spec.reads.mean_len as f64 * 0.05) as usize,
            ..BaselineConfig::default()
        };
        let started = Instant::now();
        let (_contigs, _stats) = assemble_minimizer(&reads, &bcfg);
        let minimizer_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let (_contigs, _stats) = assemble_bog(&reads, &bcfg);
        let bog_secs = started.elapsed().as_secs_f64();
        println!(
            "{:<28} {:>10.2}s   (Hifiasm-family comparator)",
            "minimizer baseline", minimizer_secs
        );
        println!(
            "{:<28} {:>10.2}s   (HiCanu-family comparator)",
            "best-overlap-graph baseline", bog_secs
        );

        let cfg = PipelineConfig::for_dataset(&spec);
        println!(
            "{:>8} {:>12} {:>18} {:>14}   (measured, in-process ranks)",
            "ranks", "ELBA s", "vs minimizer", "vs BOG"
        );
        let mut last = None;
        for nranks in [1usize, 4, 16] {
            let run = run_pipeline(&reads, &cfg, nranks);
            let elba_secs = pipeline_time(&run.profile);
            println!(
                "{:>8} {:>12.3} {:>17.1}x {:>13.1}x",
                nranks,
                elba_secs,
                minimizer_secs / elba_secs,
                bog_secs / elba_secs
            );
            last = Some(run);
        }
        // The paper's experimental design: baselines on ONE node, ELBA on
        // 18-128. In-process ranks on a small host cannot show that; the
        // projection at the paper's node counts can. (Per-core, ELBA is
        // *less* efficient than the shared-memory tools — the paper's own
        // numbers imply the same — it wins on scale-out.)
        let base = last.expect("measured run");
        let model = MachineModel::cori_haswell();
        let series = project_series(&base, &model, &PAPER_NODE_COUNTS);
        println!(
            "{:>8} {:>12} {:>18} {:>14}   (projected, {})",
            "nodes", "ELBA s", "vs minimizer", "vs BOG", model.name
        );
        for (nodes, (_, secs)) in PAPER_NODE_COUNTS.iter().zip(&series) {
            println!(
                "{:>8} {:>12.4} {:>17.0}x {:>13.0}x",
                nodes,
                secs,
                minimizer_secs / secs,
                bog_secs / secs
            );
        }
    }
    println!(
        "\npaper reference: C. elegans — Hifiasm 1,015s, HiCanu 3,819s, ELBA\n\
         3–15x and 11–58x at 18–128 nodes; O. sativa — Hifiasm 4,131.9s,\n\
         HiCanu 18,131s, ELBA 18–36x and 78–159x at 50–128 nodes."
    );
}
