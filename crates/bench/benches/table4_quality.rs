//! Table 4 — assembly quality: completeness, longest contig, number of
//! contigs, misassemblies, for ELBA and the two baselines on the
//! low-error datasets (O. sativa top, C. elegans bottom in the paper).
//!
//! Paper shape to reproduce: ELBA's completeness is competitive (higher
//! than both tools on C. elegans), its misassembly count is small, but —
//! with no polishing stage — its contigs are shorter and more numerous
//! than the polished comparators'.

use elba_baseline::{assemble_bog, assemble_minimizer, BaselineConfig};
use elba_bench::{banner, dataset, run_pipeline};
use elba_core::PipelineConfig;
use elba_quality::{evaluate, QualityConfig};
use elba_seq::{DatasetSpec, Seq};

fn report_row(tool: &str, genome: &Seq, contigs: &[Seq]) {
    let report = evaluate(genome, contigs, &QualityConfig::default());
    println!(
        "{:<26} {:>14.2} {:>16} {:>9} {:>14}",
        tool,
        report.completeness,
        report.longest_contig,
        report.n_contigs,
        report.misassembled_contigs
    );
}

fn main() {
    banner("Table 4 — assembler quality (O. sativa top, C. elegans bottom)");
    for spec in [
        DatasetSpec::osativa_like(0.30, 81),
        DatasetSpec::celegans_like(0.30, 82),
    ] {
        let (genome, reads) = dataset(&spec);
        println!(
            "\n--- {} (genome {} bp, {} reads) ---",
            spec.name,
            genome.len(),
            reads.len()
        );
        println!(
            "{:<26} {:>14} {:>16} {:>9} {:>14}",
            "tool", "completeness %", "longest contig", "contigs", "misassembled"
        );

        let cfg = PipelineConfig::for_dataset(&spec);
        let run = run_pipeline(&reads, &cfg, 4);
        let elba_seqs: Vec<Seq> = run.contigs.iter().map(|c| c.seq.clone()).collect();
        report_row("ELBA (this repro, P=4)", &genome, &elba_seqs);

        let bcfg = BaselineConfig {
            k: spec.k,
            xdrop: spec.xdrop,
            min_overlap: (spec.reads.mean_len as f64 * 0.05) as usize,
            fuzz: (spec.reads.mean_len as f64 * 0.05) as usize,
            ..BaselineConfig::default()
        };
        let (mini, _) = assemble_minimizer(&reads, &bcfg);
        let mini_seqs: Vec<Seq> = mini.iter().map(|c| c.seq.clone()).collect();
        report_row("minimizer (Hifiasm-family)", &genome, &mini_seqs);

        let (bog, _) = assemble_bog(&reads, &bcfg);
        let bog_seqs: Vec<Seq> = bog.iter().map(|c| c.seq.clone()).collect();
        report_row("BOG (HiCanu-family)", &genome, &bog_seqs);
    }
    println!(
        "\npaper reference (O. sativa / C. elegans): ELBA completeness 37.09 /\n\
         98.93 with 6,411 / 4,287 contigs and 2 / 5 misassemblies; polished\n\
         comparators produce far fewer, far longer contigs — the same trade\n\
         this table shows."
    );
}
