//! Table 1 — evaluation machines.
//!
//! The paper's Table 1 lists Cori Haswell and Summit CPU. The physical
//! machines are replaced by α–β models (latency, per-rank bandwidth,
//! relative core speed) that drive the strong-scaling projections of
//! Figs. 4–6; this harness prints the substituted table.

use elba_bench::banner;
use elba_comm::MachineModel;

fn main() {
    banner("Table 1 — machines (paper) vs machine models (this repro)");
    println!(
        "{:<16} {:>12} {:>10} {:>18} {:>14} {:>12}",
        "platform", "cores/node", "ranks/node", "alpha (latency)", "beta/rank", "core speed"
    );
    println!(
        "{:<16} {:>12} {:>10} {:>18} {:>14} {:>12}",
        "—paper—", "", "", "", "", ""
    );
    println!(
        "{:<16} {:>12} {:>10} {:>18} {:>14} {:>12}",
        "Cori Haswell", 32, 32, "Aries dragonfly", "10 GB/s/node", "1.00"
    );
    println!(
        "{:<16} {:>12} {:>10} {:>18} {:>14} {:>12}",
        "Summit CPU", 42, 32, "IB fat tree", "23 GB/s/node", "no AVX2"
    );
    println!("{:<16}", "—models—");
    for model in [MachineModel::cori_haswell(), MachineModel::summit_cpu()] {
        println!(
            "{:<16} {:>12} {:>10} {:>15.2e} s {:>11.2e} B/s {:>12.2}",
            model.name, "-", model.ranks_per_node, model.alpha, model.beta, model.compute_speed
        );
    }
    println!(
        "\nSummit's compute_speed < 1 encodes the paper's observation that the\n\
         x-drop alignment library lacks POWER9 SIMD, making per-core alignment\n\
         slower on Summit than on Cori Haswell (§5, §6.1)."
    );
}
