//! PR 6 perf trajectory: writes `BENCH_pr6.json` at the repository root
//! with (a) the bit-parallel vs scalar x-drop kernel microbench (score
//! sums asserted identical), (b) the seed-chaining stage bench
//! (extend-all vs chain vs best-only `align_pair_with` over the same
//! candidate batch), and (c) the celegans 2×2 probe per-phase
//! wall / par / mem-hw under three configs — baseline (scalar kernel,
//! extend every seed), the shipped defaults (auto kernel + chaining),
//! and the opt-in best-only fast mode. Default-config contigs are
//! asserted byte-identical to the baseline (`contigs_match_baseline`);
//! the fast mode is held to quality assertions instead. CI greps the
//! JSON for the probe and the contig match on every push.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr6`.

use std::fmt::Write as _;
use std::time::Instant;

use elba_align::{xdrop_extend_with, Scoring, XdropKernel, XdropWorkspace};
use elba_bench::{dataset, run_pipeline, PAPER_PHASES};
use elba_core::{ChainingConfig, PipelineConfig};
use elba_graph::{align_pair_with, AlignScratch, OverlapConfig, SeedChaining};
use elba_graph::{Seed, SharedSeeds};
use elba_quality::{evaluate, QualityConfig};
use elba_seq::DatasetSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median wall seconds of `iters` runs of `f`.
fn time_median(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// `(a, noisy copy of a)` pairs: the deep-band workload where the whole
/// antidiagonal survives and the interior kernel dominates.
fn kernel_pairs(n: usize, len: usize, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4u8)).collect();
            let mut b = a.clone();
            for _ in 0..len / 100 {
                let at = rng.gen_range(0..b.len());
                b[at] = (b[at] + 1) % 4;
            }
            (a, b)
        })
        .collect()
}

fn main() {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(
        json,
        "  \"what\": \"bit-parallel x-drop kernel + seed chaining / candidate filtering\","
    );

    // ---- x-drop kernel: scalar vs bit-parallel on identical inputs ----
    let pairs = kernel_pairs(256, 2_000, 19);
    let sweep = |kernel: XdropKernel| {
        let mut ws = XdropWorkspace::with_kernel(kernel);
        pairs
            .iter()
            .map(|(a, b)| xdrop_extend_with(&mut ws, a, b, 50, Scoring::default()).score as i64)
            .sum::<i64>()
    };
    let mut scalar_sum = 0i64;
    let scalar_secs = time_median(5, || scalar_sum = sweep(XdropKernel::Scalar));
    let mut bitpar_sum = 0i64;
    let bitpar_secs = time_median(5, || bitpar_sum = sweep(XdropKernel::BitParallel));
    assert_eq!(
        scalar_sum, bitpar_sum,
        "kernels must produce identical scores"
    );
    let _ = writeln!(json, "  \"xdrop_kernel_256x2000bp\": {{");
    let _ = writeln!(json, "    \"scalar_secs\": {scalar_secs:.5},");
    let _ = writeln!(json, "    \"bitparallel_secs\": {bitpar_secs:.5},");
    let _ = writeln!(
        json,
        "    \"speedup\": {:.2},",
        scalar_secs / bitpar_secs.max(1e-9)
    );
    let _ = writeln!(json, "    \"score_sum\": {scalar_sum}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "xdrop kernel 256x2000bp: scalar {:.2} ms, bitparallel {:.2} ms ({:.2}x)",
        scalar_secs * 1e3,
        bitpar_secs * 1e3,
        scalar_secs / bitpar_secs.max(1e-9)
    );

    // ---- seed layer: extend-all vs chain vs best-only ----
    // Overlapping read pairs carrying two co-linear seeds each, the
    // shape `align_pair_with` sees from the ≤2-seed BELLA semiring.
    let mut rng = StdRng::seed_from_u64(23);
    let genome: Vec<u8> = (0..60_000).map(|_| rng.gen_range(0..4u8)).collect();
    let stage_pairs: Vec<(Vec<u8>, Vec<u8>, SharedSeeds)> = (0..256)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 3_000);
            let mut u = genome[start..start + 2_000].to_vec();
            let v = genome[start + 800..start + 2_800].to_vec();
            for _ in 0..20 {
                let at = rng.gen_range(0..u.len());
                u[at] = (u[at] + 1) % 4;
            }
            let mut seeds = SharedSeeds::single(Seed {
                pos_v: 900,
                pos_h: 100,
                same_strand: true,
            });
            seeds.merge(SharedSeeds::single(Seed {
                pos_v: 1_500,
                pos_h: 700,
                same_strand: true,
            }));
            (u, v, seeds)
        })
        .collect();
    let cfg_of = |chaining: SeedChaining| OverlapConfig {
        k: 17,
        xdrop: 50,
        min_overlap: 500,
        fuzz: 100,
        threads: 1,
        chaining,
        ..OverlapConfig::default()
    };
    let stage_sweep = |chaining: SeedChaining| {
        let cfg = cfg_of(chaining);
        let mut scratch = AlignScratch::with_kernel(cfg.kernel);
        stage_pairs
            .iter()
            .filter_map(|(u, v, seeds)| align_pair_with(&mut scratch, u, v, seeds, &cfg))
            .map(|aln| aln.score as i64)
            .sum::<i64>()
    };
    let _ = writeln!(json, "  \"seed_chaining_256_pairs\": {{");
    let mut stage_scores = Vec::new();
    for (label, chaining) in [
        ("all", SeedChaining::All),
        ("chain", SeedChaining::Chain),
        ("best_only", SeedChaining::BestOnly),
    ] {
        let mut score = 0i64;
        let secs = time_median(5, || score = stage_sweep(chaining));
        stage_scores.push(score);
        let _ = writeln!(
            json,
            "    \"{label}\": {{ \"secs\": {secs:.5}, \"score_sum\": {score} }},"
        );
        eprintln!(
            "seed layer {label}: {:.2} ms, score sum {score}",
            secs * 1e3
        );
    }
    // Chaining changes which x-drop extensions are *attempted*: it keeps
    // one representative per co-linear band instead of extending every
    // seed, so a per-pair score may differ when extend-all happens to
    // find a marginally better endpoint from a non-representative seed.
    // Score sums must therefore agree only within a small tolerance —
    // asserted here so a real scoring regression can't hide behind the
    // bare matches/doesn't-match boolean this bench used to report.
    // Contigs nonetheless stay byte-identical (pinned on the probe
    // below): every alignment that passes the overlap/score gates under
    // chaining also passes under extend-all with the same edge payload,
    // so the surviving overlap-graph edges — and hence the walks — are
    // the same.
    let chain_score_rel_gap =
        (stage_scores[0] - stage_scores[1]).abs() as f64 / (stage_scores[0].abs().max(1)) as f64;
    assert!(
        chain_score_rel_gap <= 0.02,
        "chain score sum drifted {:.3}% from extend-all (all={}, chain={}): \
         chaining may only skip redundant extensions, not change scoring",
        chain_score_rel_gap * 100.0,
        stage_scores[0],
        stage_scores[1]
    );
    let _ = writeln!(
        json,
        "    \"chain_score_matches_all\": {},",
        stage_scores[0] == stage_scores[1]
    );
    let _ = writeln!(
        json,
        "    \"chain_score_rel_gap\": {chain_score_rel_gap:.5}"
    );
    let _ = writeln!(json, "  }},");

    // ---- celegans 2×2 probe: baseline vs defaults vs fast mode ----
    let spec = DatasetSpec::celegans_like(0.1, 11);
    let (probe_genome, reads) = dataset(&spec);
    let base_cfg = PipelineConfig::for_dataset(&spec);
    let probe = |cfg: PipelineConfig, threads: usize| {
        let run = run_pipeline(&reads, &cfg.with_threads(threads), 4);
        let contigs: Vec<String> = run.contigs.iter().map(|c| c.seq.to_string()).collect();
        (run, contigs)
    };
    let emit = |json: &mut String, label: &str, run: &elba_bench::MeasuredRun, comma: &str| {
        let _ = writeln!(json, "    \"{label}\": {{");
        let _ = writeln!(json, "      \"phases\": {{");
        for (i, phase) in PAPER_PHASES.iter().enumerate() {
            let pc = if i + 1 < PAPER_PHASES.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        \"{phase}\": {{ \"wall_secs\": {:.4}, \"par_secs\": {:.4}, \
                 \"mem_hw_bytes\": {} }}{pc}",
                run.profile.max_wall(phase),
                run.profile.max_par_secs(phase),
                run.profile.max_mem_hw(phase)
            );
        }
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"contigs\": {}", run.contigs.len());
        let _ = writeln!(json, "    }}{comma}");
    };

    let _ = writeln!(json, "  \"celegans_2x2_probe\": {{");
    let _ = writeln!(json, "    \"scale\": 0.1, \"nranks\": 4,");
    let baseline_cfg = base_cfg
        .clone()
        .with_xdrop_kernel(XdropKernel::Scalar)
        .seed_chaining(ChainingConfig {
            chaining: SeedChaining::All,
            chain_band: 128,
        });
    let (base_t1, base_contigs) = probe(baseline_cfg.clone(), 1);
    let (base_t4, _) = probe(baseline_cfg, 4);
    let (def_t1, def_contigs_t1) = probe(base_cfg.clone(), 1);
    let (def_t4, def_contigs_t4) = probe(base_cfg.clone(), 4);
    let fast_cfg = base_cfg.seed_chaining(ChainingConfig {
        chaining: SeedChaining::BestOnly,
        chain_band: 128,
    });
    let (fast_t4, fast_contigs) = probe(fast_cfg, 4);
    emit(&mut json, "baseline_scalar_all_t1", &base_t1, ",");
    emit(&mut json, "baseline_scalar_all_t4", &base_t4, ",");
    emit(&mut json, "default_auto_chain_t1", &def_t1, ",");
    emit(&mut json, "default_auto_chain_t4", &def_t4, ",");
    emit(&mut json, "fast_best_only_t4", &fast_t4, ",");
    eprintln!(
        "celegans 2x2 probe, defaults, threads=4:\n{}",
        def_t4.profile.render_table()
    );

    assert_eq!(
        def_contigs_t1, base_contigs,
        "default-config contigs must be byte-identical to the baseline"
    );
    assert_eq!(
        def_contigs_t4, base_contigs,
        "threads must not change default-config contigs"
    );
    let contigs_match = def_contigs_t1 == base_contigs && def_contigs_t4 == base_contigs;

    // Fast mode may legitimately change contigs; hold it to quality.
    let qcfg = QualityConfig::default();
    let to_seqs = |run: &elba_bench::MeasuredRun| {
        run.contigs
            .iter()
            .map(|c| c.seq.clone())
            .collect::<Vec<_>>()
    };
    let base_q = evaluate(&probe_genome, &to_seqs(&base_t4), &qcfg);
    let fast_q = evaluate(&probe_genome, &to_seqs(&fast_t4), &qcfg);
    assert!(
        fast_q.completeness >= base_q.completeness - 2.0,
        "fast mode completeness {:.2}% vs baseline {:.2}%",
        fast_q.completeness,
        base_q.completeness
    );
    assert!(
        fast_q.misassembled_contigs <= base_q.misassembled_contigs,
        "fast mode misassemblies {} vs baseline {}",
        fast_q.misassembled_contigs,
        base_q.misassembled_contigs
    );
    let _ = writeln!(
        json,
        "    \"fast_quality\": {{ \"completeness\": {:.2}, \"baseline_completeness\": {:.2}, \
         \"misassembled\": {}, \"fast_contigs_match_baseline\": {} }},",
        fast_q.completeness,
        base_q.completeness,
        fast_q.misassembled_contigs,
        fast_contigs == base_contigs
    );

    let speed = |b: &elba_bench::MeasuredRun, n: &elba_bench::MeasuredRun| {
        b.profile.max_wall("Alignment") / n.profile.max_wall("Alignment").max(1e-9)
    };
    let _ = writeln!(
        json,
        "    \"alignment_speedup_t1\": {:.2},",
        speed(&base_t1, &def_t1)
    );
    let _ = writeln!(
        json,
        "    \"alignment_speedup_t4\": {:.2},",
        speed(&base_t4, &def_t4)
    );
    let _ = writeln!(
        json,
        "    \"fast_alignment_speedup_t4\": {:.2},",
        speed(&base_t4, &fast_t4)
    );
    let _ = writeln!(json, "    \"contigs_match_baseline\": {contigs_match}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    eprintln!(
        "Alignment speedup vs scalar+all: t1 {:.2}x, t4 {:.2}x, fast-t4 {:.2}x",
        speed(&base_t1, &def_t1),
        speed(&base_t4, &def_t4),
        speed(&base_t4, &fast_t4)
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(out, &json).expect("write BENCH_pr6.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
