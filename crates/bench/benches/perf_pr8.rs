//! PR 8 perf trajectory: writes `BENCH_pr8.json` at the repository root
//! probing the pluggable transport layer. (a) The celegans 2×2 probe
//! runs on both message planes — in-process mailboxes vs socket frames
//! (every cross-rank message serialized and pumped through a Unix
//! socketpair) — at 1 and 2 threads per rank, asserting contigs and
//! per-rank named-phase wire bytes are byte-identical across
//! transports. (b) A ping-pong/bandwidth harness calibrates measured
//! α/β for the socket backend and feeds them through
//! `CostConstants::from_machine`, recorded next to the fixed in-process
//! constants the auto-tuner uses. CI greps the JSON on every push.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr8`.

use std::fmt::Write as _;
use std::time::Instant;

use elba_bench::{
    dataset, pipeline_time, run_pipeline, run_pipeline_socket, MeasuredRun, PAPER_PHASES,
};
use elba_comm::{Backend, Runner};
use elba_comm::{Comm, CostConstants, MachineModel, RunProfile};
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;

/// Two-rank ping-pong + bulk-transfer microbenchmark; returns
/// `(alpha_secs, beta_bytes_per_sec)` measured at rank 0 (rank 1 echoes
/// and reports zeros). Works unchanged over either backend, which is
/// the point: the transport is the only variable.
fn pingpong(comm: &Comm) -> (f64, f64) {
    const SMALL_ITERS: usize = 512;
    const BIG_ITERS: usize = 8;
    const BIG_LEN: usize = 4 << 20;
    if comm.rank() == 0 {
        comm.send(1, 0, 1u64);
        let _ = comm.recv::<u64>(1, 0); // warm both directions
        let started = Instant::now();
        for i in 0..SMALL_ITERS {
            comm.send(1, 1, i as u64);
            let _ = comm.recv::<u64>(1, 1);
        }
        let rtt = started.elapsed().as_secs_f64() / SMALL_ITERS as f64;
        let alpha = rtt / 2.0;
        let big = vec![7u8; BIG_LEN];
        comm.send(1, 2, big.clone());
        let _ = comm.recv::<u64>(1, 2); // fault in buffers once
        let started = Instant::now();
        for _ in 0..BIG_ITERS {
            comm.send(1, 3, big.clone());
            let _ = comm.recv::<u64>(1, 3);
        }
        let per_round = started.elapsed().as_secs_f64() / BIG_ITERS as f64;
        // One round moves BIG_LEN payload out plus an 8-byte ack back;
        // charge the payload against the round minus two latencies.
        let beta = BIG_LEN as f64 / (per_round - 2.0 * alpha).max(1e-9);
        (alpha, beta)
    } else {
        let _ = comm.recv::<u64>(0, 0);
        comm.send(0, 0, 0u64);
        for _ in 0..SMALL_ITERS {
            let v = comm.recv::<u64>(0, 1);
            comm.send(0, 1, v);
        }
        let _ = comm.recv::<Vec<u8>>(0, 2);
        comm.send(0, 2, 0u64);
        for _ in 0..BIG_ITERS {
            let _ = comm.recv::<Vec<u8>>(0, 3);
            comm.send(0, 3, 0u64);
        }
        (0.0, 0.0)
    }
}

fn contig_strings(run: &MeasuredRun) -> Vec<String> {
    run.contigs.iter().map(|c| c.seq.to_string()).collect()
}

/// Per-rank bytes over named phases — the quantity `elba launch` prints
/// and the CI smoke leg diffs between transports.
fn named_wire_bytes(profile: &RunProfile) -> Vec<u64> {
    let names = profile.phase_names();
    profile
        .rank_profiles()
        .iter()
        .map(|rank| {
            names
                .iter()
                .filter_map(|name| rank.phase(name))
                .map(|p| p.bytes_sent())
                .sum()
        })
        .collect()
}

fn main() {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 8,");
    let _ = writeln!(
        json,
        "  \"what\": \"pluggable transport: in-process mailboxes vs serialized socket frames\","
    );

    // ---- celegans 2×2 probe across transports × threads ----
    let spec = DatasetSpec::celegans_like(0.1, 11);
    let (_genome, reads) = dataset(&spec);
    let base_cfg = PipelineConfig::for_dataset(&spec);
    let _ = writeln!(json, "  \"celegans_transport_probe\": {{");
    let _ = writeln!(
        json,
        "    \"shape\": {{ \"reads\": {}, \"ranks\": 4 }},",
        reads.len()
    );
    let mut all_match = true;
    for threads in [1usize, 2] {
        let cfg = base_cfg.clone().with_threads(threads);
        let inproc = run_pipeline(&reads, &cfg, 4);
        let socket = run_pipeline_socket(&reads, &cfg, 4);
        let contigs_match = contig_strings(&inproc) == contig_strings(&socket);
        let wire_match = named_wire_bytes(&inproc.profile) == named_wire_bytes(&socket.profile);
        all_match &= contigs_match && wire_match;
        for (name, run) in [("inprocess", &inproc), ("socket", &socket)] {
            let phase_cells: Vec<String> = PAPER_PHASES
                .iter()
                .map(|phase| {
                    format!(
                        "\"{phase}\": {{ \"wall_secs\": {:.4} }}",
                        run.profile.max_wall(phase)
                    )
                })
                .collect();
            let _ = writeln!(
                json,
                "    \"{name}_t{threads}\": {{ \"wall_secs\": {:.4}, \
                 \"pipeline_secs\": {:.4}, \"contigs\": {}, \"phases\": {{ {} }} }},",
                run.wall_secs,
                pipeline_time(&run.profile),
                run.contigs.len(),
                phase_cells.join(", ")
            );
            eprintln!(
                "{name}_t{threads}: wall {:.3} s, pipeline {:.3} s, {} contigs",
                run.wall_secs,
                pipeline_time(&run.profile),
                run.contigs.len()
            );
        }
        eprintln!("t{threads}: contigs match: {contigs_match}, wire bytes match: {wire_match}");
    }
    assert!(
        all_match,
        "transports disagree on contigs or profiled wire bytes"
    );
    let _ = writeln!(json, "    \"cross_transport_identical\": {all_match}");
    let _ = writeln!(json, "  }},");

    // ---- socket α/β calibration vs the fixed in-process constants ----
    let socket_measured = Runner::new(Backend::Socket)
        .ranks(2)
        .run(|comm| pingpong(&comm))[0];
    let inproc_measured = Runner::new(Backend::InProcess)
        .ranks(2)
        .run(|comm| pingpong(&comm))[0];
    let fixed = CostConstants::in_process();
    let socket_machine = MachineModel {
        name: "socket-local",
        alpha: socket_measured.0,
        beta: socket_measured.1,
        compute_speed: 1.0,
        ranks_per_node: 2,
    };
    let socket_constants = CostConstants::from_machine(&socket_machine, fixed.gamma);
    eprintln!(
        "socket:     alpha {:.2e} s, beta {:.2e} B/s",
        socket_constants.alpha, socket_constants.beta
    );
    eprintln!(
        "in-process: alpha {:.2e} s, beta {:.2e} B/s (measured; fixed constants {:.1e}/{:.1e})",
        inproc_measured.0, inproc_measured.1, fixed.alpha, fixed.beta
    );
    // Sanity bounds, deliberately loose — CI machines are noisy. The
    // point on record is the *ratio* between the planes, not absolutes.
    assert!(
        socket_constants.alpha > 0.0 && socket_constants.alpha < 1e-2,
        "socket alpha {:.3e} s outside (0, 10ms)",
        socket_constants.alpha
    );
    assert!(
        socket_constants.beta > 1e7,
        "socket beta {:.3e} B/s under 10 MB/s",
        socket_constants.beta
    );
    let _ = writeln!(json, "  \"socket_calibration\": {{");
    let _ = writeln!(json, "    \"alpha_secs\": {:.4e},", socket_constants.alpha);
    let _ = writeln!(
        json,
        "    \"beta_bytes_per_sec\": {:.4e},",
        socket_constants.beta
    );
    let _ = writeln!(
        json,
        "    \"inprocess_measured_alpha_secs\": {:.4e},",
        inproc_measured.0
    );
    let _ = writeln!(
        json,
        "    \"inprocess_measured_beta_bytes_per_sec\": {:.4e},",
        inproc_measured.1
    );
    let _ = writeln!(json, "    \"fixed_alpha_secs\": {:.4e},", fixed.alpha);
    let _ = writeln!(
        json,
        "    \"fixed_beta_bytes_per_sec\": {:.4e},",
        fixed.beta
    );
    let _ = writeln!(
        json,
        "    \"alpha_ratio_socket_over_inprocess\": {:.3},",
        socket_constants.alpha / inproc_measured.0.max(1e-12)
    );
    let _ = writeln!(
        json,
        "    \"beta_ratio_inprocess_over_socket\": {:.3}",
        inproc_measured.1 / socket_constants.beta.max(1.0)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    std::fs::write(out, &json).expect("write BENCH_pr8.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
