//! Figure 5 — runtime breakdown of the main pipeline stages (CountKmer,
//! DetectOverlap, Alignment, TrReduction, ExtractContig) for C. elegans
//! and O. sativa, plus the §6.1 contig-stage internal breakdown that
//! backs two claims:
//!
//! * "65–85 % of the runtime of contig generation ... is taken by the
//!   induced subgraph function, which mainly involves communication";
//! * "ExtractContig never requires more than 5 % of the computation".

use elba_bench::{banner, dataset, pipeline_time, run_pipeline, CONTIG_PHASES, PAPER_PHASES};
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;

fn breakdown_for(spec: &DatasetSpec, nranks: usize) {
    let (_genome, reads) = dataset(spec);
    let cfg = PipelineConfig::for_dataset(spec);
    let run = run_pipeline(&reads, &cfg, nranks);
    let total = pipeline_time(&run.profile);
    println!(
        "\n--- {} at P = {nranks} (pipeline {total:.3}s) ---",
        spec.name
    );
    println!("{:<16} {:>10} {:>8}", "phase", "max-wall s", "share");
    for phase in PAPER_PHASES {
        let t = run.profile.max_wall(phase);
        println!(
            "{:<16} {:>10.4} {:>7.1}%",
            phase,
            t,
            100.0 * t / total.max(1e-12)
        );
    }

    // §6.1 internal breakdown of ExtractContig.
    let contig_total: f64 = CONTIG_PHASES
        .iter()
        .map(|ph| run.profile.max_wall(ph))
        .sum();
    println!("  └─ ExtractContig internals (contig stage {contig_total:.4}s):");
    for phase in CONTIG_PHASES {
        let t = run.profile.max_wall(phase);
        let label = phase.strip_prefix("ExtractContig:").unwrap_or(phase);
        println!(
            "     {:<20} {:>10.4} {:>7.1}%",
            label,
            t,
            100.0 * t / contig_total.max(1e-12)
        );
    }
    let induced = run.profile.max_wall("ExtractContig:InducedSubgraph");
    println!(
        "     induced-subgraph share of contig stage: {:.1}% (paper: 65–85%)",
        100.0 * induced / contig_total.max(1e-12)
    );
    println!(
        "     ExtractContig share of pipeline: {:.1}% (paper: ≤ 5%)",
        100.0 * run.profile.max_wall("ExtractContig") / total.max(1e-12)
    );
}

fn main() {
    banner("Figure 5 — runtime breakdown of the main pipeline stages");
    for spec in [
        DatasetSpec::celegans_like(0.35, 51),
        DatasetSpec::osativa_like(0.30, 52),
    ] {
        for nranks in [4usize, 16] {
            breakdown_for(&spec, nranks);
        }
    }
    println!(
        "\npaper shape: Alignment and DetectOverlap dominate; TrReduction and\n\
         ExtractContig are small and latency-bound; within contig generation\n\
         the induced subgraph (communication) dominates."
    );
}
