//! Figure 4 — strong scaling of the full ELBA pipeline on C. elegans
//! (left) and O. sativa (right), Cori Haswell and Summit CPU.
//!
//! Two series per dataset:
//! 1. **measured** — real runs on in-process thread ranks P ∈ {1,4,9,16}
//!    (the host has few cores; beyond them the measured series validates
//!    correctness and communication structure, not speedup);
//! 2. **projected** — the α–β machine models applied to the recorded
//!    per-phase work/communication trace at the paper's node counts
//!    {18, 32, 50, 72, 128} × 32 ranks. The paper reports 75 % / 80 %
//!    parallel efficiency at 128 nodes on Cori (C. elegans / O. sativa)
//!    and 69 % / 64 % on Summit — the projected efficiencies should land
//!    in the same neighbourhood.

use elba_bench::{
    banner, dataset, measured_rank_counts, pipeline_time, project_series, run_pipeline,
    MeasuredRun, PAPER_NODE_COUNTS,
};
use elba_comm::MachineModel;
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;

fn efficiency(series: &[(usize, f64)]) -> Vec<f64> {
    let ranks: Vec<usize> = series.iter().map(|&(p, _)| p).collect();
    let times: Vec<f64> = series.iter().map(|&(_, t)| t).collect();
    MachineModel::parallel_efficiency(&ranks, &times)
}

fn scaling_for(spec: &DatasetSpec) {
    let (_genome, reads) = dataset(spec);
    let cfg = PipelineConfig::for_dataset(spec);
    println!("\n--- {} ({} reads) ---", spec.name, reads.len());
    println!("{:>8} {:>12} {:>12}", "ranks", "measured s", "pipeline s");
    let mut best: Option<MeasuredRun> = None;
    for nranks in measured_rank_counts() {
        let run = run_pipeline(&reads, &cfg, nranks);
        println!(
            "{:>8} {:>12.3} {:>12.3}",
            nranks,
            run.wall_secs,
            pipeline_time(&run.profile)
        );
        // keep the most parallel measured run as the projection base
        best = Some(run);
    }
    let base = best.expect("at least one measured run");
    for model in [MachineModel::cori_haswell(), MachineModel::summit_cpu()] {
        let series = project_series(&base, &model, &PAPER_NODE_COUNTS);
        let eff = efficiency(&series);
        println!("\n  projected on {} (paper Fig. 4 series):", model.name);
        println!(
            "  {:>7} {:>8} {:>14} {:>12}",
            "nodes", "ranks", "projected s", "efficiency"
        );
        for ((nodes, (ranks, secs)), e) in PAPER_NODE_COUNTS.iter().zip(&series).zip(&eff) {
            println!(
                "  {:>7} {:>8} {:>14.4} {:>11.0}%",
                nodes,
                ranks,
                secs,
                e * 100.0
            );
        }
    }
}

fn main() {
    banner("Figure 4 — ELBA strong scaling (C. elegans left, O. sativa right)");
    // Scaled datasets: large enough to exercise every phase, small enough
    // for a laptop-class bench run.
    scaling_for(&DatasetSpec::celegans_like(0.35, 41));
    scaling_for(&DatasetSpec::osativa_like(0.30, 42));
    println!(
        "\npaper reference points: parallel efficiency at 128 nodes — C. elegans\n\
         75% (Cori) / 69% (Summit); O. sativa 80% (Cori) / 64% (Summit);\n\
         O. sativa on Summit between 72 and 128 nodes: 83%."
    );
}
