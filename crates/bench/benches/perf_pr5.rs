//! PR 5 perf trajectory: writes `BENCH_pr5.json` at the repository root
//! with (a) threaded-vs-serial timings for the two hot local kernels the
//! intra-rank thread pool ports — the SpGEMM stage multiply and the
//! x-drop alignment batch — plus the threaded k-mer scan, and (b) the
//! celegans 2×2 probe at `--threads 1` and `--threads 4` (per-phase
//! wall + mem-hw, contigs asserted byte-identical). CI runs this on
//! every push next to `perf_pr4` and uploads both JSONs from one glob,
//! so the trajectory stays commit-over-commit comparable; on a ≥4-core
//! runner the `threads4_secs` numbers should beat `serial_secs` while
//! the output stays byte-identical.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr5`.

use std::fmt::Write as _;
use std::time::Instant;

use elba_align::{extend_seed_with, Scoring, XdropWorkspace};
use elba_bench::{dataset, run_pipeline, PAPER_PHASES};
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;
use elba_sparse::semiring::PlusTimes;
use elba_sparse::{Csr, SpGemmBatcher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median wall seconds of `iters` runs of `f`.
fn time_median(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// A reads×kmers-shaped random CSR (the overlap-detection multiply's
/// local block shape).
fn random_csr(seed: u64, nrows: usize, ncols: usize, per_row: usize) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(nrows * per_row);
    for r in 0..nrows {
        for _ in 0..per_row {
            triples.push((r as u32, rng.gen_range(0..ncols as u32), 1.0f64));
        }
    }
    Csr::from_triples(nrows, ncols, triples, |a, v| *a += v)
}

fn main() {
    let threads = 4usize;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 5,");
    let _ = writeln!(
        json,
        "  \"what\": \"intra-rank threaded kernels (elba-par): SpGEMM multiply, x-drop batch, k-mer scan\","
    );
    let _ = writeln!(json, "  \"threads\": {threads},");

    // ---- local SpGEMM stage multiply: serial vs threaded ----
    // C = A · Aᵀ over a reads×kmers block, the exact kernel inside every
    // SUMMA stage of overlap detection.
    let a = random_csr(7, 3_000, 8_000, 20);
    let at = {
        let triples: Vec<(u32, u32, f64)> = a.iter().map(|(r, c, &v)| (c, r, v)).collect();
        Csr::from_triples(a.ncols(), a.nrows(), triples, |x, v| *x += v)
    };
    let mut serial_nnz = 0usize;
    let spgemm_serial = time_median(5, || {
        let mut b = SpGemmBatcher::new(&a, &at, &PlusTimes).with_threads(1);
        serial_nnz = b
            .multiply_rows_par(0..a.nrows(), 0..at.ncols() as u32)
            .nnz();
    });
    let mut par_nnz = 0usize;
    let spgemm_par = time_median(5, || {
        let mut b = SpGemmBatcher::new(&a, &at, &PlusTimes).with_threads(threads);
        par_nnz = b
            .multiply_rows_par(0..a.nrows(), 0..at.ncols() as u32)
            .nnz();
    });
    assert_eq!(serial_nnz, par_nnz, "threading must not change the product");
    let _ = writeln!(json, "  \"local_spgemm_aat_3000x8000\": {{");
    let _ = writeln!(json, "    \"serial_secs\": {spgemm_serial:.5},");
    let _ = writeln!(json, "    \"threads4_secs\": {spgemm_par:.5},");
    let _ = writeln!(json, "    \"nnz\": {serial_nnz}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "local spgemm 3000x8000: serial {:.2} ms, {threads} threads {:.2} ms ({:.2}x)",
        spgemm_serial * 1e3,
        spgemm_par * 1e3,
        spgemm_serial / spgemm_par.max(1e-9)
    );

    // ---- x-drop alignment batch: serial vs workspace-per-worker ----
    let mut rng = StdRng::seed_from_u64(19);
    let genome: Vec<u8> = (0..40_000).map(|_| rng.gen_range(0..4u8)).collect();
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..256)
        .map(|_| {
            let start = rng.gen_range(0..genome.len() - 3_000);
            let mut u = genome[start..start + 2_000].to_vec();
            let v = genome[start + 800..start + 2_800].to_vec();
            // ~1% substitutions so x-drop works for its living.
            for _ in 0..20 {
                let at = rng.gen_range(0..u.len());
                u[at] = (u[at] + 1) % 4;
            }
            (u, v)
        })
        .collect();
    let sweep = |workers: usize| {
        let mut workspaces: Vec<XdropWorkspace> =
            (0..workers).map(|_| XdropWorkspace::default()).collect();
        let scores = elba_par::run_indexed_with(pairs.len(), &mut workspaces, |i, ws| {
            let (u, v) = &pairs[i];
            extend_seed_with(ws, u, v, 1_000, 200, 17, 25, Scoring::default()).score
        });
        scores.iter().map(|&s| s as i64).sum::<i64>()
    };
    let mut serial_total = 0i64;
    let xdrop_serial = time_median(5, || serial_total = sweep(1));
    let mut par_total = 0i64;
    let xdrop_par = time_median(5, || par_total = sweep(threads));
    assert_eq!(serial_total, par_total, "threading must not change scores");
    let _ = writeln!(json, "  \"xdrop_batch_256x2000bp\": {{");
    let _ = writeln!(json, "    \"serial_secs\": {xdrop_serial:.5},");
    let _ = writeln!(json, "    \"threads4_secs\": {xdrop_par:.5},");
    let _ = writeln!(json, "    \"score_sum\": {serial_total}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "xdrop batch 256 pairs: serial {:.2} ms, {threads} threads {:.2} ms ({:.2}x)",
        xdrop_serial * 1e3,
        xdrop_par * 1e3,
        xdrop_serial / xdrop_par.max(1e-9)
    );

    // ---- celegans 2×2 probe at threads = 1 and 4 ----
    let spec = DatasetSpec::celegans_like(0.1, 11);
    let (_, reads) = dataset(&spec);
    let mut contig_sets: Vec<Vec<String>> = Vec::new();
    let _ = writeln!(json, "  \"celegans_2x2_probe\": {{");
    let _ = writeln!(json, "    \"scale\": 0.1, \"nranks\": 4,");
    for (ti, t) in [1usize, threads].iter().enumerate() {
        let cfg = PipelineConfig::for_dataset(&spec).with_threads(*t);
        let run = run_pipeline(&reads, &cfg, 4);
        let _ = writeln!(json, "    \"threads{t}\": {{");
        let _ = writeln!(json, "      \"phases\": {{");
        for (i, phase) in PAPER_PHASES.iter().enumerate() {
            let comma = if i + 1 < PAPER_PHASES.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        \"{phase}\": {{ \"wall_secs\": {:.4}, \"par_secs\": {:.4}, \
                 \"mem_hw_bytes\": {} }}{comma}",
                run.profile.max_wall(phase),
                run.profile.max_par_secs(phase),
                run.profile.max_mem_hw(phase)
            );
        }
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"contigs\": {}", run.contigs.len());
        let comma = if ti == 0 { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
        eprintln!(
            "celegans 2x2 probe, threads={t}:\n{}",
            run.profile.render_table()
        );
        contig_sets.push(run.contigs.iter().map(|c| c.seq.to_string()).collect());
    }
    assert_eq!(
        contig_sets[0], contig_sets[1],
        "probe contigs must be byte-identical across thread counts"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    std::fs::write(out, &json).expect("write BENCH_pr5.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
