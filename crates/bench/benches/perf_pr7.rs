//! PR 7 perf trajectory: writes `BENCH_pr7.json` at the repository root
//! with (a) the SpGEMM schedule shoot-out on a merge-heavy AAᵀ shape at
//! p ∈ {1, 4, 9} — median walls for eager / pipelined / layered c ∈
//! {2, 3} / column-batched, with the α–β model's predictions alongside,
//! (b) the auto-tuner scored against measured ground truth (its pick
//! must be the measured-fastest schedule on every probed grid, or
//! within 10% of it), plus a Cori-Haswell projection from a measured-γ
//! calibration, and (c) the celegans 2×2 probe under `--spgemm auto`,
//! contigs asserted byte-identical to the pipelined default
//! (`contigs_match_baseline`). CI greps the JSON on every push.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr7`.

use std::fmt::Write as _;

use elba_bench::run_pipeline;
use elba_comm::{Backend, Runner};
use elba_comm::{CostConstants, MachineModel, ProcGrid, SchedulePlan, SpGemmEstimate};
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;
use elba_sparse::semiring::PlusTimes;
use elba_sparse::{algorithm_label, last_auto_spgemm_pick, DistMat, SpGemmOptions};

/// Best (minimum) of `iters` samples of `f` (seconds) — the noise-robust
/// estimator for comparing algorithmic work on a shared host, where the
/// interesting quantity is the least-interfered run.
fn best_of(iters: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..iters).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Merge-heavy AAᵀ fixture: `n` reads over `k` k-mer columns split into
/// three column blocks; read `r` draws all six of its k-mers from block
/// `r % 3`, so reads overlap only within their block and — on the 3×3
/// grid, where the blocks line up with SUMMA stages — each stage emits
/// a near-disjoint slab of output entries with ~1 flop each (no reuse).
/// That is the shape where the combine, not the multiply, dominates:
/// the pipelined running merge re-traverses the growing partial every
/// stage ((q−1)·2·nnz traffic) while the layered schedule's single
/// k-way merge touches Σ nnz(part) + nnz once.
fn fixture(n: usize, k: usize) -> Vec<(u64, u64, f64)> {
    assert_eq!(k % 3, 0, "three column blocks");
    let block = k / 3;
    (0..n)
        .flat_map(|r| {
            (0..6usize).map(move |i| {
                let col = (r % 3) * block + ((r / 3) * 7 + i * 5) % block;
                (r as u64, col as u64, 1.0 + ((r + i) % 3) as f64)
            })
        })
        .collect()
}

/// Run `A · Aᵀ` on `p` ranks under `opts`; returns the max-over-ranks
/// "spgemm" phase wall and the global nnz of the product.
fn spgemm_run(p: usize, n: usize, k: usize, opts: SpGemmOptions) -> (f64, u64) {
    let (nnzs, profile) = Runner::new(Backend::InProcess)
        .ranks(p)
        .run_profiled(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine = if grid.world().rank() == 0 {
                fixture(n, k)
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, n, k, mine, |_, _| unreachable!());
            let at = a.transpose(&grid);
            let _guard = grid.world().phase("spgemm");
            a.spgemm_with(&grid, &at, &PlusTimes, &opts).local().nnz() as u64
        });
    (profile.max_wall("spgemm"), nnzs.iter().sum())
}

fn main() {
    let (n, k) = (9000usize, 288usize);
    let triples = fixture(n, k);
    let nnz_a = triples.len() as u64;
    // Global Gustavson flops of A·Aᵀ: Σ over k-mer columns of |col|².
    let mut col_counts = vec![0u64; k];
    for &(_, c, _) in &triples {
        col_counts[c as usize] += 1;
    }
    let flops_global: u64 = col_counts.iter().map(|&c| c * c).sum();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(
        json,
        "  \"what\": \"layered (2.5D-style) SUMMA + alpha-beta model-driven auto-tuning\","
    );
    let _ = writeln!(json, "  \"schedule_shootout\": {{");
    let _ = writeln!(
        json,
        "    \"shape\": {{ \"reads\": {n}, \"kmer_cols\": {k}, \"nnz_a\": {nnz_a}, \
         \"flops\": {flops_global} }},"
    );

    let schedules: Vec<(&str, SpGemmOptions, SchedulePlan)> = vec![
        ("eager", SpGemmOptions::eager(), SchedulePlan::Eager),
        (
            "pipelined",
            SpGemmOptions::pipelined(),
            SchedulePlan::Pipelined,
        ),
        (
            "layered:2",
            SpGemmOptions::layered(2),
            SchedulePlan::Layered { c: 2 },
        ),
        (
            "layered:3",
            SpGemmOptions::layered(3),
            SchedulePlan::Layered { c: 3 },
        ),
        (
            // The auto resolver's ColumnBatched target: default batch
            // rows, no budget (one unbounded round).
            "column-batched",
            SpGemmOptions::column_batched(1024, None),
            SchedulePlan::ColumnBatched,
        ),
    ];

    let mut layered_wins: Vec<String> = Vec::new();
    let mut pick_walls: Vec<(usize, f64, f64)> = Vec::new(); // (p, pick, fastest)
    let mut calibrated_gamma = 0.0f64;
    for &p in &[1usize, 4, 9] {
        let q = (p as f64).sqrt() as usize;
        // Measured ground truth, best of 5 profiled runs per schedule.
        let mut walls: Vec<(&str, f64)> = Vec::new();
        let mut nnz_c = 0u64;
        for (label, opts, _) in &schedules {
            let wall = best_of(5, || {
                let (w, nnz) = spgemm_run(p, n, k, *opts);
                nnz_c = nnz;
                w
            });
            walls.push((label, wall));
        }
        // The model's view of the same shape (uniform fixture: local
        // maxima ≈ global / p), scored with the same fixed constants the
        // auto resolver uses.
        let est = SpGemmEstimate {
            grid_q: q,
            stage_bytes: 2.0 * (nnz_a as f64 / p as f64) * 12.0,
            struct_bytes: (nnz_a as f64 / p as f64) * 4.0,
            flops: flops_global as f64 / p as f64,
            result_entries: nnz_c as f64 / p as f64,
            entry_bytes: 12.0,
            mem_budget: None,
        };
        let constants = CostConstants::in_process();
        // γ from the serial pipelined run (q = 1: the model is exactly
        // γ·flops there), reused below for the machine projection.
        if p == 1 {
            let pipe_wall = walls
                .iter()
                .find(|(l, _)| *l == "pipelined")
                .expect("pipelined timed")
                .1;
            calibrated_gamma = pipe_wall / flops_global as f64;
        }

        // Auto, on the real code path: resolve via the collective
        // structure pass and report the pick.
        let (auto_wall, _) = spgemm_run(p, n, k, SpGemmOptions::auto());
        let pick = last_auto_spgemm_pick().expect("auto records its pick");
        let pick_label = algorithm_label(pick);
        let fastest = walls
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .expect("non-empty");
        let pick_wall = walls
            .iter()
            .find(|(l, _)| *l == pick_label)
            .map(|&(_, w)| w)
            .unwrap_or(auto_wall);
        pick_walls.push((p, pick_wall, fastest.1));

        let _ = writeln!(json, "    \"p{p}\": {{");
        let _ = writeln!(json, "      \"nnz_c\": {nnz_c},");
        for (label, _, plan) in &schedules {
            let wall = walls.iter().find(|(l, _)| l == label).expect("timed").1;
            let predicted = constants.predict_phase(*plan, &est);
            let _ = writeln!(
                json,
                "      \"{label}\": {{ \"wall_ms\": {:.3}, \"predicted_ms\": {:.3} }},",
                wall * 1e3,
                predicted * 1e3
            );
            eprintln!(
                "p{p} {label:>14}: measured {:7.3} ms, model {:7.3} ms",
                wall * 1e3,
                predicted * 1e3
            );
        }
        let _ = writeln!(json, "      \"auto_pick\": \"{pick_label}\",");
        let _ = writeln!(json, "      \"auto_pick_wall_ms\": {:.3},", pick_wall * 1e3);
        let _ = writeln!(json, "      \"fastest\": \"{}\",", fastest.0);
        let _ = writeln!(json, "      \"fastest_wall_ms\": {:.3},", fastest.1 * 1e3);
        let _ = writeln!(
            json,
            "      \"pick_within_10pct\": {}",
            pick_wall <= fastest.1 * 1.10
        );
        let _ = writeln!(json, "    }},");
        eprintln!(
            "p{p} auto picked {pick_label} ({:.3} ms) vs fastest {} ({:.3} ms)",
            pick_wall * 1e3,
            fastest.0,
            fastest.1 * 1e3
        );

        let pipe = walls
            .iter()
            .find(|(l, _)| *l == "pipelined")
            .expect("timed")
            .1;
        let lay_best = walls
            .iter()
            .filter(|(l, _)| l.starts_with("layered"))
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min);
        if lay_best < pipe {
            layered_wins.push(format!("\"p{p}\""));
        }
    }

    // The communication-avoiding claim, measured: the layered combine
    // must beat the pipelined running merge somewhere (the 3×3 grid with
    // the block-aligned fixture is the engineered win).
    assert!(
        !layered_wins.is_empty(),
        "layered never beat pipelined on any probed grid"
    );
    // The auto-tuner's score: its pick is the measured-fastest schedule
    // (or within 10% of it) on every probed grid.
    for (p, pick_wall, fastest_wall) in &pick_walls {
        assert!(
            *pick_wall <= fastest_wall * 1.10,
            "p{p}: auto's pick measured {:.3} ms, >10% behind the fastest {:.3} ms",
            pick_wall * 1e3,
            fastest_wall * 1e3
        );
    }
    let _ = writeln!(
        json,
        "    \"layered_beats_pipelined_on\": [{}]",
        layered_wins.join(", ")
    );
    let _ = writeln!(json, "  }},");

    // Project the p = 9 contest onto Cori Haswell with the measured γ:
    // same formulas, real-network α/β — the regime the paper runs in.
    let cori = CostConstants::from_machine(&MachineModel::cori_haswell(), calibrated_gamma);
    let est9 = SpGemmEstimate {
        grid_q: 3,
        stage_bytes: 2.0 * (nnz_a as f64 / 9.0) * 12.0,
        struct_bytes: (nnz_a as f64 / 9.0) * 4.0,
        flops: flops_global as f64 / 9.0,
        result_entries: flops_global as f64 / 9.0, // ~1 flop per entry here
        entry_bytes: 12.0,
        mem_budget: None,
    };
    let _ = writeln!(json, "  \"projected_cori_p9_ms\": {{");
    let _ = writeln!(json, "    \"gamma_calibrated\": {calibrated_gamma:.3e},");
    for (label, plan) in [
        ("pipelined", SchedulePlan::Pipelined),
        ("layered:3", SchedulePlan::Layered { c: 3 }),
        ("eager", SchedulePlan::Eager),
    ] {
        let comma = if label == "eager" { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{label}\": {:.3}{comma}",
            cori.predict_phase(plan, &est9) * 1e3
        );
    }
    let _ = writeln!(json, "  }},");

    // ---- celegans 2×2 probe: `--spgemm auto` vs the pipelined default ----
    let spec = DatasetSpec::celegans_like(0.1, 11);
    let (_genome, reads) = elba_bench::dataset(&spec);
    let base_cfg = PipelineConfig::for_dataset(&spec);
    let default_run = run_pipeline(&reads, &base_cfg, 4);
    let auto_run = run_pipeline(
        &reads,
        &base_cfg.clone().with_spgemm(SpGemmOptions::auto()),
        4,
    );
    let resolved = last_auto_spgemm_pick().map(algorithm_label);
    let to_strings = |run: &elba_bench::MeasuredRun| {
        run.contigs
            .iter()
            .map(|c| c.seq.to_string())
            .collect::<Vec<_>>()
    };
    let contigs_match = to_strings(&auto_run) == to_strings(&default_run);
    assert!(
        contigs_match,
        "auto-scheduled contigs must be byte-identical to the pipelined default"
    );
    let _ = writeln!(json, "  \"celegans_2x2_auto_probe\": {{");
    let _ = writeln!(
        json,
        "    \"resolved\": \"{}\",",
        resolved.as_deref().unwrap_or("none")
    );
    for phase in ["DetectOverlap", "TrReduction"] {
        let _ = writeln!(
            json,
            "    \"{phase}\": {{ \"default_wall_secs\": {:.4}, \"auto_wall_secs\": {:.4} }},",
            default_run.profile.max_wall(phase),
            auto_run.profile.max_wall(phase)
        );
    }
    let _ = writeln!(json, "    \"contigs\": {},", auto_run.contigs.len());
    let _ = writeln!(json, "    \"contigs_match_baseline\": {contigs_match}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    eprintln!(
        "celegans 2x2 auto probe: resolved to {}, contigs match: {contigs_match}",
        resolved.as_deref().unwrap_or("none")
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    std::fs::write(out, &json).expect("write BENCH_pr7.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
