//! Ablation — contig load balancing (§4.3).
//!
//! The paper argues for sorted LPT over unsorted greedy (approximation
//! (4P−1)/(3P) vs 2−1/P) and accepts the O(n log n) sort because the
//! number of contigs n is small. This harness measures makespan and
//! imbalance for LPT / unsorted greedy / round-robin on (a) the contig
//! size distribution of a real pipeline run and (b) synthetic skewed
//! distributions, plus the partitioner's runtime to back the "not a
//! bottleneck" claim.

use std::time::Instant;

use elba_bench::{banner, dataset, row};
use elba_core::{partition, PartitionStrategy, Partitioning};
use elba_seq::DatasetSpec;

fn compare(sizes: &[u64], nparts: usize, label: &str) {
    println!(
        "\n--- {label}: {} contigs over P = {nparts} ---",
        sizes.len()
    );
    let widths = [16, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "strategy".into(),
                "makespan".into(),
                "imbalance".into(),
                "lower bnd".into(),
                "time µs".into(),
            ],
            &widths
        )
    );
    let lb = Partitioning::lower_bound(sizes, nparts);
    for (name, strategy) in [
        ("LPT (paper)", PartitionStrategy::Lpt),
        ("greedy", PartitionStrategy::GreedyUnsorted),
        ("round-robin", PartitionStrategy::RoundRobin),
    ] {
        let started = Instant::now();
        let p = partition(sizes, nparts, strategy);
        let micros = started.elapsed().as_micros();
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{}", p.makespan()),
                    format!("{:.3}", p.imbalance()),
                    format!("{lb}"),
                    format!("{micros}"),
                ],
                &widths
            )
        );
    }
}

fn main() {
    banner("Ablation — multiway number partitioning strategies (§4.3)");

    // (a) contig sizes from a real pipeline run
    let spec = DatasetSpec::celegans_like(0.35, 91);
    let (_genome, reads) = dataset(&spec);
    let cfg = elba_core::PipelineConfig::for_dataset(&spec);
    let run = elba_bench::run_pipeline(&reads, &cfg, 4);
    let contig_sizes: Vec<u64> = run
        .contigs
        .iter()
        .map(|c| c.read_ids.len() as u64)
        .collect();
    if !contig_sizes.is_empty() {
        for nparts in [4usize, 16, 64] {
            compare(&contig_sizes, nparts, &format!("measured ({})", spec.name));
        }
    }

    // (b) synthetic skew: power-law-ish contig sizes, the adversarial case
    let mut skewed: Vec<u64> = (1..=400u64).map(|i| 1 + 10_000 / i).collect();
    skewed.sort_unstable_by(|x, y| y.cmp(x));
    compare(&skewed, 64, "synthetic power-law");

    // (c) the paper's n < P regime (n = 2 contigs on many processors)
    compare(&[9_000, 8_500], 16, "n < P (idle processors)");

    println!(
        "\npaper claims backed here: LPT ≥ greedy ≥ round-robin on balance;\n\
         partitioner runtime is microseconds (runs on one rank, n ≪ reads)."
    );
}
