//! PR 10 perf trajectory: writes `BENCH_pr10.json` at the repository
//! root probing the multi-tenant serve layer. A fixed batch of small
//! mixed-budget simulated-genome jobs is pushed through `Server` at
//! pool sizes {1, 2, 4} single-rank groups under a 1 GiB admission cap,
//! recording throughput (jobs/min) and submit→finish latency (p50/p99)
//! per pool size, plus the two invariants CI greps for: every job
//! completed and peak admitted budget stayed within the cap.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr10`.

use std::fmt::Write as _;
use std::time::Instant;

use elba_comm::Backend;
use elba_core::{JobResult, JobSpec, ServeConfig, Server};
use elba_mem::MemBudget;

const MIB: u64 = 1 << 20;
const JOBS_PER_POOL: usize = 36;
const CAP: u64 = 1024 * MIB;

/// The mixed-budget job batch: small claims that pack, large claims
/// that serialize, and unbudgeted jobs charged as the whole cap.
fn job_batch() -> Vec<JobSpec> {
    let claims = [64 * MIB, 256 * MIB, 0, 600 * MIB, 128 * MIB, 32 * MIB];
    (0..JOBS_PER_POOL)
        .map(|i| {
            JobSpec::sim(&format!("bench-{i}"), "celegans", 0.02, 7000 + i as u64)
                .budget(claims[i % claims.len()])
        })
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct PoolRun {
    groups: usize,
    wall_secs: f64,
    jobs_per_min: f64,
    p50_secs: f64,
    p99_secs: f64,
    all_completed: bool,
    peak_admitted: u64,
}

fn run_pool(groups: usize) -> PoolRun {
    let server = Server::start(ServeConfig {
        groups,
        group_ranks: 1,
        backend: Backend::InProcess,
        host_cap: MemBudget::bytes(CAP),
        threads: 1,
    });
    let started = Instant::now();
    let ids: Vec<_> = job_batch()
        .into_iter()
        .map(|spec| server.submit(spec).expect("bench jobs are valid"))
        .collect();
    for &id in &ids {
        server.wait(id);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let peak_admitted = server.peak_admitted_bytes();
    let results = server.drain();

    let mut latencies: Vec<f64> = results.iter().map(JobResult::latency_secs).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    PoolRun {
        groups,
        wall_secs,
        jobs_per_min: results.len() as f64 / (wall_secs / 60.0),
        p50_secs: percentile(&latencies, 0.50),
        p99_secs: percentile(&latencies, 0.99),
        all_completed: results.iter().all(JobResult::completed),
        peak_admitted,
    }
}

fn main() {
    let runs: Vec<PoolRun> = [1usize, 2, 4].iter().map(|&g| run_pool(g)).collect();

    let mut all_completed = true;
    let mut within_cap = true;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(
        json,
        "  \"what\": \"multi-tenant serve: throughput/latency vs pool size under a 1 GiB admission cap\","
    );
    let _ = writeln!(
        json,
        "  \"shape\": {{ \"jobs_per_pool\": {JOBS_PER_POOL}, \"group_ranks\": 1, \"host_cap_bytes\": {CAP} }},"
    );
    for run in &runs {
        all_completed &= run.all_completed;
        within_cap &= run.peak_admitted <= CAP;
        let _ = writeln!(
            json,
            "  \"pool_{}\": {{ \"wall_secs\": {:.3}, \"jobs_per_min\": {:.1}, \
             \"latency_p50_secs\": {:.3}, \"latency_p99_secs\": {:.3}, \
             \"peak_admitted_bytes\": {} }},",
            run.groups,
            run.wall_secs,
            run.jobs_per_min,
            run.p50_secs,
            run.p99_secs,
            run.peak_admitted
        );
        eprintln!(
            "pool={}: {:.1} jobs/min, p50 {:.3} s, p99 {:.3} s, wall {:.2} s, peak {} MiB",
            run.groups,
            run.jobs_per_min,
            run.p50_secs,
            run.p99_secs,
            run.wall_secs,
            run.peak_admitted / MIB
        );
    }
    assert!(all_completed, "a bench job failed");
    assert!(within_cap, "admission exceeded the host cap");
    // The pool should actually scale: 4 groups must beat 1 group on
    // throughput (loose 1.2× bound — the 600 MiB + whole-cap jobs
    // serialize part of the schedule by design).
    let speedup = runs[2].jobs_per_min / runs[0].jobs_per_min.max(1e-9);
    eprintln!("pool-4 over pool-1 throughput: {speedup:.2}x");
    let _ = writeln!(json, "  \"pool4_over_pool1_throughput\": {speedup:.3},");
    let _ = writeln!(json, "  \"all_jobs_completed\": {all_completed},");
    let _ = writeln!(json, "  \"admitted_within_cap\": {within_cap}");
    let _ = writeln!(json, "}}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    std::fs::write(out, &json).expect("write BENCH_pr10.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
