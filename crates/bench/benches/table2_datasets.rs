//! Table 2 — datasets.
//!
//! Prints the same columns as the paper's Table 2 (label, depth, reads,
//! mean read length, input size, genome size, error rate) for the three
//! scaled synthetic stand-ins, plus the substitution factors.

use elba_bench::{banner, dataset, row};
use elba_seq::DatasetSpec;

fn main() {
    banner("Table 2 — datasets (scaled synthetic stand-ins)");
    let specs = [
        ("O. sativa (500 Mb)", DatasetSpec::osativa_like(1.0, 11)),
        ("C. elegans (100 Mb)", DatasetSpec::celegans_like(1.0, 12)),
        ("H. sapiens (3.2 Gb)", DatasetSpec::hsapiens_like(0.6, 13)),
    ];
    let widths = [22, 22, 7, 9, 10, 12, 10, 9];
    println!(
        "{}",
        row(
            &[
                "paper label".into(),
                "this repro".into(),
                "depth".into(),
                "reads".into(),
                "mean len".into(),
                "input (kb)".into(),
                "size (kb)".into(),
                "error %".into(),
            ],
            &widths
        )
    );
    for (paper_label, spec) in specs {
        let (genome, reads) = dataset(&spec);
        let total_bases: usize = reads.iter().map(|r| r.len()).sum();
        let mean_len = total_bases / reads.len().max(1);
        println!(
            "{}",
            row(
                &[
                    paper_label.into(),
                    spec.name.into(),
                    format!("{:.0}", spec.reads.depth),
                    format!("{}", reads.len()),
                    format!("{mean_len}"),
                    format!("{:.1}", total_bases as f64 / 1e3),
                    format!("{:.1}", genome.len() as f64 / 1e3),
                    format!("{:.1}", spec.reads.error_rate * 100.0),
                ],
                &widths
            )
        );
    }
    println!(
        "\npaper rows for comparison: O. sativa 30x/638.2K reads/19,695 bp/0.5%;\n\
         C. elegans 40x/420.7K/14,550/0.5%; H. sapiens 10x/4,421.6K/7,401/15%.\n\
         Depth and error rate are preserved exactly; genome size is scaled\n\
         ~3000x down so every experiment runs on one small host."
    );
}
