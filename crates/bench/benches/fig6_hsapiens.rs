//! Figure 6 — H. sapiens: strong scaling (left) and runtime breakdown
//! (right) on Summit. The high-error dataset (15 %, k = 17, x = 7)
//! stresses alignment; the paper reports ~90 % parallel efficiency
//! between 200 and 392 nodes and an alignment-dominated breakdown.

use elba_bench::{
    banner, dataset, measured_rank_counts, pipeline_time, project_series, run_pipeline,
    PAPER_NODE_COUNTS_HSAPIENS, PAPER_PHASES,
};
use elba_comm::MachineModel;
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;

fn main() {
    banner("Figure 6 — H. sapiens strong scaling + breakdown (Summit)");
    let spec = DatasetSpec::hsapiens_like(0.35, 66);
    let (_genome, reads) = dataset(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    println!(
        "{}: {} reads at {:.0}% error, k={}, x-drop={}",
        spec.name,
        reads.len(),
        spec.reads.error_rate * 100.0,
        spec.k,
        spec.xdrop
    );

    println!("\nmeasured (in-process ranks):");
    println!("{:>8} {:>12}", "ranks", "pipeline s");
    let mut last = None;
    for nranks in measured_rank_counts() {
        let run = run_pipeline(&reads, &cfg, nranks);
        println!("{:>8} {:>12.3}", nranks, pipeline_time(&run.profile));
        last = Some(run);
    }
    let base = last.expect("measured run");

    let model = MachineModel::summit_cpu();
    let series = project_series(&base, &model, &PAPER_NODE_COUNTS_HSAPIENS);
    let ranks: Vec<usize> = series.iter().map(|&(p, _)| p).collect();
    let times: Vec<f64> = series.iter().map(|&(_, t)| t).collect();
    let eff = MachineModel::parallel_efficiency(&ranks, &times);
    println!("\nprojected on {} at the paper's node counts:", model.name);
    println!(
        "{:>7} {:>8} {:>14} {:>12}",
        "nodes", "ranks", "projected s", "efficiency"
    );
    for ((nodes, (p, secs)), e) in PAPER_NODE_COUNTS_HSAPIENS.iter().zip(&series).zip(&eff) {
        println!("{:>7} {:>8} {:>14.4} {:>11.0}%", nodes, p, secs, e * 100.0);
    }
    println!("(paper: ~90% efficiency from 200 to 392 nodes)");

    println!("\nbreakdown at P = {} (right panel):", base.nranks);
    let total = pipeline_time(&base.profile);
    println!("{:<16} {:>10} {:>8}", "phase", "max-wall s", "share");
    for phase in PAPER_PHASES {
        let t = base.profile.max_wall(phase);
        println!(
            "{:<16} {:>10.4} {:>7.1}%",
            phase,
            t,
            100.0 * t / total.max(1e-12)
        );
    }
    println!(
        "\npaper shape: Alignment dominates the H. sapiens breakdown (high error\n\
         and no AVX2 on Summit); CountKmer scales sublinearly; TrReduction and\n\
         ExtractContig stay small."
    );
}
