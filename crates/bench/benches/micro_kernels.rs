//! Criterion micro-benchmarks of the computational kernels underneath
//! every figure: local SpGEMM (overlap detection's inner loop), x-drop
//! extension (the Alignment phase), k-mer scanning (CountKmer), the
//! DCSC→CSC expansion (§4.4), the connected-components sweep, the
//! distributed SUMMA schedules (eager vs. pipelined vs. blocked — all
//! running zero-copy `Arc`-shared stage broadcasts), the owned-vs-shared
//! broadcast comparison itself, and the k-mer exchange schedules (eager
//! vs. streaming `ialltoallv`).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use elba_align::{xdrop_extend, Scoring};
use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_core::UnionFind;
use elba_seq::kmer::canonical_kmers;
use elba_seq::Seq;
use elba_sparse::semiring::PlusTimes;
use elba_sparse::spgemm::spgemm;
use elba_sparse::{Csr, Dcsc, DistMat, SpGemmOptions};

fn random_csr(rng: &mut StdRng, n: usize, nnz_per_row: usize) -> Csr<f64> {
    let mut triples = Vec::with_capacity(n * nnz_per_row);
    for r in 0..n {
        for _ in 0..nnz_per_row {
            triples.push((r as u32, rng.gen_range(0..n as u32), 1.0));
        }
    }
    Csr::from_triples(n, n, triples, |acc, v| *acc += v)
}

fn random_seq(rng: &mut StdRng, len: usize) -> Seq {
    Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
}

fn bench_spgemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_csr(&mut rng, 2_000, 8);
    let b = random_csr(&mut rng, 2_000, 8);
    c.bench_function("spgemm_2000x2000_d8", |bencher| {
        bencher.iter(|| spgemm(black_box(&a), black_box(&b), &PlusTimes))
    });
}

fn bench_xdrop(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let genome = random_seq(&mut rng, 30_000);
    // two overlapping reads with 1% substitutions
    let mut a = genome.codes()[0..12_000].to_vec();
    let b = genome.codes()[4_000..16_000].to_vec();
    for _ in 0..120 {
        let at = rng.gen_range(0..a.len());
        a[at] = (a[at] + 1) % 4;
    }
    c.bench_function("xdrop_8kb_overlap_1pct_err", |bencher| {
        bencher.iter(|| {
            xdrop_extend(
                black_box(&a[4_000..]),
                black_box(&b),
                30,
                Scoring::default(),
            )
        })
    });
    let noisy_b: Vec<u8> = b
        .iter()
        .map(|&x| {
            if rng.gen_bool(0.15) {
                rng.gen_range(0..4u8)
            } else {
                x
            }
        })
        .collect();
    c.bench_function("xdrop_early_stop_15pct_err", |bencher| {
        bencher.iter(|| {
            xdrop_extend(
                black_box(&a[4_000..]),
                black_box(&noisy_b),
                7,
                Scoring::default(),
            )
        })
    });
}

fn bench_kmer_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let read = random_seq(&mut rng, 20_000);
    c.bench_function("kmer_scan_20kb_k31", |bencher| {
        bencher.iter(|| canonical_kmers(black_box(&read), 31).len())
    });
    c.bench_function("kmer_scan_20kb_k17", |bencher| {
        bencher.iter(|| canonical_kmers(black_box(&read), 17).len())
    });
}

fn bench_dcsc_to_csc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // hypersparse: 100k columns, 5k entries (an induced-subgraph block)
    let triples: Vec<(u32, u32, u64)> = (0..5_000)
        .map(|_| {
            (
                rng.gen_range(0..100_000u32),
                rng.gen_range(0..100_000u32),
                1u64,
            )
        })
        .collect();
    c.bench_function("dcsc_to_csc_hypersparse", |bencher| {
        bencher.iter_batched(
            || Dcsc::from_triples(100_000, 100_000, triples.clone(), |_, _| {}),
            |dcsc| dcsc.to_csc(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_union_find(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 50_000;
    let edges: Vec<(usize, usize)> = (0..n)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    c.bench_function("union_find_50k", |bencher| {
        bencher.iter(|| {
            let mut uf = UnionFind::new(n);
            for &(u, v) in &edges {
                uf.union(u, v);
            }
            uf.labels().len()
        })
    });
}

/// The distributed `C = AAᵀ` multiply under each SUMMA schedule on a
/// 2×2 in-process grid — the eager-vs-pipelined-vs-blocked comparison
/// behind the pipelined-SpGEMM refactor. The pipelined schedule should
/// shave the broadcast serialization; blocked should match eager's time
/// shape while never materializing the global triple buffer.
fn bench_summa_schedules(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let (n_reads, n_kmers, per_row) = (600usize, 4_000usize, 12usize);
    let mut triples = Vec::with_capacity(n_reads * per_row);
    for r in 0..n_reads {
        for _ in 0..per_row {
            triples.push((r as u64, rng.gen_range(0..n_kmers as u64), 1.0f64));
        }
    }
    let triples = Arc::new(triples);
    for (label, opts) in [
        ("eager", SpGemmOptions::eager()),
        ("pipelined", SpGemmOptions::pipelined()),
        ("blocked_64", SpGemmOptions::blocked(64)),
    ] {
        let triples = Arc::clone(&triples);
        c.bench_function(&format!("summa_aat_600x4000_p4_{label}"), |bencher| {
            bencher.iter(|| {
                let triples = Arc::clone(&triples);
                Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let mine = if grid.world().rank() == 0 {
                        triples.as_ref().clone()
                    } else {
                        Vec::new()
                    };
                    let a =
                        DistMat::from_triples(&grid, n_reads, n_kmers, mine, |acc, _| *acc += 1.0);
                    let at = a.transpose(&grid);
                    let c = a.spgemm_with(&grid, &at, &PlusTimes, &opts);
                    black_box(c.local().nnz())
                })
            })
        });
    }
}

/// Single-round vs column-batched SUMMA on the overlap-detection shape
/// (`C = AAᵀ` with a fused prune) at two memory budgets. Before timing,
/// each configuration runs once profiled and reports its tracked
/// per-rank memory high-water — the time column shows what the
/// multi-round re-broadcasts cost, the mem-hw line what they buy.
fn bench_summa_column_batched(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let (n_reads, n_kmers, per_row) = (400usize, 2_000usize, 16usize);
    let mut triples = Vec::with_capacity(n_reads * per_row);
    for r in 0..n_reads {
        for _ in 0..per_row {
            triples.push((r as u64, rng.gen_range(0..n_kmers as u64), 1.0f64));
        }
    }
    let triples = Arc::new(triples);
    let run = |triples: Arc<Vec<(u64, u64, f64)>>, budget: Option<u64>| {
        Runner::new(Backend::InProcess)
            .ranks(4)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                let mine = if grid.world().rank() == 0 {
                    triples.as_ref().clone()
                } else {
                    Vec::new()
                };
                let a = DistMat::from_triples(&grid, n_reads, n_kmers, mine, |acc, _| *acc += 1.0);
                let at = a.transpose(&grid);
                let opts = SpGemmOptions::column_batched(64, budget);
                let c = {
                    let _g = grid.world().phase("spgemm");
                    a.spgemm_pruned_with(&grid, &at, &PlusTimes, &opts, |r, col, v| {
                        r < col && *v >= 2.0
                    })
                };
                black_box(c.local().nnz())
            })
    };
    for (label, budget) in [
        ("single_round", None),
        ("budget_512k", Some(512u64 << 10)),
        ("budget_128k", Some(128u64 << 10)),
    ] {
        let (_, profile) = run(Arc::clone(&triples), budget);
        eprintln!(
            "summa_colbatch_aat_400x2000_p4_{label}: tracked mem high-water {} B/rank",
            profile.max_mem_hw("spgemm")
        );
        let triples = Arc::clone(&triples);
        c.bench_function(
            &format!("summa_colbatch_aat_400x2000_p4_{label}"),
            |bencher| bencher.iter(|| run(Arc::clone(&triples), budget)),
        );
    }
}

/// The broadcast fan-out itself, owned vs `Arc`-shared, on 2×2 and 3×3
/// grids with a SUMMA-stage-sized CSR panel: the owned path deep-copies
/// the panel once per non-root rank at the root's arrival-driven post,
/// the shared path bumps a refcount per rank. Modeled wire bytes are
/// identical — this measures what the zero-copy transport saves, which
/// is exactly what the pipelined/column-batched SUMMA stage path now
/// never pays.
fn bench_bcast_shared_vs_owned(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let panel = Arc::new(random_csr(&mut rng, 1_500, 8));
    for p in [4usize, 9] {
        let shared = Arc::clone(&panel);
        c.bench_function(&format!("ibcast_owned_csr1500_p{p}"), |bencher| {
            let panel = Arc::clone(&shared);
            bencher.iter(move || {
                let panel = Arc::clone(&panel);
                Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let v = comm
                        .ibcast(0, (comm.rank() == 0).then(|| (*panel).clone()))
                        .wait();
                    black_box(v.nnz())
                })
            })
        });
        let shared = Arc::clone(&panel);
        c.bench_function(&format!("ibcast_shared_csr1500_p{p}"), |bencher| {
            let panel = Arc::clone(&shared);
            bencher.iter(move || {
                let panel = Arc::clone(&panel);
                Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let v = comm
                        .ibcast_shared(0, (comm.rank() == 0).then(|| Arc::clone(&panel)))
                        .wait();
                    black_box(v.nnz())
                })
            })
        });
    }
}

/// The CountKmer + GenerateA exchanges on a 2×2 grid under each schedule:
/// the eager flat `alltoallv` against the streaming chunked `ialltoallv`
/// at a small and a large batch. Streaming aggregates counts per batch
/// window (the eager path pre-aggregates the whole local store) in
/// exchange for buffering bounded by `batch_kmers` instead of the
/// dataset; smaller batches mean more chunks and less aggregation.
fn bench_kmer_exchange(c: &mut Criterion) {
    use elba_core::{KmerExchangeConfig, PipelineConfig};
    use elba_seq::sim::DatasetSpec;
    use elba_seq::{build_a_triples, count_kmers, KmerExchange};

    let spec = DatasetSpec::celegans_like(0.04, 11);
    let (_, sim_reads) = spec.generate();
    let reads: Arc<Vec<elba_seq::Seq>> = Arc::new(sim_reads.into_iter().map(|r| r.seq).collect());
    let base = PipelineConfig::for_dataset(&spec);
    for (label, exchange, batch) in [
        ("eager", KmerExchange::Eager, 0usize),
        ("streaming_4k", KmerExchange::Streaming, 4 << 10),
        ("streaming_64k", KmerExchange::Streaming, 64 << 10),
    ] {
        let reads = Arc::clone(&reads);
        let cfg = if batch == 0 {
            base.clone().kmer_exchange(KmerExchangeConfig {
                exchange,
                batch_kmers: base.kmer.batch_kmers,
            })
        } else {
            base.clone().kmer_exchange(KmerExchangeConfig {
                exchange,
                batch_kmers: batch,
            })
        };
        c.bench_function(&format!("kmer_exchange_p4_{label}"), |bencher| {
            bencher.iter(|| {
                let reads = Arc::clone(&reads);
                let kcfg = cfg.kmer.clone();
                Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let store = elba_seq::ReadStore::from_replicated(&grid, &reads);
                    let table = count_kmers(&grid, &store, &kcfg);
                    let triples = build_a_triples(&grid, &store, &table, &kcfg);
                    black_box(table.n_global as usize + triples.len())
                })
            })
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_spgemm, bench_xdrop, bench_kmer_scan, bench_dcsc_to_csc, bench_union_find, bench_summa_schedules, bench_summa_column_batched, bench_bcast_shared_vs_owned, bench_kmer_exchange
);
criterion_main!(kernels);
