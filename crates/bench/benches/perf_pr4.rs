//! PR 4 perf trajectory: writes `BENCH_pr4.json` at the repository root
//! with (a) per-phase wall time and memory high-water for the celegans
//! 2×2 probe, (b) wall times for the SUMMA schedules on 2×2 and 3×3
//! grids (all running the zero-copy `Arc`-shared stage broadcasts), and
//! (c) the owned-vs-shared broadcast micro-comparison that isolates
//! what the shared path saves. CI runs this on every push and greps the
//! file, so the numbers form a commit-over-commit trajectory.
//!
//! Run with `cargo bench -p elba-bench --bench perf_pr4`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use elba_bench::{dataset, run_pipeline, PAPER_PHASES};
use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_core::PipelineConfig;
use elba_seq::DatasetSpec;
use elba_sparse::semiring::PlusTimes;
use elba_sparse::{Csr, DistMat, SpGemmOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Median wall seconds of `iters` runs of `f`.
fn time_median(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn summa_triples(
    seed: u64,
    n_reads: usize,
    n_kmers: usize,
    per_row: usize,
) -> Vec<(u64, u64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(n_reads * per_row);
    for r in 0..n_reads {
        for _ in 0..per_row {
            triples.push((r as u64, rng.gen_range(0..n_kmers as u64), 1.0f64));
        }
    }
    triples
}

/// One timed `C = AAᵀ` under `opts` on a `q×q` grid.
fn summa_secs(p: usize, opts: SpGemmOptions, triples: &Arc<Vec<(u64, u64, f64)>>) -> f64 {
    let (n_reads, n_kmers) = (600usize, 4_000usize);
    time_median(5, || {
        let triples = Arc::clone(triples);
        Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let mine = if grid.world().rank() == 0 {
                triples.as_ref().clone()
            } else {
                Vec::new()
            };
            let a = DistMat::from_triples(&grid, n_reads, n_kmers, mine, |acc, _| *acc += 1.0);
            let at = a.transpose(&grid);
            let c = a.spgemm_with(&grid, &at, &PlusTimes, &opts);
            std::hint::black_box(c.local().nnz())
        });
    })
}

/// Owned vs shared broadcast of a stage-sized CSR panel.
fn bcast_secs(p: usize, shared: bool, panel: &Arc<Csr<f64>>) -> f64 {
    time_median(7, || {
        let panel = Arc::clone(panel);
        Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let nnz = if shared {
                comm.ibcast_shared(0, (comm.rank() == 0).then(|| Arc::clone(&panel)))
                    .wait()
                    .nnz()
            } else {
                comm.ibcast(0, (comm.rank() == 0).then(|| (*panel).clone()))
                    .wait()
                    .nnz()
            };
            std::hint::black_box(nnz)
        });
    })
}

fn main() {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(
        json,
        "  \"what\": \"zero-copy Arc-shared broadcasts + arrival-driven tree delivery\","
    );

    // ---- celegans 2×2 probe: per-phase wall + mem-hw ----
    let spec = DatasetSpec::celegans_like(0.1, 11);
    let (_, reads) = dataset(&spec);
    let cfg = PipelineConfig::for_dataset(&spec);
    let run = run_pipeline(&reads, &cfg, 4);
    let _ = writeln!(json, "  \"celegans_2x2_probe\": {{");
    let _ = writeln!(json, "    \"scale\": 0.1, \"nranks\": 4,");
    let _ = writeln!(json, "    \"phases\": {{");
    for (i, phase) in PAPER_PHASES.iter().enumerate() {
        let comma = if i + 1 < PAPER_PHASES.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      \"{phase}\": {{ \"wall_secs\": {:.4}, \"mem_hw_bytes\": {} }}{comma}",
            run.profile.max_wall(phase),
            run.profile.max_mem_hw(phase)
        );
    }
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"contigs\": {}", run.contigs.len());
    let _ = writeln!(json, "  }},");
    eprintln!("celegans 2x2 probe:\n{}", run.profile.render_table());

    // ---- SUMMA schedules on 2×2 and 3×3 (shared stage broadcasts) ----
    let triples = Arc::new(summa_triples(6, 600, 4_000, 12));
    let _ = writeln!(json, "  \"summa_aat_600x4000\": {{");
    for (gi, p) in [4usize, 9].iter().enumerate() {
        let grid_label = if *p == 4 { "p4_2x2" } else { "p9_3x3" };
        let _ = writeln!(json, "    \"{grid_label}\": {{");
        let entries = [
            ("eager", SpGemmOptions::eager()),
            ("pipelined", SpGemmOptions::pipelined()),
            ("column_batched", SpGemmOptions::column_batched(64, None)),
        ];
        for (i, (label, opts)) in entries.iter().enumerate() {
            let secs = summa_secs(*p, *opts, &triples);
            let comma = if i + 1 < entries.len() { "," } else { "" };
            let _ = writeln!(json, "      \"{label}_secs\": {secs:.5}{comma}");
            eprintln!("summa {grid_label} {label}: {:.2} ms", secs * 1e3);
        }
        let comma = if gi == 0 { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }},");

    // ---- owned vs shared broadcast fan-out ----
    let mut rng = StdRng::seed_from_u64(8);
    let mut panel_triples = Vec::new();
    for r in 0..1_500u32 {
        for _ in 0..8 {
            panel_triples.push((r, rng.gen_range(0..1_500u32), 1.0f64));
        }
    }
    let panel = Arc::new(Csr::from_triples(1_500, 1_500, panel_triples, |a, v| {
        *a += v
    }));
    let _ = writeln!(json, "  \"ibcast_csr1500_owned_vs_shared\": {{");
    for (gi, p) in [4usize, 9].iter().enumerate() {
        let owned = bcast_secs(*p, false, &panel);
        let shared = bcast_secs(*p, true, &panel);
        eprintln!(
            "ibcast p{p}: owned {:.3} ms, shared {:.3} ms ({:.2}x)",
            owned * 1e3,
            shared * 1e3,
            owned / shared.max(1e-9)
        );
        let comma = if gi == 0 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"p{p}\": {{ \"owned_secs\": {owned:.6}, \"shared_secs\": {shared:.6} }}{comma}"
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(out, &json).expect("write BENCH_pr4.json");
    eprintln!("wrote {out}");
    println!("{json}");
}
