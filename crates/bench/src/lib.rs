//! # elba-bench — harnesses regenerating the paper's tables and figures
//!
//! Each `[[bench]]` target (harness = false) reruns one experiment of the
//! ICPP 2022 evaluation and prints the same rows/series the paper
//! reports. Absolute numbers differ (the substrate is an in-process
//! simulator on scaled datasets, not Cori/Summit), but the *shape* —
//! which phase dominates, who wins, how efficiency falls with P — is the
//! reproduction target; see EXPERIMENTS.md for the side-by-side.
//!
//! This library holds the shared machinery: dataset construction, the
//! measured pipeline runner, and the α–β projection onto the paper's
//! machine configurations.

use std::time::Instant;

use elba_comm::{Backend, Runner};
use elba_comm::{MachineModel, ProcGrid, RunProfile};
use elba_core::{assemble, Contig, PipelineConfig, PipelineResult};
use elba_seq::{DatasetSpec, Seq};

/// The paper's five Fig. 5 phases, in legend order.
pub const PAPER_PHASES: [&str; 5] = [
    "CountKmer",
    "DetectOverlap",
    "Alignment",
    "TrReduction",
    "ExtractContig",
];

/// The contig-stage sub-phases (§6.1 internal breakdown).
pub const CONTIG_PHASES: [&str; 5] = [
    "ExtractContig:BranchRemoval",
    "ExtractContig:ConnectedComponent",
    "ExtractContig:GreedyPartitioning",
    "ExtractContig:InducedSubgraph",
    "ExtractContig:LocalAssembly",
];

/// Outcome of one measured pipeline run.
pub struct MeasuredRun {
    pub nranks: usize,
    pub wall_secs: f64,
    pub profile: RunProfile,
    pub result: PipelineResult,
    pub contigs: Vec<Contig>,
}

/// Run the full pipeline on `nranks` in-process ranks and collect
/// everything the figure harnesses need.
pub fn run_pipeline(reads: &[Seq], cfg: &PipelineConfig, nranks: usize) -> MeasuredRun {
    let reads = reads.to_vec();
    let cfg = cfg.clone();
    let started = Instant::now();
    let (mut outputs, profile) =
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                let result = assemble(&grid, &reads, &cfg);
                let contigs = elba_core::gather_contigs(&grid, &result.local_contigs);
                (result, contigs)
            });
    let wall_secs = started.elapsed().as_secs_f64();
    let (result, contigs) = outputs.remove(0);
    MeasuredRun {
        nranks,
        wall_secs,
        profile,
        result,
        contigs,
    }
}

/// [`run_pipeline`] over the socket transport: the same SPMD body, but
/// every cross-rank message is serialized into a frame and carried over
/// a Unix socketpair. Measures what the wire format and frame pumping
/// cost relative to the in-process mailbox moves.
pub fn run_pipeline_socket(reads: &[Seq], cfg: &PipelineConfig, nranks: usize) -> MeasuredRun {
    let reads = reads.to_vec();
    let cfg = cfg.clone();
    let started = Instant::now();
    let (mut outputs, profile) =
        Runner::new(Backend::Socket)
            .ranks(nranks)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                let result = assemble(&grid, &reads, &cfg);
                let contigs = elba_core::gather_contigs(&grid, &result.local_contigs);
                (result, contigs)
            });
    let wall_secs = started.elapsed().as_secs_f64();
    let (result, contigs) = outputs.remove(0);
    MeasuredRun {
        nranks,
        wall_secs,
        profile,
        result,
        contigs,
    }
}

/// Materialize a dataset spec into `(genome, reads)`.
pub fn dataset(spec: &DatasetSpec) -> (Seq, Vec<Seq>) {
    let (genome, sim_reads) = spec.generate();
    (genome, sim_reads.into_iter().map(|r| r.seq).collect())
}

/// Sum of the paper phases' max-wall times — the pipeline time a strong
/// scaling plot reports (ignores I/O and harness overhead, as the paper
/// does: "we omit I/O and other minor computation").
pub fn pipeline_time(profile: &RunProfile) -> f64 {
    PAPER_PHASES
        .iter()
        .map(|phase| profile.max_wall(phase))
        .sum()
}

/// Project a measured run onto a machine model at the paper's node
/// counts; returns `(ranks, seconds)` series.
pub fn project_series(
    run: &MeasuredRun,
    model: &MachineModel,
    node_counts: &[usize],
) -> Vec<(usize, f64)> {
    let observations: Vec<_> = PAPER_PHASES
        .iter()
        .map(|phase| run.profile.observe(phase))
        .collect();
    node_counts
        .iter()
        .map(|&nodes| {
            let ranks = nodes * model.ranks_per_node;
            (ranks, model.project_total(&observations, run.nranks, ranks))
        })
        .collect()
}

/// Render a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a banner for a bench section.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Rank counts measured in-process. Square numbers only (2D grid); the
/// host machine is small, so thread-backed ranks beyond the core count
/// measure correctness and communication structure rather than speedup —
/// the α–β projection supplies the scaling shape.
pub fn measured_rank_counts() -> Vec<usize> {
    vec![1, 4, 9, 16]
}

/// The paper's node counts for Figs. 4/5 (32 ranks each).
pub const PAPER_NODE_COUNTS: [usize; 5] = [18, 32, 50, 72, 128];
/// The paper's Summit node counts for Fig. 6 (H. sapiens).
pub const PAPER_NODE_COUNTS_HSAPIENS: [usize; 4] = [200, 288, 338, 392];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_pipeline_smoke() {
        let spec = DatasetSpec::celegans_like(0.04, 8);
        let (_genome, reads) = dataset(&spec);
        let cfg = PipelineConfig::for_dataset(&spec);
        let run = run_pipeline(&reads, &cfg, 4);
        assert!(run.wall_secs > 0.0);
        assert!(pipeline_time(&run.profile) > 0.0);
        assert_eq!(run.nranks, 4);
    }

    #[test]
    fn projection_series_has_requested_points() {
        let spec = DatasetSpec::celegans_like(0.04, 9);
        let (_genome, reads) = dataset(&spec);
        let cfg = PipelineConfig::for_dataset(&spec);
        let run = run_pipeline(&reads, &cfg, 4);
        let model = MachineModel::cori_haswell();
        let series = project_series(&run, &model, &PAPER_NODE_COUNTS);
        assert_eq!(series.len(), 5);
        assert!(series
            .iter()
            .all(|&(ranks, secs)| ranks % 32 == 0 && secs > 0.0));
    }
}
