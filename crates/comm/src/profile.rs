//! Per-rank, per-phase accounting of wall time, communication volume and
//! memory high-water.
//!
//! ELBA's evaluation (Figs. 4–6) is organized around named pipeline phases
//! (`CountKmer`, `DetectOverlap`, `Alignment`, `TrReduction`,
//! `ExtractContig`). Every [`crate::Comm`] operation books its bytes and
//! blocking time into the phase that is active on its rank, so a run
//! yields the exact ingredients those figures plot: max-over-ranks wall
//! time per phase, communication fraction, and message volumes for the
//! α–β model in [`crate::model`]. Each rank's profile also embeds an
//! [`elba_mem::MemTracker`] whose phase stack moves in lockstep with the
//! timing phases, so stages that charge their resident buffers (via
//! [`crate::Comm::mem_charge`]) produce the per-phase memory high-water
//! column of the run report — the observable behind ELBA's bounded-memory
//! SpGEMM claim.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use elba_mem::MemTracker;

use crate::msg::CommMsg;
use crate::transport::wire::{WireError, WireReader};

/// Lock a shared profile, tolerating poison: a panicking rank must not
/// turn its unwind into a second panic inside a `PhaseGuard` drop.
pub(crate) fn lock_profile(profile: &Mutex<Profile>) -> MutexGuard<'_, Profile> {
    profile.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Name used for activity recorded outside any explicit phase. Shared
/// with the memory tracker so unphased time and unphased bytes land in
/// the same bucket.
pub const UNPHASED: &str = elba_mem::UNPHASED;

/// Accounting for a single named phase on one rank.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    /// Wall-clock seconds spent inside the phase.
    pub wall_secs: f64,
    /// Seconds spent blocked inside *blocking* communication calls.
    pub comm_secs: f64,
    /// Seconds spent blocked inside `wait` on non-blocking requests
    /// (`irecv`/`ibcast`). Kept separate from `comm_secs`: when
    /// communication is overlapped with computation this bucket shrinks
    /// toward zero while the same bytes still flow.
    pub wait_secs: f64,
    /// Wall seconds the rank spent inside intra-rank *threaded* local
    /// kernels (the SpGEMM stage multiply, the x-drop alignment batch,
    /// the k-mer scan running on `elba-par` workers). A subset of the
    /// phase's wall time — the rank thread blocks while its workers run
    /// — recorded only when a kernel actually ran with > 1 thread, so
    /// serial profiles are unchanged and the threading win is readable
    /// as `par-s` shrinking while bytes stay identical. Workers never
    /// enter the comm layer; only the owning rank thread records.
    pub par_secs: f64,
    /// Point-to-point messages sent.
    pub p2p_msgs: u64,
    /// Point-to-point bytes sent.
    pub p2p_bytes: u64,
    /// Collective calls: (operation, calls, bytes sent by this rank).
    pub collectives: Vec<(&'static str, u64, u64)>,
}

impl PhaseProfile {
    /// Total bytes this rank pushed into the network during the phase.
    pub fn bytes_sent(&self) -> u64 {
        self.p2p_bytes + self.collectives.iter().map(|&(_, _, b)| b).sum::<u64>()
    }

    /// Total collective invocations in the phase.
    pub fn coll_calls(&self) -> u64 {
        self.collectives.iter().map(|&(_, c, _)| c).sum()
    }

    fn merge_coll(&mut self, op: &'static str, bytes: usize) {
        if let Some(entry) = self.collectives.iter_mut().find(|(name, _, _)| *name == op) {
            entry.1 += 1;
            entry.2 += bytes as u64;
        } else {
            self.collectives.push((op, 1, bytes as u64));
        }
    }
}

/// Map a collective-op name decoded off the wire back to the `&'static
/// str` the recording side used, so decoded profiles merge with locally
/// recorded ones. Unknown names (a newer worker binary, in principle)
/// are leaked — profiles are few and gathered once per run.
fn intern_op(name: String) -> &'static str {
    match name.as_str() {
        "barrier" => "barrier",
        "bcast" => "bcast",
        "gather" => "gather",
        "reduce" => "reduce",
        "alltoallv" => "alltoallv",
        "reduce_scatter" => "reduce_scatter",
        "exscan" => "exscan",
        "ibcast" => "ibcast",
        "ialltoallv" => "ialltoallv",
        _ => name.leak(),
    }
}

/// Phase accounting for one rank. Phases appear in first-entered order.
#[derive(Debug, Clone)]
pub struct Profile {
    rank: usize,
    phases: Vec<(String, PhaseProfile)>,
    stack: Vec<usize>,
    /// Resident-byte accounting; its phase stack mirrors `stack`.
    mem: MemTracker,
}

impl Profile {
    pub fn new(rank: usize) -> Self {
        Profile {
            rank,
            phases: Vec::new(),
            stack: Vec::new(),
            mem: MemTracker::new(),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's memory tracker (per-phase resident-byte high-water).
    pub fn mem(&self) -> &MemTracker {
        &self.mem
    }

    pub(crate) fn mem_mut(&mut self) -> &mut MemTracker {
        &mut self.mem
    }

    /// Phases recorded on this rank, in first-entered order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseProfile)> {
        self.phases.iter().map(|(name, p)| (name.as_str(), p))
    }

    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    fn index_of(&mut self, name: &str) -> usize {
        if let Some(idx) = self.phases.iter().position(|(n, _)| n == name) {
            idx
        } else {
            self.phases.push((name.to_owned(), PhaseProfile::default()));
            self.phases.len() - 1
        }
    }

    fn current_mut(&mut self) -> &mut PhaseProfile {
        let idx = match self.stack.last() {
            Some(&idx) => idx,
            None => self.index_of(UNPHASED),
        };
        &mut self.phases[idx].1
    }

    pub(crate) fn record_p2p(&mut self, bytes: usize) {
        let phase = self.current_mut();
        phase.p2p_msgs += 1;
        phase.p2p_bytes += bytes as u64;
    }

    pub(crate) fn record_coll(&mut self, op: &'static str, bytes: usize) {
        self.current_mut().merge_coll(op, bytes);
    }

    pub(crate) fn record_comm_time(&mut self, secs: f64) {
        self.current_mut().comm_secs += secs;
    }

    pub(crate) fn record_wait_time(&mut self, secs: f64) {
        self.current_mut().wait_secs += secs;
    }

    pub(crate) fn record_par_time(&mut self, secs: f64) {
        self.current_mut().par_secs += secs;
    }

    fn enter(&mut self, name: &str) -> usize {
        let idx = self.index_of(name);
        self.stack.push(idx);
        self.mem.enter(name);
        idx
    }

    /// Serialize the profile for a cross-process gather (`elba launch`
    /// workers ship their profiles to rank 0 as frames). Phase and
    /// collective-op order is preserved exactly, so a decoded profile
    /// aggregates identically to the original.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.rank as u64).wire_encode(out);
        (self.phases.len() as u64).wire_encode(out);
        for (name, p) in &self.phases {
            name.wire_encode(out);
            p.wall_secs.wire_encode(out);
            p.comm_secs.wire_encode(out);
            p.wait_secs.wire_encode(out);
            p.par_secs.wire_encode(out);
            p.p2p_msgs.wire_encode(out);
            p.p2p_bytes.wire_encode(out);
            (p.collectives.len() as u64).wire_encode(out);
            for &(op, calls, bytes) in &p.collectives {
                op.to_owned().wire_encode(out);
                calls.wire_encode(out);
                bytes.wire_encode(out);
            }
        }
        self.mem.current().wire_encode(out);
        let mem_phases: Vec<(String, u64)> = self
            .mem
            .phases()
            .map(|(n, hw)| (n.to_owned(), hw))
            .collect();
        (mem_phases.len() as u64).wire_encode(out);
        for (name, hw) in mem_phases {
            name.wire_encode(out);
            hw.wire_encode(out);
        }
    }

    /// Inverse of [`Profile::wire_encode`].
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Profile, WireError> {
        let rank =
            usize::try_from(u64::wire_decode(r)?).map_err(|_| WireError::Malformed("rank"))?;
        let nphases = r.read_len()?;
        let mut phases = Vec::with_capacity(nphases.min(64));
        for _ in 0..nphases {
            let name = String::wire_decode(r)?;
            let wall_secs = f64::wire_decode(r)?;
            let comm_secs = f64::wire_decode(r)?;
            let wait_secs = f64::wire_decode(r)?;
            let par_secs = f64::wire_decode(r)?;
            let p2p_msgs = u64::wire_decode(r)?;
            let p2p_bytes = u64::wire_decode(r)?;
            let ncoll = r.read_len()?;
            let mut collectives = Vec::with_capacity(ncoll.min(16));
            for _ in 0..ncoll {
                let op = intern_op(String::wire_decode(r)?);
                let calls = u64::wire_decode(r)?;
                let bytes = u64::wire_decode(r)?;
                collectives.push((op, calls, bytes));
            }
            phases.push((
                name,
                PhaseProfile {
                    wall_secs,
                    comm_secs,
                    wait_secs,
                    par_secs,
                    p2p_msgs,
                    p2p_bytes,
                    collectives,
                },
            ));
        }
        let mem_current = u64::wire_decode(r)?;
        let nmem = r.read_len()?;
        let mut mem_phases = Vec::with_capacity(nmem.min(64));
        for _ in 0..nmem {
            let name = String::wire_decode(r)?;
            let hw = u64::wire_decode(r)?;
            mem_phases.push((name, hw));
        }
        Ok(Profile {
            rank,
            phases,
            stack: Vec::new(),
            mem: MemTracker::from_snapshot(mem_current, mem_phases),
        })
    }

    fn exit(&mut self, idx: usize, wall: f64) {
        let popped = self.stack.pop();
        debug_assert_eq!(popped, Some(idx), "phase guards must nest");
        self.mem.exit();
        self.phases[idx].1.wall_secs += wall;
    }
}

thread_local! {
    /// Names of the phases currently active on this rank thread, for
    /// callers that need "what phase am I in?" without the profile lock
    /// — the fault layer's `@phase:` triggers
    /// ([`crate::transport::fault`]). Thread-local is exact here: a rank
    /// thread is the only one entering its comm layer (invariant 3).
    static PHASE_STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether a phase named `name` is active (itself or as an ancestor of
/// the current subphase) on this rank thread.
pub(crate) fn phase_active(name: &str) -> bool {
    PHASE_STACK.with(|stack| stack.borrow().iter().any(|p| p == name))
}

/// RAII scope for a profiling phase; created via [`crate::Comm::phase`].
pub struct PhaseGuard {
    profile: Arc<Mutex<Profile>>,
    idx: usize,
    start: Instant,
}

impl PhaseGuard {
    pub(crate) fn enter(profile: Arc<Mutex<Profile>>, name: &str) -> Self {
        let idx = lock_profile(&profile).enter(name);
        PHASE_STACK.with(|stack| stack.borrow_mut().push(name.to_owned()));
        PhaseGuard {
            profile,
            idx,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let wall = self.start.elapsed().as_secs_f64();
        lock_profile(&self.profile).exit(self.idx, wall);
    }
}

/// Profiles of every rank in one [`crate::Cluster`] run, with the
/// aggregations the paper's figures are built from.
#[derive(Debug, Clone)]
pub struct RunProfile {
    ranks: Vec<Profile>,
}

impl RunProfile {
    pub fn new(ranks: Vec<Profile>) -> Self {
        RunProfile { ranks }
    }

    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn rank_profiles(&self) -> &[Profile] {
        &self.ranks
    }

    /// Phase names in first-seen order across all ranks.
    pub fn phase_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for rank in &self.ranks {
            for (name, _) in rank.phases() {
                if name != UNPHASED && !names.iter().any(|n| n == name) {
                    names.push(name.to_owned());
                }
            }
        }
        names
    }

    /// Max-over-ranks wall time for a phase — the number a strong-scaling
    /// plot reports (the slowest rank gates the pipeline).
    pub fn max_wall(&self, phase: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.wall_secs)
            .fold(0.0, f64::max)
    }

    /// Mean-over-ranks wall time for a phase.
    pub fn mean_wall(&self, phase: &str) -> f64 {
        let times: Vec<f64> = self
            .ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.wall_secs)
            .collect();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }

    /// Max-over-ranks blocking-communication time within a phase.
    pub fn max_comm_secs(&self, phase: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.comm_secs)
            .fold(0.0, f64::max)
    }

    /// Max-over-ranks non-blocking wait time within a phase — the time
    /// ranks spent parked in `Request::wait`/`IbcastRequest::wait`. A
    /// pipelined stage that truly overlaps communication shows a small
    /// value here relative to the same stage run eagerly.
    pub fn max_wait_secs(&self, phase: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.wait_secs)
            .fold(0.0, f64::max)
    }

    /// Max-over-ranks threaded-kernel wall time within a phase — the
    /// time ranks spent inside intra-rank parallel kernels (see
    /// [`PhaseProfile::par_secs`]). Zero for serial runs.
    pub fn max_par_secs(&self, phase: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.par_secs)
            .fold(0.0, f64::max)
    }

    /// Max-over-ranks memory high-water within a phase: the most tracked
    /// bytes any rank had resident while the phase was active. This is
    /// the number a memory budget is checked against (the biggest rank
    /// gates the claim, exactly like `max_wall` gates scaling).
    pub fn max_mem_hw(&self, phase: &str) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.mem().high_water(phase))
            .max()
            .unwrap_or(0)
    }

    /// Merge every rank's memory tracker (per-phase max) into one — the
    /// cross-rank view `MemTracker::merge_max` exists for.
    pub fn merged_mem(&self) -> elba_mem::MemTracker {
        let mut merged = elba_mem::MemTracker::new();
        for rank in &self.ranks {
            merged.merge_max(rank.mem());
        }
        merged
    }

    /// Total point-to-point bytes across all ranks in a phase.
    pub fn total_p2p_bytes(&self, phase: &str) -> u64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.p2p_bytes)
            .sum()
    }

    /// Total bytes (p2p + collectives) across all ranks in a phase.
    pub fn total_bytes(&self, phase: &str) -> u64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.bytes_sent())
            .sum()
    }

    /// Mean collective calls per rank in a phase.
    pub fn mean_coll_calls(&self, phase: &str) -> f64 {
        let calls: Vec<u64> = self
            .ranks
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| p.coll_calls())
            .collect();
        if calls.is_empty() {
            0.0
        } else {
            calls.iter().sum::<u64>() as f64 / calls.len() as f64
        }
    }

    /// Condensed per-phase observation consumed by [`crate::model`].
    pub fn observe(&self, phase: &str) -> crate::model::PhaseObservation {
        let max_wall = self.max_wall(phase);
        let max_wait = self.max_wait_secs(phase);
        let max_comm = self.max_comm_secs(phase) + max_wait;
        crate::model::PhaseObservation {
            phase: phase.to_owned(),
            wall_secs: max_wall,
            compute_secs: (max_wall - max_comm).max(0.0),
            wait_secs: max_wait,
            coll_calls_per_rank: self.mean_coll_calls(phase),
            total_bytes: self.total_bytes(phase) as f64,
        }
    }

    /// Render a plain-text per-phase table (used by examples and benches).
    /// `mem-hw` is the max-over-ranks tracked-resident-byte high-water.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>12}",
            "phase", "max-wall-s", "comm-s", "wait-s", "par-s", "bytes", "colls/rank", "mem-hw"
        );
        for name in self.phase_names() {
            let _ = writeln!(
                out,
                "{:<24} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12} {:>10.1} {:>12}",
                name,
                self.max_wall(&name),
                self.max_comm_secs(&name),
                self.max_wait_secs(&name),
                self.max_par_secs(&name),
                self.total_bytes(&name),
                self.mean_coll_calls(&name),
                self.max_mem_hw(&name)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_over_the_wire() {
        let mut p = Profile::new(3);
        {
            let idx = p.enter("anchor");
            p.record_p2p(128);
            p.record_coll("allgather_custom", 64);
            p.record_coll("bcast", 32);
            p.record_comm_time(0.25);
            p.record_wait_time(0.125);
            p.mem_mut().charge(4096);
            p.exit(idx, 1.5);
        }
        p.record_p2p(9); // lands in UNPHASED
        p.mem_mut().release(1024);

        let mut buf = Vec::new();
        p.wire_encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let q = Profile::wire_decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");

        assert_eq!(q.rank(), 3);
        let names: Vec<&str> = q.phases().map(|(n, _)| n).collect();
        assert_eq!(names, p.phases().map(|(n, _)| n).collect::<Vec<_>>());
        let (pa, qa) = (p.phase("anchor").unwrap(), q.phase("anchor").unwrap());
        assert_eq!(qa.p2p_msgs, pa.p2p_msgs);
        assert_eq!(qa.p2p_bytes, pa.p2p_bytes);
        assert_eq!(qa.collectives, pa.collectives);
        assert_eq!(qa.comm_secs, pa.comm_secs);
        assert_eq!(qa.wait_secs, pa.wait_secs);
        assert_eq!(q.phase(UNPHASED).unwrap().p2p_bytes, 9);
        assert_eq!(q.mem().current(), p.mem().current());
        assert_eq!(
            q.mem().phases().collect::<Vec<_>>(),
            p.mem().phases().collect::<Vec<_>>()
        );
        // Known op names intern back to the same static; unknown ones
        // still compare equal by value.
        assert!(qa.collectives.iter().any(|&(op, _, _)| op == "bcast"));
        assert!(qa
            .collectives
            .iter()
            .any(|&(op, _, _)| op == "allgather_custom"));
    }

    #[test]
    fn phases_accumulate() {
        let profile = Arc::new(Mutex::new(Profile::new(0)));
        {
            let _g = PhaseGuard::enter(Arc::clone(&profile), "a");
            lock_profile(&profile).record_p2p(100);
        }
        {
            let _g = PhaseGuard::enter(Arc::clone(&profile), "a");
            lock_profile(&profile).record_p2p(50);
        }
        let p = lock_profile(&profile);
        let phase = p.phase("a").expect("phase exists");
        assert_eq!(phase.p2p_msgs, 2);
        assert_eq!(phase.p2p_bytes, 150);
        assert!(phase.wall_secs >= 0.0);
    }

    #[test]
    fn nested_phases_book_to_innermost() {
        let profile = Arc::new(Mutex::new(Profile::new(0)));
        {
            let _outer = PhaseGuard::enter(Arc::clone(&profile), "outer");
            {
                let _inner = PhaseGuard::enter(Arc::clone(&profile), "inner");
                lock_profile(&profile).record_p2p(7);
            }
            lock_profile(&profile).record_p2p(3);
        }
        let p = lock_profile(&profile);
        assert_eq!(p.phase("inner").map(|ph| ph.p2p_bytes), Some(7));
        assert_eq!(p.phase("outer").map(|ph| ph.p2p_bytes), Some(3));
    }

    #[test]
    fn unphased_bucket() {
        let profile = Arc::new(Mutex::new(Profile::new(0)));
        lock_profile(&profile).record_p2p(9);
        let p = lock_profile(&profile);
        assert_eq!(p.phase(UNPHASED).map(|ph| ph.p2p_bytes), Some(9));
    }

    #[test]
    fn run_profile_aggregates() {
        let mut a = Profile::new(0);
        let idx = a.enter("x");
        a.record_p2p(10);
        a.exit(idx, 2.0);
        let mut b = Profile::new(1);
        let idx = b.enter("x");
        b.record_p2p(30);
        b.exit(idx, 3.0);
        let run = RunProfile::new(vec![a, b]);
        assert_eq!(run.max_wall("x"), 3.0);
        assert_eq!(run.mean_wall("x"), 2.5);
        assert_eq!(run.total_p2p_bytes("x"), 40);
        assert_eq!(run.phase_names(), vec!["x".to_owned()]);
    }

    #[test]
    fn collectives_merge_by_op() {
        let mut p = PhaseProfile::default();
        p.merge_coll("bcast", 10);
        p.merge_coll("bcast", 5);
        p.merge_coll("reduce", 1);
        assert_eq!(p.collectives.len(), 2);
        assert_eq!(p.coll_calls(), 3);
        assert_eq!(p.bytes_sent(), 16);
    }
}
