//! Message metering and serialization: everything sent through a
//! [`crate::Comm`] reports how many bytes it would occupy on an MPI wire,
//! so that the profiler can reconstruct communication volumes identical
//! to a real distributed run — and, since the socket transport, knows how
//! to serialize itself into a frame when the destination rank lives in
//! another process.

use crate::transport::wire::{WireError, WireReader};

/// A value that can travel between ranks.
///
/// Implementors report their wire size via [`CommMsg::nbytes`]; the
/// in-process transport moves the value itself through a channel without
/// copying, while the socket transport serializes it with
/// [`CommMsg::wire_encode`] / [`CommMsg::wire_decode`].
///
/// `nbytes` is the *modeled* MPI wire size (the number invariant 2 pins
/// across backends); the frame codec is free to use a different physical
/// layout — the two are reconciled nowhere, on purpose: byte accounting
/// happens above the transport, at send time.
pub trait CommMsg: Send + 'static {
    /// Number of bytes this value would occupy in an MPI message.
    fn nbytes(&self) -> usize;

    /// Serialize into a transport frame. Frames never cross a machine
    /// boundary (ranks exchange them over Unix-domain sockets), so
    /// integers travel native-endian.
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Inverse of [`CommMsg::wire_encode`]. Returns [`WireError`] on
    /// truncated or malformed input instead of panicking, so transport
    /// code can surface which peer produced a bad frame.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError>
    where
        Self: Sized;

    /// Bulk-encode a slice of values. Element-wise by default; scalar and
    /// POD messages override with a single byte copy so multi-MB buffers
    /// do not serialize element-at-a-time.
    #[doc(hidden)]
    fn wire_encode_slice(items: &[Self], out: &mut Vec<u8>)
    where
        Self: Sized,
    {
        for item in items {
            item.wire_encode(out);
        }
    }

    /// Bulk-decode `n` values; the inverse of
    /// [`CommMsg::wire_encode_slice`].
    #[doc(hidden)]
    fn wire_decode_slice(n: usize, r: &mut WireReader<'_>) -> Result<Vec<Self>, WireError>
    where
        Self: Sized,
    {
        // Capacity is clamped by what the buffer could possibly hold so
        // a corrupt length header cannot trigger a huge allocation.
        let mut out = Vec::with_capacity(n.min(r.remaining().max(1)));
        for _ in 0..n {
            out.push(Self::wire_decode(r)?);
        }
        Ok(out)
    }
}

macro_rules! impl_scalar_msg {
    ($($t:ty),* $(,)?) => {
        $(impl CommMsg for $t {
            #[inline]
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }

            #[inline]
            fn wire_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_ne_bytes());
            }

            #[inline]
            fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let b = r.read_bytes(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_ne_bytes(b.try_into().expect("sized read")))
            }

            fn wire_encode_slice(items: &[Self], out: &mut Vec<u8>) {
                // Same-host frames: a scalar slice is its bytes.
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        items.as_ptr().cast::<u8>(),
                        std::mem::size_of_val(items),
                    )
                };
                out.extend_from_slice(bytes);
            }

            fn wire_decode_slice(
                n: usize,
                r: &mut WireReader<'_>,
            ) -> Result<Vec<Self>, WireError> {
                let size = std::mem::size_of::<$t>();
                let total = n
                    .checked_mul(size)
                    .ok_or(WireError::Malformed("length header"))?;
                let bytes = r.read_bytes(total)?;
                let mut out: Vec<$t> = Vec::with_capacity(n);
                // Safe for primitive scalars: no padding, every bit
                // pattern is a value (floats included).
                unsafe {
                    std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), total);
                    out.set_len(n);
                }
                Ok(out)
            }
        })*
    };
}

impl_scalar_msg!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

/// `usize`/`isize` travel as fixed 8-byte integers so the frame layout
/// does not depend on the platform's pointer width.
impl CommMsg for usize {
    #[inline]
    fn nbytes(&self) -> usize {
        std::mem::size_of::<usize>()
    }

    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_ne_bytes());
    }

    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.read_u64()?).map_err(|_| WireError::Malformed("usize"))
    }
}

impl CommMsg for isize {
    #[inline]
    fn nbytes(&self) -> usize {
        std::mem::size_of::<isize>()
    }

    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_ne_bytes());
    }

    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let b = r.read_bytes(8)?;
        isize::try_from(i64::from_ne_bytes(b.try_into().expect("8-byte read")))
            .map_err(|_| WireError::Malformed("isize"))
    }
}

impl CommMsg for bool {
    #[inline]
    fn nbytes(&self) -> usize {
        1
    }

    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }
}

impl CommMsg for char {
    #[inline]
    fn nbytes(&self) -> usize {
        4
    }

    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_ne_bytes());
    }

    #[inline]
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        char::from_u32(r.read_u32()?).ok_or(WireError::Malformed("char"))
    }
}

impl CommMsg for () {
    #[inline]
    fn nbytes(&self) -> usize {
        0
    }

    #[inline]
    fn wire_encode(&self, _out: &mut Vec<u8>) {}

    #[inline]
    fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: CommMsg> CommMsg for Vec<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        // Length header (MPI count) + payload. For scalar `T` the sum
        // vectorizes to `len * size_of::<T>()`.
        8 + self.iter().map(CommMsg::nbytes).sum::<usize>()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_ne_bytes());
        T::wire_encode_slice(self, out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.read_len()?;
        T::wire_decode_slice(n, r)
    }
}

impl<T: CommMsg> CommMsg for Option<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        1 + self.as_ref().map_or(0, CommMsg::nbytes)
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::wire_decode(r)?)),
            _ => Err(WireError::Malformed("option tag")),
        }
    }
}

impl<T: CommMsg> CommMsg for Box<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        self.as_ref().nbytes()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.as_ref().wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::wire_decode(r)?))
    }
}

/// An `Arc`-shared payload travels the mailboxes as a reference-count
/// bump, but on an MPI wire it would ship the full value — so its wire
/// size is the inner value's, and the frame codec ships the inner value
/// (the receiving process re-wraps it; sharing cannot cross an address
/// space). This is what keeps the profiled byte counters of
/// [`crate::Comm::bcast_shared`] byte-identical to the owned broadcast
/// of the same value: the zero-copy optimization is an in-process
/// transport detail, invisible to the communication model.
impl<T: CommMsg + Sync> CommMsg for std::sync::Arc<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        self.as_ref().nbytes()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.as_ref().wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::wire_decode(r)?))
    }
}

impl CommMsg for String {
    #[inline]
    fn nbytes(&self) -> usize {
        8 + self.len()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_ne_bytes());
        out.extend_from_slice(self.as_bytes());
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.read_len()?;
        let bytes = r.read_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }
}

impl<A: CommMsg, B: CommMsg> CommMsg for (A, B) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::wire_decode(r)?, B::wire_decode(r)?))
    }
}

impl<A: CommMsg, B: CommMsg, C: CommMsg> CommMsg for (A, B, C) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::wire_decode(r)?, B::wire_decode(r)?, C::wire_decode(r)?))
    }
}

impl<A: CommMsg, B: CommMsg, C: CommMsg, D: CommMsg> CommMsg for (A, B, C, D) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes() + self.3.nbytes()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
        self.3.wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((
            A::wire_decode(r)?,
            B::wire_decode(r)?,
            C::wire_decode(r)?,
            D::wire_decode(r)?,
        ))
    }
}

/// Implement [`CommMsg`] for a plain-old-data struct whose wire size is its
/// in-memory size. Use for `#[derive(Clone, Copy)]` message structs such as
/// sparse-matrix triples.
///
/// The frame codec copies the struct's bytes verbatim (padding included)
/// and trusts them on decode — frames only ever come from the same binary
/// on the same machine, so field layouts match by construction. Do not
/// use for types with invariants a foreign byte pattern could break.
#[macro_export]
macro_rules! impl_comm_msg_pod {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::msg::CommMsg for $t {
            #[inline]
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }

            fn wire_encode(&self, out: &mut Vec<u8>) {
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        (self as *const $t).cast::<u8>(),
                        std::mem::size_of::<$t>(),
                    )
                };
                out.extend_from_slice(bytes);
            }

            fn wire_decode(
                r: &mut $crate::transport::wire::WireReader<'_>,
            ) -> Result<Self, $crate::transport::wire::WireError> {
                let bytes = r.read_bytes(std::mem::size_of::<$t>())?;
                Ok(unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<$t>()) })
            }

            fn wire_encode_slice(items: &[Self], out: &mut Vec<u8>) {
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        items.as_ptr().cast::<u8>(),
                        std::mem::size_of_val(items),
                    )
                };
                out.extend_from_slice(bytes);
            }

            fn wire_decode_slice(
                n: usize,
                r: &mut $crate::transport::wire::WireReader<'_>,
            ) -> Result<Vec<Self>, $crate::transport::wire::WireError> {
                let size = std::mem::size_of::<$t>();
                let total = n
                    .checked_mul(size)
                    .ok_or($crate::transport::wire::WireError::Malformed("length header"))?;
                let bytes = r.read_bytes(total)?;
                let mut out: Vec<$t> = Vec::with_capacity(n);
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        bytes.as_ptr(),
                        out.as_mut_ptr().cast::<u8>(),
                        total,
                    );
                    out.set_len(n);
                }
                Ok(out)
            }
        })*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: CommMsg + PartialEq + std::fmt::Debug>(value: &T) -> T {
        let mut buf = Vec::new();
        value.wire_encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let decoded = T::wire_decode(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "decode must consume the whole buffer");
        decoded
    }

    #[test]
    fn scalar_sizes() {
        assert_eq!(1u8.nbytes(), 1);
        assert_eq!(1u64.nbytes(), 8);
        assert_eq!(1.0f64.nbytes(), 8);
        assert_eq!(true.nbytes(), 1);
        assert_eq!(().nbytes(), 0);
    }

    #[test]
    fn vec_includes_header() {
        let v = vec![0u32; 10];
        assert_eq!(v.nbytes(), 8 + 40);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.nbytes(), 8);
    }

    #[test]
    fn nested_vec() {
        let v = vec![vec![0u8; 4], vec![0u8; 6]];
        assert_eq!(v.nbytes(), 8 + (8 + 4) + (8 + 6));
    }

    #[test]
    fn tuple_and_option() {
        assert_eq!((1u32, 2u64).nbytes(), 12);
        assert_eq!(Some(7u64).nbytes(), 9);
        assert_eq!(Option::<u64>::None.nbytes(), 1);
    }

    #[test]
    fn codec_round_trips() {
        assert_eq!(round_trip(&0xAB_u8), 0xAB);
        assert_eq!(round_trip(&-7i64), -7);
        assert_eq!(round_trip(&3.25f64), 3.25);
        assert_eq!(round_trip(&usize::MAX), usize::MAX);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&'λ'), 'λ');
        assert_eq!(round_trip(&()), ());
        assert_eq!(round_trip(&String::from("contig")), "contig");
        assert_eq!(round_trip(&Some(vec![1u32, 2, 3])), Some(vec![1u32, 2, 3]));
        assert_eq!(round_trip(&Option::<u64>::None), None);
        assert_eq!(round_trip(&(1u8, 2u32, 3u64)), (1, 2, 3));
        assert_eq!(
            round_trip(&vec![vec![1u16, 2], vec![], vec![3]]),
            vec![vec![1u16, 2], vec![], vec![3]]
        );
        let arc = std::sync::Arc::new(vec![9u64; 5]);
        assert_eq!(*round_trip(&arc), vec![9u64; 5]);
    }

    #[test]
    fn codec_rejects_garbage() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(bool::wire_decode(&mut r), Err(WireError::Malformed("bool")));
        let mut buf = Vec::new();
        0xFFFF_FFFFu32.wire_encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(char::wire_decode(&mut r), Err(WireError::Malformed("char")));
        // A vec header claiming more elements than any frame could hold.
        let mut buf = Vec::new();
        u64::MAX.wire_encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(
            Vec::<u64>::wire_decode(&mut r),
            Err(WireError::Malformed("length header"))
        );
        // Truncated mid-payload.
        let mut buf = Vec::new();
        vec![1u64, 2, 3].wire_encode(&mut buf);
        buf.truncate(buf.len() - 4);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            Vec::<u64>::wire_decode(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[derive(Clone, Copy)]
    struct Triple {
        _r: u64,
        _c: u64,
        _v: f64,
    }
    impl_comm_msg_pod!(Triple);

    #[test]
    fn pod_macro() {
        let t = Triple {
            _r: 0,
            _c: 0,
            _v: 0.0,
        };
        assert_eq!(t.nbytes(), std::mem::size_of::<Triple>());
    }

    #[test]
    fn pod_codec_round_trips_bulk() {
        let items: Vec<Triple> = (0..100)
            .map(|i| Triple {
                _r: i,
                _c: i * 2,
                _v: i as f64 * 0.5,
            })
            .collect();
        let mut buf = Vec::new();
        items.wire_encode(&mut buf);
        assert_eq!(buf.len(), 8 + 100 * std::mem::size_of::<Triple>());
        let mut r = WireReader::new(&buf);
        let back = Vec::<Triple>::wire_decode(&mut r).expect("decodes");
        assert!(back
            .iter()
            .zip(&items)
            .all(|(a, b)| a._r == b._r && a._c == b._c && a._v == b._v));
    }
}
