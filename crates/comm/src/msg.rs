//! Message metering: everything sent through a [`crate::Comm`] reports how
//! many bytes it would occupy on an MPI wire, so that the profiler can
//! reconstruct communication volumes identical to a real distributed run.

/// A value that can travel between ranks.
///
/// Implementors report their wire size via [`CommMsg::nbytes`]; the runtime
/// moves the value itself through an in-process channel without copying.
pub trait CommMsg: Send + 'static {
    /// Number of bytes this value would occupy in an MPI message.
    fn nbytes(&self) -> usize;
}

macro_rules! impl_scalar_msg {
    ($($t:ty),* $(,)?) => {
        $(impl CommMsg for $t {
            #[inline]
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_scalar_msg!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl CommMsg for () {
    #[inline]
    fn nbytes(&self) -> usize {
        0
    }
}

impl<T: CommMsg> CommMsg for Vec<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        // Length header (MPI count) + payload. For scalar `T` the sum
        // vectorizes to `len * size_of::<T>()`.
        8 + self.iter().map(CommMsg::nbytes).sum::<usize>()
    }
}

impl<T: CommMsg> CommMsg for Option<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        1 + self.as_ref().map_or(0, CommMsg::nbytes)
    }
}

impl<T: CommMsg> CommMsg for Box<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        self.as_ref().nbytes()
    }
}

/// An `Arc`-shared payload travels the mailboxes as a reference-count
/// bump, but on an MPI wire it would ship the full value — so its wire
/// size is the inner value's. This is what keeps the profiled byte
/// counters of [`crate::Comm::bcast_shared`] byte-identical to the
/// owned broadcast of the same value: the zero-copy optimization is an
/// in-process transport detail, invisible to the communication model.
impl<T: CommMsg + Sync> CommMsg for std::sync::Arc<T> {
    #[inline]
    fn nbytes(&self) -> usize {
        self.as_ref().nbytes()
    }
}

impl CommMsg for String {
    #[inline]
    fn nbytes(&self) -> usize {
        8 + self.len()
    }
}

impl<A: CommMsg, B: CommMsg> CommMsg for (A, B) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes()
    }
}

impl<A: CommMsg, B: CommMsg, C: CommMsg> CommMsg for (A, B, C) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes()
    }
}

impl<A: CommMsg, B: CommMsg, C: CommMsg, D: CommMsg> CommMsg for (A, B, C, D) {
    #[inline]
    fn nbytes(&self) -> usize {
        self.0.nbytes() + self.1.nbytes() + self.2.nbytes() + self.3.nbytes()
    }
}

/// Implement [`CommMsg`] for a plain-old-data struct whose wire size is its
/// in-memory size. Use for `#[derive(Clone, Copy)]` message structs such as
/// sparse-matrix triples.
#[macro_export]
macro_rules! impl_comm_msg_pod {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::msg::CommMsg for $t {
            #[inline]
            fn nbytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(1u8.nbytes(), 1);
        assert_eq!(1u64.nbytes(), 8);
        assert_eq!(1.0f64.nbytes(), 8);
        assert_eq!(true.nbytes(), 1);
        assert_eq!(().nbytes(), 0);
    }

    #[test]
    fn vec_includes_header() {
        let v = vec![0u32; 10];
        assert_eq!(v.nbytes(), 8 + 40);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.nbytes(), 8);
    }

    #[test]
    fn nested_vec() {
        let v = vec![vec![0u8; 4], vec![0u8; 6]];
        assert_eq!(v.nbytes(), 8 + (8 + 4) + (8 + 6));
    }

    #[test]
    fn tuple_and_option() {
        assert_eq!((1u32, 2u64).nbytes(), 12);
        assert_eq!(Some(7u64).nbytes(), 9);
        assert_eq!(Option::<u64>::None.nbytes(), 1);
    }

    #[derive(Clone, Copy)]
    struct Triple {
        _r: u64,
        _c: u64,
        _v: f64,
    }
    impl_comm_msg_pod!(Triple);

    #[test]
    fn pod_macro() {
        let t = Triple {
            _r: 0,
            _c: 0,
            _v: 0.0,
        };
        assert_eq!(t.nbytes(), std::mem::size_of::<Triple>());
    }
}
