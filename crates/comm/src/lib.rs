//! # elba-comm — in-process message-passing runtime for ELBA-RS
//!
//! The ICPP 2022 ELBA paper runs on MPI over thousands of ranks. Rust MPI
//! bindings are immature, so this crate provides the substitute substrate:
//! an in-process SPMD runtime where *each rank is an OS thread* and a
//! [`Comm`] handle exposes the MPI operations the paper's algorithms use:
//!
//! * point-to-point `send`/`recv` with tags (non-blocking buffered sends,
//!   matching-by-`(source, tag)` receives),
//! * non-blocking point-to-point `isend`/`irecv` returning request
//!   handles with MPI-style `wait`/`test`, the substrate for
//!   communication/computation overlap,
//! * the collectives used by ELBA: `barrier`, `bcast`, `gather`,
//!   `allgather`, `reduce`, `allreduce`, `reduce_scatter`, `alltoallv`,
//!   `exscan`, plus non-blocking `ibcast` (the pipelined SUMMA's engine)
//!   and the chunked non-blocking `ialltoallv` / `ialltoallv_stream`
//!   (the streaming k-mer exchange's engine),
//! * communicator `split` (colors/keys) for building the
//!   √P×√P [`grid::ProcGrid`] with row and column sub-communicators,
//! * per-phase wall-time and message-volume accounting ([`profile`]),
//! * an α–β (Hockney) machine model ([`model`]) that projects the recorded
//!   communication trace onto Cori-Haswell / Summit-like clusters so that
//!   the paper's 576–4096-rank strong-scaling figures can be regenerated
//!   in *shape* from laptop-scale runs.
//!
//! The message plane is pluggable ([`transport`]): by default ranks are
//! threads in one address space and payloads move as boxed values —
//! identical communication *structure* to MPI (who sends what to whom,
//! and how many bytes it would be on a wire) without serialization cost.
//! The socket backend ([`transport::socket`], [`SocketCluster`],
//! `elba launch`) instead hosts each rank in its own process and ships
//! every cross-rank message as a serialized frame over Unix-domain
//! sockets. Byte volumes are metered through [`msg::CommMsg`] *above*
//! the transport, so profiled traffic is byte-identical across backends.
//!
//! Both backends sit behind one backend-generic entry point, the
//! [`Runner`] builder:
//!
//! ```
//! use elba_comm::{Backend, Runner};
//!
//! // SPMD "hello": every rank contributes its rank id, all check the sum.
//! let results = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
//!     let sum: u64 = comm.allreduce(comm.rank() as u64, |a, b| a + b);
//!     sum
//! });
//! assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! ```

pub mod collectives;
pub mod error;
pub mod grid;
pub mod model;
pub mod msg;
pub mod profile;
pub mod runtime;
pub mod transport;

pub use collectives::{IalltoallvRequest, IbcastRequest};
pub use error::{CommError, FailureCause, FaultKill, RankFailure, SpmdFailure};
pub use grid::ProcGrid;
pub use model::{CostConstants, MachineModel, SchedulePlan, SpGemmEstimate};
pub use msg::CommMsg;
pub use profile::{PhaseProfile, Profile, RunProfile};
pub use runtime::{
    Backend, Cluster, Comm, MemCharge, Rank, RecvRequest, Runner, SendRequest, SharedMemCharge, Tag,
};
pub use transport::fault::{Fault, FaultKind, FaultMode, FaultPlan, Trigger};
pub use transport::socket::{run_worker, MeshConfig, SocketCluster, WorkerError};
pub use transport::Transport;
