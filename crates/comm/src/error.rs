//! Typed failure propagation for the SPMD runtime.
//!
//! A rank can die mid-run — its process SIGKILLed, its thread panicked,
//! or a fault plan killed it on purpose. Every blocking path in the comm
//! layer observes the death (closed-flag propagation, invariant 5) and
//! raises a [`CommError`] instead of parking forever. The error travels
//! as a panic payload ([`raise`]) so it unwinds through arbitrarily deep
//! collective internals without threading `Result` through every
//! infallible public signature; the harness boundary
//! (`run_spmd` / `run_worker`) catches it, classifies it, and surfaces a
//! typed [`SpmdFailure`] naming every rank that went down and why.

use std::any::Any;
use std::fmt;

use crate::runtime::Rank;

/// A communication operation failed because a peer rank is gone.
///
/// `rank` is always a **world** rank, even when the failure surfaced
/// inside a sub-communicator — the launcher and the tests name ranks in
/// world coordinates, and a sub-rank index would be meaningless outside
/// the communicator it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's `Comm` dropped, its process exited, or it broadcast an
    /// abort frame; `ctx` says what this rank was doing at the time.
    PeerGone { rank: Rank, ctx: String },
}

impl CommError {
    /// Append the enclosing operation to the context ("… during
    /// ialltoallv"), keeping the original phrasing intact.
    pub fn in_op(self, what: &str) -> CommError {
        match self {
            CommError::PeerGone { rank, ctx } => CommError::PeerGone {
                rank,
                ctx: format!("{ctx} during {what}"),
            },
        }
    }

    /// The world rank of the dead peer.
    pub fn peer(&self) -> Rank {
        match self {
            CommError::PeerGone { rank, .. } => *rank,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { rank, ctx } => {
                write!(
                    f,
                    "rank {rank} disconnected while {ctx} (peer rank died or panicked)"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Unwind the current rank with a typed error as the panic payload. The
/// SPMD harness catches it and reports a [`FailureCause::PeerGone`]
/// instead of a plain panic; outside a harness it behaves like any
/// panic, with the error's `Display` as the message.
pub fn raise(err: CommError) -> ! {
    std::panic::panic_any(err)
}

/// Keep the default panic hook from spraying `Box<dyn Any>` backtraces
/// for the *typed* unwinds ([`CommError`], [`FaultKill`]) the harnesses
/// always catch and classify — those are control flow, not crashes, and
/// "rank 2 died" must not read like four panics. Organic panics still
/// go through whatever hook was installed before. Idempotent; called by
/// every harness entry point.
pub(crate) fn silence_typed_unwinds() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<CommError>() || payload.is::<FaultKill>() {
                return;
            }
            previous(info);
        }));
    });
}

/// Panic payload used by the fault-injection transport's `kill:` action
/// in thread mode: distinguishes "this rank was killed on purpose by
/// the fault plan" from an organic panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultKill {
    /// World rank the plan killed.
    pub rank: Rank,
    /// The trigger that fired, in `FaultPlan` syntax.
    pub desc: String,
}

/// Why one rank of an SPMD run went down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// Unwound cleanly after observing a dead peer — a cascade victim,
    /// not the root cause.
    PeerGone(CommError),
    /// Killed on purpose by an injected fault plan.
    Killed(String),
    /// Organic panic (assertion, bug, explicit `panic!`).
    Panic(String),
}

impl FailureCause {
    /// Root causes sort before cascade effects: a killed or panicked
    /// rank explains the PeerGone unwinds around it.
    fn severity(&self) -> u8 {
        match self {
            FailureCause::Killed(_) => 0,
            FailureCause::Panic(_) => 1,
            FailureCause::PeerGone(_) => 2,
        }
    }
}

/// One rank's failure within an SPMD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// World rank that failed.
    pub rank: Rank,
    pub cause: FailureCause,
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cause {
            FailureCause::PeerGone(e) => write!(f, "rank {}: {e}", self.rank),
            FailureCause::Killed(d) => write!(f, "rank {} killed by fault plan ({d})", self.rank),
            FailureCause::Panic(m) => write!(f, "rank {} panicked: {m}", self.rank),
        }
    }
}

/// An SPMD run ended with at least one dead rank. Failures are ordered
/// most-likely-root-cause first (kills and panics before PeerGone
/// cascades, ties broken by rank), so [`SpmdFailure::primary`] — and the
/// first clause of the `Display` — names the rank that actually started
/// the failure, not a survivor that unwound because of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmdFailure {
    pub failures: Vec<RankFailure>,
}

impl SpmdFailure {
    pub(crate) fn new(mut failures: Vec<RankFailure>) -> SpmdFailure {
        failures.sort_by_key(|f| (f.cause.severity(), f.rank));
        SpmdFailure { failures }
    }

    /// The most plausible root cause.
    pub fn primary(&self) -> &RankFailure {
        &self.failures[0]
    }

    /// The failure recorded for `rank`, if that rank went down.
    pub fn rank(&self, rank: Rank) -> Option<&RankFailure> {
        self.failures.iter().find(|f| f.rank == rank)
    }
}

impl fmt::Display for SpmdFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{failure}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpmdFailure {}

/// Classify a caught panic payload from a rank thread or worker body.
pub(crate) fn classify_panic(payload: Box<dyn Any + Send>) -> FailureCause {
    match payload.downcast::<CommError>() {
        Ok(err) => FailureCause::PeerGone(*err),
        Err(payload) => match payload.downcast::<FaultKill>() {
            Ok(kill) => FailureCause::Killed(kill.desc),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                FailureCause::Panic(msg.to_owned())
            }
        },
    }
}
