//! SPMD runtime: [`Cluster`] spawns one thread per rank, each holding a
//! [`Comm`] — the analogue of an MPI communicator. A `Comm` posts and
//! receives opaque envelopes through a pluggable
//! [`Transport`](crate::transport) — the default backend keeps
//! ranks as threads in one address space (buffered, non-blocking sends;
//! blocking receives matched by `(source, tag)` park on a condvar
//! instead of polling), mirroring the eager-protocol MPI semantics that
//! ELBA relies on while staying oversubscription-friendly: a parked rank
//! burns no cycles its peers need. The socket backend moves the same
//! envelopes between *processes* as serialized frames — see
//! [`crate::transport`].
//!
//! On top of the blocking primitives sits a non-blocking layer:
//! [`Comm::isend`] / [`Comm::irecv`] return request handles
//! ([`SendRequest`], [`RecvRequest`]) with MPI-style `wait` / `test`, and
//! the time a rank spends blocked inside `wait` is attributed to the
//! profile's *wait* bucket — separate from blocking-receive time — so
//! communication/computation overlap is visible in a [`RunProfile`].

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::{classify_panic, raise, CommError, RankFailure, SpmdFailure};
use crate::msg::CommMsg;
use crate::profile::{lock_profile, Profile, RunProfile};
use crate::transport::fault::{FaultMode, FaultPlan, FaultTransport};
use crate::transport::in_process::InProcess;
use crate::transport::wire::WireReader;
use crate::transport::{Envelope, Payload, SplitKey, Transport};

/// Index of a process within a communicator.
pub type Rank = usize;
/// Message tag. User tags must be below [`Comm::USER_TAG_LIMIT`].
pub type Tag = u64;

/// Per-rank handle on a communicator (MPI_Comm analogue).
///
/// All operations take `&self`; a `Comm` is owned by exactly one rank
/// thread (invariant 3: threads within a rank never enter the comm
/// layer). Sub-communicators created through [`Comm::split`] share the
/// rank's [`Profile`] so that communication accounting aggregates across
/// the whole grid. Which backend carries the messages is invisible here:
/// everything below [`Comm::send`] goes through the rank's
/// [`Transport`] object.
pub struct Comm {
    rank: Rank,
    size: usize,
    transport: Arc<dyn Transport>,
    /// Out-of-order buffer: messages that arrived before being asked for.
    pending: RefCell<Vec<VecDeque<Envelope>>>,
    /// Collective sequence number; identical across ranks by SPMD order.
    coll_seq: Cell<u64>,
    profile: Arc<Mutex<Profile>>,
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Leave the communicator: peers' blocked receives on this rank
        // fail instead of hanging — the channel-disconnect semantics the
        // runtime has always had.
        self.transport.shutdown();
    }
}

impl Comm {
    /// Largest tag value available to user code; higher tags are reserved
    /// for internal collective sequencing.
    pub const USER_TAG_LIMIT: Tag = 1 << 32;

    /// Wrap a transport endpoint into a full communicator handle.
    pub(crate) fn from_transport(
        transport: Arc<dyn Transport>,
        profile: Arc<Mutex<Profile>>,
    ) -> Comm {
        let rank = transport.rank();
        let size = transport.size();
        Comm {
            rank,
            size,
            transport,
            pending: RefCell::new((0..size).map(|_| VecDeque::new()).collect()),
            coll_seq: Cell::new(0),
            profile,
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared per-rank profile (phase timers + communication volumes).
    pub fn profile_handle(&self) -> Arc<Mutex<Profile>> {
        Arc::clone(&self.profile)
    }

    /// Enter a named profiling phase; the phase ends when the returned
    /// guard drops. See [`crate::profile`].
    pub fn phase(&self, name: &str) -> crate::profile::PhaseGuard {
        crate::profile::PhaseGuard::enter(Arc::clone(&self.profile), name)
    }

    // ------------------------------------------------------------------
    // Memory accounting (see `elba_mem`)
    // ------------------------------------------------------------------

    /// Charge `bytes` against this rank's memory tracker for as long as
    /// the returned guard lives — the RAII face of
    /// [`elba_mem::MemTracker::charge`]. The bytes count toward the
    /// high-water of every phase active while they are resident. Use
    /// [`MemCharge::set`] to track a buffer that grows or shrinks.
    pub fn mem_charge(&self, bytes: usize) -> MemCharge {
        lock_profile(&self.profile).mem_mut().charge(bytes as u64);
        MemCharge {
            profile: Arc::clone(&self.profile),
            bytes: bytes as u64,
        }
    }

    /// Record a short-lived spike of `bytes` on top of the currently
    /// charged residency, without holding it (e.g. an exchange's peak
    /// buffer occupancy reported after the fact).
    pub fn record_mem_transient(&self, bytes: usize) {
        lock_profile(&self.profile)
            .mem_mut()
            .record_transient(bytes as u64);
    }

    /// Charge an `Arc`-shared block against this rank's tracker for as
    /// long as the guard lives, keyed by the allocation's address: the
    /// first guard a rank holds for a given block charges `bytes`, every
    /// further guard for the *same* block on the same rank is free — a
    /// shared broadcast payload is mem-charged **once per rank, not once
    /// per reference** (e.g. a SUMMA root whose resident matrix *is* the
    /// stage block it just "received" does not double-charge it). Ranks
    /// still charge independently, mirroring the per-rank copies a real
    /// distributed run would hold.
    pub fn mem_charge_shared<T: Send + Sync + 'static>(
        &self,
        block: &Arc<T>,
        bytes: usize,
    ) -> SharedMemCharge {
        let key = Arc::as_ptr(block) as *const () as usize;
        lock_profile(&self.profile)
            .mem_mut()
            .charge_shared(key, bytes as u64);
        SharedMemCharge {
            profile: Arc::clone(&self.profile),
            key,
            _block: Arc::clone(block) as Arc<dyn Any + Send + Sync>,
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point (blocking)
    // ------------------------------------------------------------------

    /// Buffered (non-blocking) send of `data` to `dst` with `tag`.
    pub fn send<T: CommMsg>(&self, dst: Rank, tag: Tag, data: T) {
        assert!(
            tag < Self::USER_TAG_LIMIT,
            "tag {tag} is reserved for internal use"
        );
        let bytes = data.nbytes();
        lock_profile(&self.profile).record_p2p(bytes);
        self.raw_send(dst, tag, data);
    }

    /// Blocking receive of a message from `src` carrying `tag`.
    ///
    /// Panics if the payload type does not match `T` (a programming error
    /// that MPI would surface as a datatype mismatch).
    pub fn recv<T: CommMsg>(&self, src: Rank, tag: Tag) -> T {
        assert!(
            tag < Self::USER_TAG_LIMIT,
            "tag {tag} is reserved for internal use"
        );
        self.raw_recv(src, tag)
    }

    // ------------------------------------------------------------------
    // Point-to-point (non-blocking)
    // ------------------------------------------------------------------

    /// Non-blocking send: the eager buffered protocol completes the send
    /// at post time (the payload is already in `dst`'s mailbox), so the
    /// returned [`SendRequest`] is born complete. It exists so call sites
    /// read like their MPI counterparts and so `wait`/`test` discipline
    /// is uniform across both request kinds.
    pub fn isend<T: CommMsg>(&self, dst: Rank, tag: Tag, data: T) -> SendRequest {
        assert!(
            tag < Self::USER_TAG_LIMIT,
            "tag {tag} is reserved for internal use"
        );
        let bytes = data.nbytes();
        lock_profile(&self.profile).record_p2p(bytes);
        self.raw_send(dst, tag, data);
        SendRequest(())
    }

    /// Non-blocking receive: returns immediately with a [`RecvRequest`]
    /// that can be `test`ed (poll) or `wait`ed (block). Time blocked in
    /// `wait` is booked to the profile's *wait* bucket, separate from
    /// blocking-`recv` communication time.
    pub fn irecv<T: CommMsg>(&self, src: Rank, tag: Tag) -> RecvRequest<'_, T> {
        assert!(
            tag < Self::USER_TAG_LIMIT,
            "tag {tag} is reserved for internal use"
        );
        self.raw_irecv(src, tag)
    }

    pub(crate) fn raw_irecv<T: CommMsg>(&self, src: Rank, tag: Tag) -> RecvRequest<'_, T> {
        RecvRequest {
            comm: self,
            src,
            tag,
            ready: None,
        }
    }

    /// Typed error for a dead peer, naming it by **world** rank.
    fn peer_gone(&self, src: Rank, ctx: String) -> CommError {
        CommError::PeerGone {
            rank: self.transport.world_rank(src),
            ctx,
        }
    }

    pub(crate) fn raw_send<T: CommMsg>(&self, dst: Rank, tag: Tag, data: T) {
        self.raw_send_checked(dst, tag, data)
            .unwrap_or_else(|e| raise(e))
    }

    pub(crate) fn raw_send_checked<T: CommMsg>(
        &self,
        dst: Rank,
        tag: Tag,
        data: T,
    ) -> Result<(), CommError> {
        self.transport
            .post(dst, Envelope::new(tag, data))
            .map_err(|_| self.peer_gone(dst, format!("accepting a send of tag {tag:#x}")))
    }

    pub(crate) fn raw_recv<T: CommMsg>(&self, src: Rank, tag: Tag) -> T {
        let start = Instant::now();
        let envelope = self.wait_for(src, tag);
        lock_profile(&self.profile).record_comm_time(start.elapsed().as_secs_f64());
        decode_payload(envelope, self.rank, src, tag)
    }

    fn wait_for(&self, src: Rank, tag: Tag) -> Envelope {
        self.wait_for_checked(src, tag).unwrap_or_else(|e| raise(e))
    }

    /// Blocking matched receive; `Err` once `src` is gone and drained
    /// instead of parking forever (every blocking path funnels here).
    fn wait_for_checked(&self, src: Rank, tag: Tag) -> Result<Envelope, CommError> {
        if let Some(envelope) = self.take_pending(src, tag) {
            return Ok(envelope);
        }
        loop {
            let envelope = self
                .transport
                .recv_from(src)
                .map_err(|_| self.peer_gone(src, format!("waiting for tag {tag:#x}")))?;
            if envelope.tag == tag {
                return Ok(envelope);
            }
            self.pending.borrow_mut()[src].push_back(envelope);
        }
    }

    /// Non-blocking matched probe: drain whatever has arrived from `src`
    /// into the pending buffer and take the first message matching
    /// `tag`, if any. A dead-and-drained peer is a typed error — this
    /// message can never arrive, and a `test()` poll loop must not spin
    /// forever on it.
    fn try_take_checked(&self, src: Rank, tag: Tag) -> Result<Option<Envelope>, CommError> {
        if let Some(envelope) = self.take_pending(src, tag) {
            return Ok(Some(envelope));
        }
        loop {
            match self.transport.try_recv_from(src) {
                Ok(Some(envelope)) if envelope.tag == tag => return Ok(Some(envelope)),
                Ok(Some(envelope)) => self.pending.borrow_mut()[src].push_back(envelope),
                Ok(None) => return Ok(None),
                Err(_) => {
                    return Err(self.peer_gone(src, format!("polling for tag {tag:#x}")));
                }
            }
        }
    }

    /// Change counter of this rank's inbox; see [`Comm::park_inbox`].
    pub(crate) fn inbox_seq(&self) -> u64 {
        self.transport.inbox_seq()
    }

    /// Park until the inbox changes relative to `seen` (any arrival or
    /// peer close). The caller must have read [`Comm::inbox_seq`]
    /// *before* its last probe sweep; arrivals in between wake it
    /// immediately. This is the condvar wakeup that replaced the
    /// `yield_now` spin loop in the chunked `ialltoallv` iterator.
    pub(crate) fn park_inbox(&self, seen: u64) {
        self.transport.park_inbox(seen);
    }

    fn take_pending(&self, src: Rank, tag: Tag) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        let queue = &mut pending[src];
        let pos = queue.iter().position(|e| e.tag == tag)?;
        queue.remove(pos)
    }

    // ------------------------------------------------------------------
    // Internal collective plumbing
    // ------------------------------------------------------------------

    /// Next internal tag; all ranks call collectives in the same order
    /// (SPMD), so sequence numbers line up across the communicator.
    pub(crate) fn next_coll_tag(&self, op: u8) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        (1 << 63) | ((op as u64) << 48) | (seq & ((1 << 48) - 1))
    }

    pub(crate) fn coll_send<T: CommMsg>(&self, dst: Rank, tag: Tag, data: T) {
        self.raw_send(dst, tag, data);
    }

    pub(crate) fn coll_send_checked<T: CommMsg>(
        &self,
        dst: Rank,
        tag: Tag,
        data: T,
    ) -> Result<(), CommError> {
        self.raw_send_checked(dst, tag, data)
    }

    /// Receive inside a collective: blocking time is *not* booked here —
    /// the collective itself records its full elapsed time once, so
    /// booking per-message waits too would double-count communication.
    pub(crate) fn coll_recv<T: CommMsg>(&self, src: Rank, tag: Tag) -> T {
        let envelope = self.wait_for(src, tag);
        decode_payload(envelope, self.rank, src, tag)
    }

    /// Blocking receive whose blocked time is booked to the *wait* bucket
    /// (used by request `wait` and the non-blocking collectives).
    pub(crate) fn wait_recv<T: CommMsg>(&self, src: Rank, tag: Tag) -> T {
        self.wait_recv_checked(src, tag)
            .unwrap_or_else(|e| raise(e))
    }

    pub(crate) fn wait_recv_checked<T: CommMsg>(
        &self,
        src: Rank,
        tag: Tag,
    ) -> Result<T, CommError> {
        let start = Instant::now();
        let envelope = self.wait_for_checked(src, tag)?;
        lock_profile(&self.profile).record_wait_time(start.elapsed().as_secs_f64());
        Ok(decode_payload(envelope, self.rank, src, tag))
    }

    /// Book time a non-blocking operation spent parked (poll loops that
    /// block without going through [`Comm::wait_recv`]).
    pub(crate) fn record_wait(&self, secs: f64) {
        lock_profile(&self.profile).record_wait_time(secs);
    }

    /// Book wall seconds this rank spent inside an intra-rank *threaded*
    /// local kernel (`elba-par` workers). Call sites record only when a
    /// kernel genuinely ran with more than one worker, so serial runs
    /// keep bit-identical profiles; the workers themselves never touch
    /// the comm layer — the owning rank thread records on their behalf
    /// after they joined.
    pub fn record_par_time(&self, secs: f64) {
        lock_profile(&self.profile).record_par_time(secs);
    }

    pub(crate) fn record_collective(&self, op: &'static str, bytes: usize, secs: f64) {
        let mut profile = lock_profile(&self.profile);
        profile.record_coll(op, bytes);
        profile.record_comm_time(secs);
    }

    pub(crate) fn record_coll_bytes(&self, op: &'static str, bytes: usize) {
        lock_profile(&self.profile).record_coll(op, bytes);
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Partition the communicator: ranks passing the same `color` form a new
    /// communicator; `key` orders ranks within it (ties broken by old rank).
    /// Collective — every rank of `self` must call it.
    ///
    /// The group membership is computed from an allgather, but the new
    /// communicator's channels come from the transport's message-free
    /// rendezvous: every member derives the same [`SplitKey`] (the SPMD
    /// collective sequence plus its color), so no leader has to ship
    /// bootstrap state.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let info = self.allgather((self.rank as u64, color as u64, key as u64));
        let mut group: Vec<(u64, u64)> = info
            .iter()
            .filter(|&&(_, c, _)| c as usize == color)
            .map(|&(r, _, k)| (k, r))
            .collect();
        group.sort_unstable();
        let new_size = group.len();
        let new_rank = group
            .iter()
            .position(|&(_, r)| r as usize == self.rank)
            .expect("calling rank must be in its own color group");
        let tag = self.next_coll_tag(op::SPLIT);
        let members: Vec<Rank> = group.iter().map(|&(_, r)| r as usize).collect();
        let transport = self.transport.split(
            &members,
            new_rank,
            SplitKey {
                seq: tag,
                color: color as u64,
            },
        );
        Comm {
            rank: new_rank,
            size: new_size,
            transport,
            pending: RefCell::new((0..new_size).map(|_| VecDeque::new()).collect()),
            coll_seq: Cell::new(0),
            profile: Arc::clone(&self.profile),
        }
    }

    /// Duplicate the communicator (same group, fresh channels/sequencing).
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank)
    }
}

/// Materialize a received envelope as a `T`: moved values (in-process
/// delivery) downcast, serialized frames (socket delivery) decode — the
/// typed receive is the one place the expected `T` is known, which is
/// what lets the wire format skip any type registry.
fn decode_payload<T: CommMsg>(envelope: Envelope, rank: Rank, src: Rank, tag: Tag) -> T {
    match envelope.payload {
        Payload::Value(value) => *value.into_any().downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {rank} received wrong payload type from rank {src} (tag {tag:#x}); \
                 expected {}",
                std::any::type_name::<T>()
            )
        }),
        Payload::Frame(bytes) => {
            let mut reader = WireReader::new(&bytes);
            T::wire_decode(&mut reader)
                .and_then(|value| reader.finish().map(|()| value))
                .unwrap_or_else(|e| {
                    panic!(
                        "rank {rank}: failed to decode frame from rank {src} (tag {tag:#x}) \
                         as {}: {e}",
                        std::any::type_name::<T>()
                    )
                })
        }
    }
}

/// RAII charge against a rank's memory tracker; created by
/// [`Comm::mem_charge`]. Dropping releases the bytes.
#[must_use = "dropping releases the charge immediately"]
pub struct MemCharge {
    profile: Arc<Mutex<Profile>>,
    bytes: u64,
}

impl MemCharge {
    /// Re-size the charge to `bytes` (the growing-accumulator pattern:
    /// one guard tracks a buffer whose footprint changes over time).
    pub fn set(&mut self, bytes: usize) {
        let bytes = bytes as u64;
        if bytes != self.bytes {
            lock_profile(&self.profile)
                .mem_mut()
                .adjust(self.bytes, bytes);
            self.bytes = bytes;
        }
    }

    /// Bytes currently held by this charge.
    pub fn bytes(&self) -> usize {
        self.bytes as usize
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        lock_profile(&self.profile).mem_mut().release(self.bytes);
    }
}

/// RAII charge for an `Arc`-shared block; created by
/// [`Comm::mem_charge_shared`]. The underlying bytes release when the
/// rank's *last* guard for the block drops.
#[must_use = "dropping releases this reference's share immediately"]
pub struct SharedMemCharge {
    profile: Arc<Mutex<Profile>>,
    key: usize,
    /// Keeps the charged allocation alive for the guard's lifetime. The
    /// tracker keys shared charges on the allocation *address*; if the
    /// last outside reference dropped while a charge was live, the
    /// address could be recycled by a later `Arc::new` and alias the
    /// stale entry (classic ABA) — phantom residency and never-charged
    /// blocks. Holding a reference makes recycling impossible while any
    /// guard is out. (Side effect by design: a consuming operation on a
    /// charged block — `Arc::try_unwrap` — copies instead, which is
    /// exactly the residency the live charge claims.)
    _block: Arc<dyn Any + Send + Sync>,
}

impl Drop for SharedMemCharge {
    fn drop(&mut self) {
        lock_profile(&self.profile)
            .mem_mut()
            .release_shared(self.key);
    }
}

/// Handle for a posted [`Comm::isend`]. Under the eager buffered protocol
/// the transfer is complete at post time; `wait`/`test` exist for MPI
/// call-shape parity and future rendezvous protocols.
#[must_use = "requests should be completed with wait() (or polled with test())"]
#[derive(Debug)]
pub struct SendRequest(());

impl SendRequest {
    /// Complete the send. Never blocks under the eager protocol.
    pub fn wait(self) {}

    /// Poll for completion; eager sends are always complete.
    pub fn test(&mut self) -> bool {
        true
    }
}

/// Handle for a posted [`Comm::irecv`].
///
/// `test` polls the mailbox without blocking; `wait` blocks until the
/// matching message arrives, booking the blocked time to the profile's
/// wait bucket. Dropping a request without `wait`ing is allowed and
/// never loses a message: if the message already arrived (including one
/// buffered by a successful `test`), the drop re-queues it for a later
/// matching receive, mirroring MPI_Cancel-free usage.
#[must_use = "requests should be completed with wait() (or polled with test())"]
pub struct RecvRequest<'c, T: CommMsg> {
    comm: &'c Comm,
    src: Rank,
    tag: Tag,
    ready: Option<T>,
}

impl<T: CommMsg> Drop for RecvRequest<'_, T> {
    fn drop(&mut self) {
        // A value buffered by test() belongs to the mailbox, not to this
        // abandoned request: put it back so a later recv/irecv on the
        // same (source, tag) still matches it. It re-enters at the FRONT
        // because test() always captured the oldest unconsumed match —
        // re-queuing behind younger same-tag messages would invert MPI's
        // per-(source, tag) delivery order. wait() takes the value out
        // before dropping, so completed requests re-queue nothing.
        if let Some(value) = self.ready.take() {
            self.comm.pending.borrow_mut()[self.src].push_front(Envelope::new(self.tag, value));
        }
    }
}

impl<T: CommMsg> RecvRequest<'_, T> {
    /// Poll for completion without blocking. Once this returns `true`,
    /// [`RecvRequest::wait`] returns the value without blocking.
    pub fn test(&mut self) -> bool {
        self.try_test().unwrap_or_else(|e| raise(e))
    }

    /// Like [`RecvRequest::test`], but a dead-and-drained source is a
    /// typed [`CommError`] instead of an unwind — the message can never
    /// arrive, and fallible callers (the chunked `ialltoallv` internals)
    /// need to release their own state cleanly before propagating.
    pub fn try_test(&mut self) -> Result<bool, CommError> {
        if self.ready.is_some() {
            return Ok(true);
        }
        if let Some(envelope) = self.comm.try_take_checked(self.src, self.tag)? {
            self.ready = Some(decode_payload(envelope, self.comm.rank, self.src, self.tag));
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until the message arrives and return it. Blocked time is
    /// recorded as wait time (not blocking-communication time), keeping
    /// overlap measurable.
    pub fn wait(mut self) -> T {
        if let Some(value) = self.ready.take() {
            return value;
        }
        self.comm.wait_recv(self.src, self.tag)
    }

    /// Like [`RecvRequest::wait`], but a dead source is a typed error.
    pub fn wait_checked(mut self) -> Result<T, CommError> {
        if let Some(value) = self.ready.take() {
            return Ok(value);
        }
        self.comm.wait_recv_checked(self.src, self.tag)
    }
}

/// Internal collective opcodes (namespace the reserved tag space).
pub(crate) mod op {
    pub const BARRIER: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const GATHER: u8 = 3;
    pub const REDUCE: u8 = 4;
    pub const ALLTOALLV: u8 = 6;
    pub const REDUCE_SCATTER: u8 = 7;
    pub const EXSCAN: u8 = 8;
    pub const SPLIT: u8 = 9;
    pub const IBCAST: u8 = 10;
    pub const IALLTOALLV: u8 = 11;
}

/// Stack size for rank threads. Generous because local assembly and
/// test oracles may recurse.
const STACK_SIZE: usize = 16 * 1024 * 1024;

/// The checked harness behind [`Runner`]: one thread per transport
/// endpoint, each wrapped in a fresh [`Comm`] with its own profile.
/// Every rank's unwind is caught and classified
/// ([`crate::FailureCause`]) instead of propagating, and the first
/// casualty proactively aborts the whole mesh so surviving ranks unwind
/// with `PeerGone` rather than parking in a collective forever. Returns
/// every rank's failure, root cause first.
///
/// Honors [`crate::FaultPlan::from_env`]: with `ELBA_FAULT_PLAN` set,
/// every rank's transport is wrapped in the fault layer (thread-mode
/// kills), which is how `elba launch --transport inprocess --fault`
/// reaches ranks it never constructs itself. A malformed plan panics —
/// operator input, fail loud.
pub(crate) fn run_spmd_checked<T, F>(
    transports: Vec<Arc<dyn Transport>>,
    f: F,
) -> Result<(Vec<T>, RunProfile), SpmdFailure>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    let plan = FaultPlan::from_env()
        .unwrap_or_else(|e| panic!("{}: {e}", crate::transport::fault::FAULT_PLAN_ENV));
    run_spmd_checked_with(transports, plan.as_ref(), f)
}

/// [`run_spmd_checked`] with an explicit fault plan (tests inject faults
/// here without touching the environment).
pub(crate) fn run_spmd_checked_with<T, F>(
    transports: Vec<Arc<dyn Transport>>,
    plan: Option<&FaultPlan>,
    f: F,
) -> Result<(Vec<T>, RunProfile), SpmdFailure>
where
    T: Send + 'static,
    F: Fn(Comm) -> T + Send + Sync + 'static,
{
    crate::error::silence_typed_unwinds();
    let transports: Vec<Arc<dyn Transport>> = match plan {
        Some(plan) => transports
            .into_iter()
            .map(|t| FaultTransport::wrap(t, plan, FaultMode::Thread))
            .collect(),
        None => transports,
    };
    let nranks = transports.len();
    let f = Arc::new(f);
    let mut handles = Vec::with_capacity(nranks);
    for (rank, transport) in transports.into_iter().enumerate() {
        debug_assert_eq!(transport.rank(), rank);
        let f = Arc::clone(&f);
        let profile = Arc::new(Mutex::new(Profile::new(rank)));
        let profile_out = Arc::clone(&profile);
        let abort_handle = Arc::clone(&transport);
        let comm = Comm::from_transport(transport, profile);
        let handle = std::thread::Builder::new()
            .name(format!("rank-{rank}"))
            .stack_size(STACK_SIZE)
            .spawn(move || {
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(comm)));
                if result.is_err() {
                    // The unwind dropped `comm` (orderly shutdown of the
                    // world communicator); the abort additionally closes
                    // this rank out of every sub-communicator — including
                    // ones it never joined — so no survivor stays parked.
                    abort_handle.abort();
                }
                (result, profile_out)
            })
            .expect("failed to spawn rank thread");
        handles.push(handle);
    }

    let mut results = Vec::with_capacity(nranks);
    let mut profiles = Vec::with_capacity(nranks);
    let mut failures: Vec<RankFailure> = Vec::new();
    for (rank, handle) in handles.into_iter().enumerate() {
        let (result, profile) = handle
            .join()
            .expect("rank thread cannot die outside catch_unwind");
        match result {
            Ok(value) => results.push(value),
            Err(payload) => failures.push(RankFailure {
                rank,
                cause: classify_panic(payload),
            }),
        }
        profiles.push(match Arc::try_unwrap(profile) {
            Ok(mutex) => mutex
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            Err(arc) => lock_profile(&arc).clone(),
        });
    }
    if failures.is_empty() {
        Ok((results, RunProfile::new(profiles)))
    } else {
        Err(SpmdFailure::new(failures))
    }
}

/// Which message plane a [`Runner`] builds its rank mesh on.
///
/// Both backends host ranks as threads of the calling process and run the
/// same supervised harness; they differ only in how messages move. Profiled
/// wire bytes are metered *above* the transport, so they are byte-identical
/// across backends (pinned by the transport-equivalence tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Ranks exchange boxed values through in-process mailboxes — the MPI
    /// communication *structure* without serialization cost. The default,
    /// and the right choice for tests, benches, and single-host serving.
    #[default]
    InProcess,
    /// Ranks exchange real serialized frames over Unix socketpairs — the
    /// same wire codec `elba launch` uses for separate worker processes,
    /// exercised without forking.
    Socket,
}

impl Backend {
    /// Build a world mesh of `nranks` transport endpoints on this backend.
    fn transports(self, nranks: usize) -> Vec<Arc<dyn Transport>> {
        match self {
            Backend::InProcess => InProcess::world(nranks),
            Backend::Socket => crate::transport::socket::SocketCluster::mesh(nranks),
        }
    }
}

/// The backend-generic SPMD entry point: build once, choose a [`Backend`],
/// a rank count, and (optionally) a [`FaultPlan`], then run.
///
/// `Runner` collapses what used to be eight near-duplicate cluster
/// functions (`Cluster::{run,run_profiled,try_run_profiled,
/// try_run_with_faults}` mirrored on `SocketCluster`) into one builder
/// that schedulers and tests can program against generically:
///
/// ```
/// use elba_comm::{Backend, Runner};
///
/// // SPMD "hello": every rank contributes its rank id, all check the sum.
/// let results = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
///     let sum: u64 = comm.allreduce(comm.rank() as u64, |a, b| a + b);
///     sum
/// });
/// assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
/// ```
///
/// A `Runner` is a plain value: cheap to clone, reusable across runs
/// (each run builds a fresh mesh, so a failed run never poisons the
/// next — this is what lets a serving pool "recycle" a rank group by
/// simply running the next job).
#[derive(Debug, Clone)]
pub struct Runner {
    backend: Backend,
    nranks: usize,
    faults: Option<FaultPlan>,
}

impl Default for Runner {
    /// One in-process rank, no fault plan.
    fn default() -> Self {
        Runner::new(Backend::InProcess)
    }
}

impl Runner {
    /// A runner on `backend` with 1 rank and no fault plan.
    pub fn new(backend: Backend) -> Self {
        Runner {
            backend,
            nranks: 1,
            faults: None,
        }
    }

    /// Set the number of ranks in the world communicator.
    pub fn ranks(mut self, nranks: usize) -> Self {
        assert!(nranks > 0, "runner needs at least one rank");
        self.nranks = nranks;
        self
    }

    /// Enforce an explicit [`FaultPlan`] below the comm layer: seeded
    /// delivery jitter, severed links, and ranks killed mid-run by
    /// message count or named phase (thread-mode kills — the doomed rank
    /// unwinds with a [`crate::FaultKill`] payload, classified as
    /// [`crate::FailureCause::Killed`]).
    ///
    /// Without this, the runner still honors [`FaultPlan::from_env`]
    /// (`ELBA_FAULT_PLAN`), which is how `elba launch --fault` reaches
    /// ranks it never constructs itself.
    pub fn faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = Some(plan.clone());
        self
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured rank count.
    pub fn rank_count(&self) -> usize {
        self.nranks
    }

    /// Run `f` on every rank; returns each rank's result, rank-ordered.
    /// A dead rank panics with the classified failure — use
    /// [`Runner::try_run_profiled`] to observe it as a typed error.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        self.run_profiled(f).0
    }

    /// Like [`Runner::run`] but also returns the per-rank profiles
    /// (phase wall times + communication volumes) recorded during the run.
    pub fn run_profiled<T, F>(&self, f: F) -> (Vec<T>, RunProfile)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        match self.try_run_profiled(f) {
            Ok(out) => out,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Like [`Runner::run_profiled`], but dead ranks surface as a typed
    /// [`SpmdFailure`] instead of a panic: each rank's unwind is caught
    /// and classified (fault kill / organic panic / `PeerGone` cascade),
    /// and every casualty is reported by rank, root cause first.
    pub fn try_run_profiled<T, F>(&self, f: F) -> Result<(Vec<T>, RunProfile), SpmdFailure>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        let transports = self.backend.transports(self.nranks);
        match &self.faults {
            Some(plan) => run_spmd_checked_with(transports, Some(plan), f),
            None => run_spmd_checked(transports, f),
        }
    }
}

/// Deprecated entry point: run an SPMD function over `nranks` in-process
/// ranks. Superseded by the backend-generic [`Runner`] builder; each
/// method survives as a one-line shim.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `nranks` ranks; returns each rank's result, rank-ordered.
    #[deprecated(note = "use Runner::new(Backend::InProcess).ranks(n).run(f)")]
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::InProcess).ranks(nranks).run(f)
    }

    /// Like `Cluster::run` but also returns the per-rank profiles.
    #[deprecated(note = "use Runner::new(Backend::InProcess).ranks(n).run_profiled(f)")]
    pub fn run_profiled<T, F>(nranks: usize, f: F) -> (Vec<T>, RunProfile)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .run_profiled(f)
    }

    /// Like `Cluster::run_profiled`, but dead ranks surface as a typed
    /// [`SpmdFailure`] instead of a panic.
    #[deprecated(note = "use Runner::new(Backend::InProcess).ranks(n).try_run_profiled(f)")]
    pub fn try_run_profiled<T, F>(nranks: usize, f: F) -> Result<(Vec<T>, RunProfile), SpmdFailure>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .try_run_profiled(f)
    }

    /// Like `Cluster::try_run_profiled`, but with an explicit [`FaultPlan`].
    #[deprecated(
        note = "use Runner::new(Backend::InProcess).ranks(n).faults(plan).try_run_profiled(f)"
    )]
    pub fn try_run_with_faults<T, F>(
        nranks: usize,
        plan: &FaultPlan,
        f: F,
    ) -> Result<(Vec<T>, RunProfile), SpmdFailure>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .faults(plan)
            .try_run_profiled(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Runner::new(Backend::InProcess)
            .ranks(1)
            .run(|comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_send_recv() {
        let out = Runner::new(Backend::InProcess).ranks(5).run(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            comm.recv::<u64>(prev, 7)
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                comm.send(1, 3, 30u64);
                0
            } else {
                // Receive in reverse tag order; earlier messages must wait
                // in the pending buffer without being lost.
                let c = comm.recv::<u64>(0, 3);
                let b = comm.recv::<u64>(0, 2);
                let a = comm.recv::<u64>(0, 1);
                (a + b + c) as usize
            }
        });
        assert_eq!(out[1], 60);
    }

    #[test]
    fn send_to_self() {
        let out = Runner::new(Backend::InProcess).ranks(3).run(|comm| {
            comm.send(comm.rank(), 9, comm.rank() as u64 * 3);
            comm.recv::<u64>(comm.rank(), 9)
        });
        assert_eq!(out, vec![0, 3, 6]);
    }

    #[test]
    fn moves_large_buffers_without_copy() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1u8; 1 << 20]);
                0usize
            } else {
                comm.recv::<Vec<u8>>(0, 0).len()
            }
        });
        assert_eq!(out[1], 1 << 20);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        let _ = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure");
            }
            // Rank 0 exits immediately; no deadlock because it never blocks.
            0
        });
    }

    #[test]
    fn split_into_rows() {
        // 6 ranks -> two colors {0,1,2} and {3,4,5}.
        let out = Runner::new(Backend::InProcess).ranks(6).run(|comm| {
            let color = comm.rank() / 3;
            let sub = comm.split(color, comm.rank());
            // ring within subgroup
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 1, comm.rank() as u64);
            let from_prev = sub.recv::<u64>(prev, 1);
            (sub.rank(), sub.size(), from_prev)
        });
        assert_eq!(out[0], (0, 3, 2));
        assert_eq!(out[3], (0, 3, 5));
        assert_eq!(out[5], (2, 3, 4));
    }

    #[test]
    fn split_reverse_key_reverses_ranks() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let sub = comm.split(0, comm.size() - comm.rank());
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn profiles_capture_phase_bytes() {
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(2)
            .run_profiled(|comm| {
                let _g = comm.phase("exchange");
                if comm.rank() == 0 {
                    comm.send(1, 0, vec![0u64; 100]);
                } else {
                    let _ = comm.recv::<Vec<u64>>(0, 0);
                }
            });
        let bytes = profile.total_p2p_bytes("exchange");
        assert_eq!(bytes, 8 + 800);
    }

    #[test]
    fn shared_charge_guard_pins_the_allocation() {
        // The guard must keep the charged block's allocation alive:
        // shared charges key on the allocation address, and a recycled
        // address would alias the stale tracker entry (ABA) — a second
        // block charged at the reused address would book zero bytes.
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(1)
            .run_profiled(|comm| {
                let _g = comm.phase("pin");
                let first = Arc::new(vec![0u8; 64]);
                let guard_a = comm.mem_charge_shared(&first, 64);
                drop(first); // guard keeps the allocation (and key) alive
                let second = Arc::new(vec![0u8; 64]); // cannot reuse the address
                let guard_b = comm.mem_charge_shared(&second, 64);
                let current = comm.profile_handle();
                let resident = crate::profile::lock_profile(&current).mem().current();
                drop((guard_a, guard_b));
                resident
            });
        assert_eq!(profile.max_mem_hw("pin"), 128, "both blocks must charge");
    }

    #[test]
    fn mem_charges_book_per_phase_high_water() {
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(2)
            .run_profiled(|comm| {
                let big = if comm.rank() == 1 { 4096 } else { 1024 };
                {
                    let _g = comm.phase("build");
                    let mut charge = comm.mem_charge(big);
                    charge.set(big * 2);
                    charge.set(big); // shrink again; hw keeps the peak
                    {
                        let _h = comm.phase("inner");
                        comm.record_mem_transient(100);
                    }
                    // charge dropped here: released before the next phase
                }
                let _g = comm.phase("after");
                comm.record_mem_transient(10);
            });
        assert_eq!(profile.max_mem_hw("build"), 8192);
        assert_eq!(profile.max_mem_hw("inner"), 4196, "residency + spike");
        assert_eq!(profile.max_mem_hw("after"), 10, "charge released");
        let merged = profile.merged_mem();
        assert_eq!(merged.high_water("build"), 8192);
        assert!(profile.render_table().contains("mem-hw"));
    }

    // ------------------------------------------------------------------
    // Non-blocking point-to-point
    // ------------------------------------------------------------------

    #[test]
    fn irecv_wait_delivers() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.isend(1, 4, 99u64).wait();
                0
            } else {
                let req = comm.irecv::<u64>(0, 4);
                req.wait()
            }
        });
        assert_eq!(out[1], 99);
    }

    #[test]
    fn irecv_test_polls_to_completion() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.isend(1, 4, 7u64).wait();
                0
            } else {
                let mut req = comm.irecv::<u64>(0, 4);
                while !req.test() {
                    std::thread::yield_now();
                }
                // test() already buffered the value: wait() must not block.
                req.wait()
            }
        });
        assert_eq!(out[1], 7);
    }

    #[test]
    fn nonblocking_interoperates_with_blocking() {
        // isend -> recv and send -> irecv must pair up, including when
        // requests are posted before the matching blocking op runs.
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                let req = comm.irecv::<u64>(1, 21);
                comm.isend(1, 20, 5u64).wait();
                req.wait()
            } else {
                let got = comm.recv::<u64>(0, 20);
                comm.send(0, 21, got * 2);
                got
            }
        });
        assert_eq!(out, vec![10, 5]);
    }

    #[test]
    fn multiple_outstanding_irecvs_match_by_tag() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.isend(1, 2, 200u64).wait();
                comm.isend(1, 1, 100u64).wait();
                0
            } else {
                let req_a = comm.irecv::<u64>(0, 1);
                let req_b = comm.irecv::<u64>(0, 2);
                let a = req_a.wait();
                let b = req_b.wait();
                (a + b) as usize
            }
        });
        assert_eq!(out[1], 300);
    }

    #[test]
    fn dropped_request_leaves_message_for_blocking_recv() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, 42u64);
                0
            } else {
                {
                    let mut req = comm.irecv::<u64>(0, 6);
                    // Poll until the message has actually arrived so the
                    // drop is the interesting case (value was buffered
                    // into the request by test()).
                    while !req.test() {
                        std::thread::yield_now();
                    }
                    // dropped without wait(): must re-queue the value
                }
                // The abandoned request's message stays receivable.
                comm.recv::<u64>(0, 6)
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn dropped_request_requeue_preserves_fifo_order() {
        // m1 buffered by test(), m2 already drained into pending behind
        // it: the drop must put m1 back at the FRONT so per-(src, tag)
        // delivery order survives the abandoned request.
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, 1u64); // m1
                comm.send(1, 6, 2u64); // m2
                comm.send(1, 7, 0u64); // unblocks rank 1's drain
                0
            } else {
                let mut req = comm.irecv::<u64>(0, 6);
                while !req.test() {
                    std::thread::yield_now();
                }
                // Force m2 into the pending buffer: the blocking recv on
                // tag 7 drains everything that has arrived from rank 0.
                let _ = comm.recv::<u64>(0, 7);
                drop(req); // m1 must re-enter ahead of m2
                let first = comm.recv::<u64>(0, 6);
                let second = comm.recv::<u64>(0, 6);
                (first * 10 + second) as usize
            }
        });
        assert_eq!(out[1], 12, "delivery order must stay m1 then m2");
    }

    #[test]
    #[should_panic(expected = "disconnected while polling")]
    fn test_poll_panics_when_peer_is_gone() {
        let _ = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                return; // exits without sending; its channels disconnect
            }
            let mut req = comm.irecv::<u64>(0, 5);
            while !req.test() {
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn dropped_unarrived_request_loses_nothing() {
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 6, 9u64);
                0
            } else {
                drop(comm.irecv::<u64>(0, 6)); // dropped before any send
                comm.barrier();
                comm.recv::<u64>(0, 6)
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn wait_time_is_attributed_separately() {
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(2)
            .run_profiled(|comm| {
                let _g = comm.phase("overlap");
                if comm.rank() == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    comm.isend(1, 3, 1u64).wait();
                } else {
                    let req = comm.irecv::<u64>(0, 3);
                    let _ = req.wait();
                }
            });
        // Rank 1 blocked in wait() for ~20ms; none of it may be booked as
        // blocking-communication time.
        assert!(profile.max_wait_secs("overlap") > 0.005);
        assert!(profile.max_comm_secs("overlap") < 0.005);
    }
}
