//! SPMD runtime: [`Cluster`] spawns one thread per rank, each holding a
//! [`Comm`] — the analogue of an MPI communicator. Point-to-point messages
//! travel over per-pair unbounded channels (buffered, non-blocking sends;
//! blocking receives matched by `(source, tag)`), exactly mirroring the
//! eager-protocol MPI semantics that ELBA relies on.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::msg::CommMsg;
use crate::profile::{Profile, RunProfile};

/// Index of a process within a communicator.
pub type Rank = usize;
/// Message tag. User tags must be below [`Comm::USER_TAG_LIMIT`].
pub type Tag = u64;

pub(crate) struct Envelope {
    tag: Tag,
    payload: Box<dyn Any + Send>,
}

/// Per-rank handle on a communicator (MPI_Comm analogue).
///
/// All operations take `&self`; a `Comm` is owned by exactly one rank
/// thread. Sub-communicators created through [`Comm::split`] share the
/// rank's [`Profile`] so that communication accounting aggregates across
/// the whole grid.
pub struct Comm {
    rank: Rank,
    size: usize,
    /// senders[dst]: channel into rank `dst`'s mailbox for messages from us.
    senders: Vec<Sender<Envelope>>,
    /// receivers[src]: our mailbox for messages from rank `src`.
    receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order buffer: messages that arrived before being asked for.
    pending: RefCell<Vec<VecDeque<Envelope>>>,
    /// Collective sequence number; identical across ranks by SPMD order.
    coll_seq: Cell<u64>,
    profile: Arc<Mutex<Profile>>,
}

impl Comm {
    /// Largest tag value available to user code; higher tags are reserved
    /// for internal collective sequencing.
    pub const USER_TAG_LIMIT: Tag = 1 << 32;

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared per-rank profile (phase timers + communication volumes).
    pub fn profile_handle(&self) -> Arc<Mutex<Profile>> {
        Arc::clone(&self.profile)
    }

    /// Enter a named profiling phase; the phase ends when the returned
    /// guard drops. See [`crate::profile`].
    pub fn phase(&self, name: &str) -> crate::profile::PhaseGuard {
        crate::profile::PhaseGuard::enter(Arc::clone(&self.profile), name)
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Buffered (non-blocking) send of `data` to `dst` with `tag`.
    pub fn send<T: CommMsg>(&self, dst: Rank, tag: Tag, data: T) {
        assert!(tag < Self::USER_TAG_LIMIT, "tag {tag} is reserved for internal use");
        let bytes = data.nbytes();
        self.profile.lock().record_p2p(bytes);
        self.raw_send(dst, tag, Box::new(data));
    }

    /// Blocking receive of a message from `src` carrying `tag`.
    ///
    /// Panics if the payload type does not match `T` (a programming error
    /// that MPI would surface as a datatype mismatch).
    pub fn recv<T: CommMsg>(&self, src: Rank, tag: Tag) -> T {
        assert!(tag < Self::USER_TAG_LIMIT, "tag {tag} is reserved for internal use");
        self.raw_recv(src, tag)
    }

    pub(crate) fn raw_send(&self, dst: Rank, tag: Tag, payload: Box<dyn Any + Send>) {
        self.senders[dst]
            .send(Envelope { tag, payload })
            .unwrap_or_else(|_| panic!("rank {} unreachable from rank {}", dst, self.rank));
    }

    pub(crate) fn raw_recv<T: Send + 'static>(&self, src: Rank, tag: Tag) -> T {
        let start = Instant::now();
        let envelope = self.wait_for(src, tag);
        self.profile.lock().record_comm_time(start.elapsed().as_secs_f64());
        *envelope.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {} received wrong payload type from rank {src} (tag {tag:#x}); \
                 expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    fn wait_for(&self, src: Rank, tag: Tag) -> Envelope {
        // Check messages that already arrived out of order.
        {
            let mut pending = self.pending.borrow_mut();
            let queue = &mut pending[src];
            if let Some(pos) = queue.iter().position(|e| e.tag == tag) {
                return queue.remove(pos).expect("position was just found");
            }
        }
        loop {
            let envelope = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: rank {src} disconnected while waiting for tag {tag:#x} \
                     (peer rank likely panicked)",
                    self.rank
                )
            });
            if envelope.tag == tag {
                return envelope;
            }
            self.pending.borrow_mut()[src].push_back(envelope);
        }
    }

    // ------------------------------------------------------------------
    // Internal collective plumbing
    // ------------------------------------------------------------------

    /// Next internal tag; all ranks call collectives in the same order
    /// (SPMD), so sequence numbers line up across the communicator.
    pub(crate) fn next_coll_tag(&self, op: u8) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        (1 << 63) | ((op as u64) << 48) | (seq & ((1 << 48) - 1))
    }

    pub(crate) fn coll_send<T: Send + 'static>(&self, dst: Rank, tag: Tag, data: T) {
        self.raw_send(dst, tag, Box::new(data));
    }

    /// Receive inside a collective: blocking time is *not* booked here —
    /// the collective itself records its full elapsed time once, so
    /// booking per-message waits too would double-count communication.
    pub(crate) fn coll_recv<T: Send + 'static>(&self, src: Rank, tag: Tag) -> T {
        let envelope = self.wait_for(src, tag);
        *envelope.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {} received wrong payload type from rank {src} (tag {tag:#x});                  expected {}",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    pub(crate) fn record_collective(&self, op: &'static str, bytes: usize, secs: f64) {
        let mut profile = self.profile.lock();
        profile.record_coll(op, bytes);
        profile.record_comm_time(secs);
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Partition the communicator: ranks passing the same `color` form a new
    /// communicator; `key` orders ranks within it (ties broken by old rank).
    /// Collective — every rank of `self` must call it.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let info = self.allgather((self.rank as u64, color as u64, key as u64));
        let mut group: Vec<(u64, u64)> = info
            .iter()
            .filter(|&&(_, c, _)| c as usize == color)
            .map(|&(r, _, k)| (k, r))
            .collect();
        group.sort_unstable();
        let new_size = group.len();
        let new_rank = group
            .iter()
            .position(|&(_, r)| r as usize == self.rank)
            .expect("calling rank must be in its own color group");
        let leader = group[0].1 as usize;
        let tag = self.next_coll_tag(op::SPLIT);

        if self.rank == leader {
            // Build the new_size x new_size channel mesh and deal each
            // member its row of senders and column of receivers.
            let mut send_rows: Vec<Vec<Sender<Envelope>>> =
                (0..new_size).map(|_| Vec::with_capacity(new_size)).collect();
            let mut recv_rows: Vec<Vec<Receiver<Envelope>>> =
                (0..new_size).map(|_| Vec::with_capacity(new_size)).collect();
            for src in 0..new_size {
                for dst in 0..new_size {
                    let (tx, rx) = unbounded();
                    send_rows[src].push(tx);
                    recv_rows[dst].push(rx);
                }
            }
            // recv_rows[dst] currently interleaved by construction order:
            // iteration pushes rx for (src, dst) while sweeping src outer,
            // dst inner, so recv_rows[dst] receives entries in src order. OK.
            for ((slot, &(_, old_rank)), receivers) in
                group.iter().enumerate().zip(recv_rows.into_iter())
            {
                let senders_for_member = std::mem::take(&mut send_rows[slot]);
                self.raw_send(
                    old_rank as usize,
                    tag,
                    Box::new(SplitPack {
                        new_rank: slot,
                        senders: senders_for_member,
                        receivers,
                    }),
                );
            }
        }

        let pack: SplitPack = self.raw_recv(leader, tag);
        debug_assert_eq!(pack.new_rank, new_rank);
        Comm {
            rank: pack.new_rank,
            size: new_size,
            senders: pack.senders,
            receivers: pack.receivers,
            pending: RefCell::new((0..new_size).map(|_| VecDeque::new()).collect()),
            coll_seq: Cell::new(0),
            profile: Arc::clone(&self.profile),
        }
    }

    /// Duplicate the communicator (same group, fresh channels/sequencing).
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank)
    }
}

struct SplitPack {
    new_rank: usize,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
}

/// Internal collective opcodes (namespace the reserved tag space).
pub(crate) mod op {
    pub const BARRIER: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const GATHER: u8 = 3;
    pub const REDUCE: u8 = 4;
    pub const ALLTOALLV: u8 = 6;
    pub const REDUCE_SCATTER: u8 = 7;
    pub const EXSCAN: u8 = 8;
    pub const SPLIT: u8 = 9;
}

/// Entry point: run an SPMD function over `nranks` in-process ranks.
pub struct Cluster;

impl Cluster {
    /// Stack size for rank threads. Generous because local assembly and
    /// test oracles may recurse.
    const STACK_SIZE: usize = 16 * 1024 * 1024;

    /// Run `f` on `nranks` ranks; returns each rank's result, rank-ordered.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_profiled(nranks, f).0
    }

    /// Like [`Cluster::run`] but also returns the per-rank profiles
    /// (phase wall times + communication volumes) recorded during the run.
    pub fn run_profiled<T, F>(nranks: usize, f: F) -> (Vec<T>, RunProfile)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(nranks > 0, "cluster needs at least one rank");
        // Channel mesh: (src, dst) -> channel.
        let mut send_rows: Vec<Vec<Sender<Envelope>>> =
            (0..nranks).map(|_| Vec::with_capacity(nranks)).collect();
        let mut recv_rows: Vec<Vec<Receiver<Envelope>>> =
            (0..nranks).map(|_| Vec::with_capacity(nranks)).collect();
        for src in 0..nranks {
            for dst in 0..nranks {
                let (tx, rx) = unbounded();
                send_rows[src].push(tx);
                recv_rows[dst].push(rx);
            }
        }

        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(nranks);
        for (rank, (senders, receivers)) in
            send_rows.into_iter().zip(recv_rows.into_iter()).enumerate()
        {
            let f = Arc::clone(&f);
            let profile = Arc::new(Mutex::new(Profile::new(rank)));
            let profile_out = Arc::clone(&profile);
            let comm = Comm {
                rank,
                size: nranks,
                senders,
                receivers,
                pending: RefCell::new((0..nranks).map(|_| VecDeque::new()).collect()),
                coll_seq: Cell::new(0),
                profile,
            };
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(Self::STACK_SIZE)
                .spawn(move || {
                    let result = f(comm);
                    (result, profile_out)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }

        let mut results = Vec::with_capacity(nranks);
        let mut profiles = Vec::with_capacity(nranks);
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((result, profile)) => {
                    results.push(result);
                    profiles.push(
                        Arc::try_unwrap(profile)
                            .map(Mutex::into_inner)
                            .unwrap_or_else(|arc| arc.lock().clone()),
                    );
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            }
        }
        (results, RunProfile::new(profiles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_send_recv() {
        let out = Cluster::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            comm.recv::<u64>(prev, 7)
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                comm.send(1, 3, 30u64);
                0
            } else {
                // Receive in reverse tag order; earlier messages must wait
                // in the pending buffer without being lost.
                let c = comm.recv::<u64>(0, 3);
                let b = comm.recv::<u64>(0, 2);
                let a = comm.recv::<u64>(0, 1);
                (a + b + c) as usize
            }
        });
        assert_eq!(out[1], 60);
    }

    #[test]
    fn send_to_self() {
        let out = Cluster::run(3, |comm| {
            comm.send(comm.rank(), 9, comm.rank() as u64 * 3);
            comm.recv::<u64>(comm.rank(), 9)
        });
        assert_eq!(out, vec![0, 3, 6]);
    }

    #[test]
    fn moves_large_buffers_without_copy() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1u8; 1 << 20]);
                0usize
            } else {
                comm.recv::<Vec<u8>>(0, 0).len()
            }
        });
        assert_eq!(out[1], 1 << 20);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        let _ = Cluster::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("deliberate failure");
            }
            // Rank 0 exits immediately; no deadlock because it never blocks.
            0
        });
    }

    #[test]
    fn split_into_rows() {
        // 6 ranks -> two colors {0,1,2} and {3,4,5}.
        let out = Cluster::run(6, |comm| {
            let color = comm.rank() / 3;
            let sub = comm.split(color, comm.rank());
            // ring within subgroup
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 1, comm.rank() as u64);
            let from_prev = sub.recv::<u64>(prev, 1);
            (sub.rank(), sub.size(), from_prev)
        });
        assert_eq!(out[0], (0, 3, 2));
        assert_eq!(out[3], (0, 3, 5));
        assert_eq!(out[5], (2, 3, 4));
    }

    #[test]
    fn split_reverse_key_reverses_ranks() {
        let out = Cluster::run(4, |comm| {
            let sub = comm.split(0, comm.size() - comm.rank());
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn profiles_capture_phase_bytes() {
        let (_, profile) = Cluster::run_profiled(2, |comm| {
            let _g = comm.phase("exchange");
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u64; 100]);
            } else {
                let _ = comm.recv::<Vec<u64>>(0, 0);
            }
        });
        let bytes = profile.total_p2p_bytes("exchange");
        assert_eq!(bytes, 8 + 800);
    }
}
