//! Pluggable rank-to-rank message plane.
//!
//! Everything above this module — point-to-point sends, collectives,
//! credit/ack flow control, byte accounting — is transport-agnostic: a
//! [`crate::Comm`] posts and receives opaque [`Envelope`]s through a
//! [`Transport`] object and never knows whether its peers are threads in
//! the same address space or processes on the other end of a socket.
//!
//! Two backends ship:
//!
//! * `in_process` — the original mailbox runtime (one OS thread per
//!   rank, payloads move as boxed values without serialization). The
//!   tier-1 default, used by [`crate::Cluster`].
//! * [`socket`] — ranks are processes exchanging length-prefixed
//!   serialized frames over Unix-domain sockets ([`wire`] defines the
//!   format). Used by `elba launch` and by [`crate::SocketCluster`].
//!
//! The wire-byte model (invariant 2) lives *above* the transport: bytes
//! are booked from [`crate::CommMsg::nbytes`] at send time, so profiled
//! traffic is byte-identical across backends even though only one of
//! them ever serializes anything.

pub mod fault;
pub(crate) mod in_process;
pub mod socket;
pub mod wire;

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::msg::CommMsg;
use crate::runtime::{Rank, Tag};

/// Object-safe face of a [`CommMsg`] payload held by value: the
/// in-process fast path moves it as `Any`, the socket path serializes it
/// on demand.
pub(crate) trait WireAny: Send {
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
    fn encode(&self, out: &mut Vec<u8>);
}

impl<T: CommMsg> WireAny for T {
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.wire_encode(out);
    }
}

/// How a message's payload is carried between post and receive.
pub(crate) enum Payload {
    /// A live value (in-process delivery, or a send-to-self over the
    /// socket backend): no serialization ever happens.
    Value(Box<dyn WireAny>),
    /// A serialized frame body from another process; decoded lazily at
    /// the typed receive, where `T` is known.
    Frame(Vec<u8>),
}

impl Payload {
    /// Serialize for a cross-process hop (no-op if already a frame).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Value(v) => v.encode(out),
            Payload::Frame(bytes) => out.extend_from_slice(bytes),
        }
    }
}

/// One unit of rank-to-rank traffic: a tagged payload. Opaque outside
/// the comm crate — transports move envelopes, they never look inside.
pub struct Envelope {
    pub(crate) tag: Tag,
    pub(crate) payload: Payload,
}

impl Envelope {
    pub(crate) fn new<T: CommMsg>(tag: Tag, value: T) -> Envelope {
        Envelope {
            tag,
            payload: Payload::Value(Box::new(value)),
        }
    }

    /// The message tag, keying `(source, tag)` receive matching.
    pub fn tag(&self) -> Tag {
        self.tag
    }
}

/// The destination (or source) rank can no longer exchange messages:
/// its `Comm` dropped, or its process exited. The closed-flag signal
/// every backend must propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerGone;

/// Identity of one `split` call, identical on every participating rank:
/// the parent communicator's collective sequence tag plus the caller's
/// color. Backends use it to rendezvous the members of the new
/// communicator without exchanging messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitKey {
    pub(crate) seq: u64,
    pub(crate) color: u64,
}

/// A rank's connection to one communicator's message plane.
///
/// One `Transport` is held per `Comm` per rank; all methods take `&self`
/// (the owning rank thread is the only caller, per invariant 3, but
/// inbound delivery may happen from other threads — socket readers —
/// so implementations must be `Sync`).
///
/// ## Contract
///
/// * **Delivery order**: envelopes posted from rank `s` to rank `d` are
///   received by `d` in posting order (per-source FIFO). Matching by
///   `(source, tag, seq)` above the transport relies on it.
/// * **Non-blocking post**: [`Transport::post`] buffers and returns; it
///   never waits for the receiver (the eager MPI protocol the runtime
///   models). A post may fail with [`PeerGone`] only if the destination
///   is permanently unreachable.
/// * **Closed-flag propagation**: after [`Transport::shutdown`], every
///   other member must observe this rank as closed — blocked
///   [`Transport::recv_from`] calls on it return `Err(PeerGone)` once
///   drained, never hang.
/// * **Liveness for parking** (invariant 5): [`Transport::park_inbox`]
///   returns once the inbox *changes* relative to the observed
///   [`Transport::inbox_seq`] — any arrival or any peer close counts.
///   Implementations must bump the sequence for every such event, or
///   flow-controlled exchanges deadlock on lost wakeups.
/// * **Wire bytes**: transports move envelopes; they do **not** account
///   bytes. All byte accounting happens above, from
///   [`CommMsg::nbytes`], which is what keeps profiled traffic
///   byte-identical across backends (invariant 2).
pub trait Transport: Send + Sync {
    /// This rank's index within the communicator.
    fn rank(&self) -> Rank;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Buffered send: enqueue `envelope` for rank `dst` (which may be
    /// this rank) and return without waiting for the receiver.
    fn post(&self, dst: Rank, envelope: Envelope) -> Result<(), PeerGone>;

    /// Blocking receive of the next envelope from `src`, in posting
    /// order, any tag. `Err(PeerGone)` once `src` has shut down and its
    /// queue is drained.
    fn recv_from(&self, src: Rank) -> Result<Envelope, PeerGone>;

    /// Non-blocking probe: `Ok(Some)` with the next envelope from
    /// `src`, `Ok(None)` if nothing has arrived, `Err(PeerGone)` once
    /// `src` is gone and drained.
    fn try_recv_from(&self, src: Rank) -> Result<Option<Envelope>, PeerGone>;

    /// Change counter of this rank's inbox; bumped on every arrival and
    /// every peer close. Pair with [`Transport::park_inbox`].
    fn inbox_seq(&self) -> u64;

    /// Park the calling thread until the inbox changes relative to
    /// `seen`. Callers read [`Transport::inbox_seq`] *before* their
    /// probe sweep so an arrival in between wakes them immediately (no
    /// lost-wakeup race).
    fn park_inbox(&self, seen: u64);

    /// Leave the communicator: refuse further inbound messages and
    /// propagate this rank's closed flag to every member. Called when
    /// the owning `Comm` drops.
    fn shutdown(&self);

    /// The **world** rank of communicator member `member`. Identity on a
    /// world communicator; sub-communicators translate through their
    /// membership. Errors and fault plans always speak world ranks —
    /// a sub-rank index is meaningless outside its communicator.
    fn world_rank(&self, member: Rank) -> Rank;

    /// Proactively tear down this rank's presence in the **whole mesh**,
    /// not just this communicator: every other rank must observe this
    /// rank as dead in *every* communicator — including ones this rank
    /// never joined a counterpart of — so no survivor stays parked on a
    /// channel that can never produce. Called by the SPMD harness after
    /// catching a rank's panic; [`Transport::shutdown`] (the orderly
    /// per-communicator goodbye) still runs when each `Comm` drops.
    fn abort(&self) {
        self.shutdown();
    }

    /// Build this rank's transport for a sub-communicator. `members`
    /// lists the parent ranks of the new communicator in new-rank
    /// order; `my_rank` is this rank's index in it. Every member calls
    /// with identical `members` and `key` (the SPMD guarantee of
    /// `Comm::split`); backends rendezvous on `key` — no messages are
    /// exchanged.
    fn split(&self, members: &[Rank], my_rank: Rank, key: SplitKey) -> Arc<dyn Transport>;
}

// ----------------------------------------------------------------------
// Mailbox: the condvar-backed inbox both backends deliver into
// ----------------------------------------------------------------------

/// Outcome of a non-blocking mailbox probe.
pub(crate) enum TryRecvError {
    Empty,
    Disconnected,
}

struct MailboxState {
    /// Arrived-but-unclaimed messages, one FIFO per source rank.
    queues: Vec<VecDeque<Envelope>>,
    /// Sources whose sending side is permanently done.
    closed: Vec<bool>,
    /// Bumped on every push/close; lets waiters park until *anything*
    /// changes ([`Mailbox::park`]) without a lost-wakeup race.
    seq: u64,
    /// Set when the owning rank's `Comm` drops; deliveries then fail
    /// like sends into a dropped channel.
    owner_gone: bool,
}

/// One rank's inbox: every peer pushes into it, only the owner pops.
/// In-process ranks push directly; the socket backend's reader threads
/// push decoded frames. The condvar is the wakeup that keeps blocked
/// receives (and the chunked `ialltoallv` iterator) from spinning.
pub(crate) struct Mailbox {
    state: Mutex<MailboxState>,
    arrived: Condvar,
}

impl Mailbox {
    pub(crate) fn new(nsources: usize) -> Arc<Self> {
        Arc::new(Mailbox {
            state: Mutex::new(MailboxState {
                queues: (0..nsources).map(|_| VecDeque::new()).collect(),
                closed: vec![false; nsources],
                seq: 0,
                owner_gone: false,
            }),
            arrived: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MailboxState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Deliver a message from `src`; `Err` if the owner is gone (same
    /// contract as sending into a dropped channel).
    pub(crate) fn push(&self, src: Rank, envelope: Envelope) -> Result<(), ()> {
        let mut st = self.lock();
        if st.owner_gone {
            return Err(());
        }
        st.queues[src].push_back(envelope);
        st.seq += 1;
        drop(st);
        self.arrived.notify_all();
        Ok(())
    }

    /// Mark `src` as permanently done (its `Comm` dropped or its
    /// process hung up).
    pub(crate) fn close(&self, src: Rank) {
        let mut st = self.lock();
        st.closed[src] = true;
        st.seq += 1;
        drop(st);
        self.arrived.notify_all();
    }

    pub(crate) fn mark_owner_gone(&self) {
        self.lock().owner_gone = true;
    }

    /// Blocking pop of the next message from `src` (any tag), parking on
    /// the condvar until one arrives. `Err(())` if `src` closed with an
    /// empty queue.
    pub(crate) fn recv(&self, src: Rank) -> Result<Envelope, ()> {
        let mut st = self.lock();
        loop {
            if let Some(envelope) = st.queues[src].pop_front() {
                return Ok(envelope);
            }
            if st.closed[src] {
                return Err(());
            }
            st = self
                .arrived
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking pop of the next message from `src` (any tag).
    pub(crate) fn try_recv(&self, src: Rank) -> Result<Envelope, TryRecvError> {
        let mut st = self.lock();
        match st.queues[src].pop_front() {
            Some(envelope) => Ok(envelope),
            None if st.closed[src] => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Current change counter; pair with [`Mailbox::park`].
    pub(crate) fn seq(&self) -> u64 {
        self.lock().seq
    }

    /// Park until the mailbox changes relative to `seen` (a push or a
    /// close from any source). Callers read `seq()` *before* their probe
    /// sweep so an arrival between sweep and park wakes them immediately.
    pub(crate) fn park(&self, seen: u64) {
        let mut st = self.lock();
        while st.seq == seen {
            st = self
                .arrived
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}
