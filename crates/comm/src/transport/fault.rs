//! Deterministic, seeded fault injection below the comm layer.
//!
//! A [`FaultPlan`] describes *when ranks die* — kill rank `r` after its
//! N-th posted or received message or while a named profiling phase is
//! active, sever one peer link, jitter delivery with a seeded RNG — and
//! a `FaultTransport` wrapper enforces it around any backend. The
//! wrapper sits **below** the wire-byte model (bytes are booked from
//! [`crate::CommMsg::nbytes`] above the transport), so a plan that
//! injects only delay perturbs scheduling without moving a single
//! profiled byte, and a no-fault plan is not wrapped at all.
//!
//! Plans are strings so they can cross a process boundary in one
//! environment variable (`ELBA_FAULT_PLAN`, set per worker by
//! `elba launch --fault`):
//!
//! ```text
//! kill:1@posts:5000            rank 1 dies after its 5000th post
//! sigkill:2@phase:Alignment    rank 2 is SIGKILLed inside Alignment
//! sever:0-3@recvs:100          link 0<->3 cut once either end hits 100 recvs
//! delay:50;seed:7              ≤50µs seeded jitter before every post
//! kill:0@posts:10;delay:5      clauses compose with ';'
//! ```
//!
//! How a rank dies depends on where it lives ([`FaultMode`]): a thread
//! rank unwinds with a [`FaultKill`] payload the harness classifies as
//! [`crate::FailureCause::Killed`]; a process rank exits with
//! [`FAULT_KILLED_EXIT`] (soft) or SIGKILLs itself (hard), and the
//! launcher's exit taxonomy tells the two apart. Either way the mesh
//! abort machinery (see [`crate::transport`]) turns the death into
//! typed `PeerGone` errors on every survivor instead of a hang.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::{Envelope, PeerGone, SplitKey, Transport};
use crate::error::FaultKill;
use crate::runtime::Rank;

/// Process exit code of a rank soft-killed by a fault plan. Kept in the
/// comm crate because the dying worker process is the one that has to
/// use it; `elba`'s exit taxonomy re-exports it as `exit::FAULT_KILLED`.
pub const FAULT_KILLED_EXIT: u8 = 14;

/// Environment variable carrying a serialized [`FaultPlan`] into worker
/// processes and harnesses ([`FaultPlan::from_env`]).
pub const FAULT_PLAN_ENV: &str = "ELBA_FAULT_PLAN";

/// When a fault fires, relative to this rank's own transport activity.
/// Counter triggers are exact and deterministic (the transport call
/// sequence is fixed by the algorithm, not by timing); phase triggers
/// fire at the first transport operation while the named profiling
/// phase is active on the rank's stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fire at the first transport operation.
    Now,
    /// Fire once this rank has posted `n` envelopes.
    Posts(u64),
    /// Fire once this rank has received `n` envelopes.
    Recvs(u64),
    /// Fire while the named profiling phase (e.g. `Alignment`) is
    /// active — subphases count their parents as active.
    Phase(String),
}

impl Trigger {
    fn fmt_suffix(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Now => Ok(()),
            Trigger::Posts(n) => write!(f, "@posts:{n}"),
            Trigger::Recvs(n) => write!(f, "@recvs:{n}"),
            Trigger::Phase(name) => write!(f, "@phase:{name}"),
        }
    }

    fn parse(spec: &str) -> Result<Trigger, String> {
        let (kind, arg) = spec
            .split_once(':')
            .ok_or_else(|| format!("trigger '{spec}': expected posts:N, recvs:N or phase:NAME"))?;
        match kind {
            "posts" => Ok(Trigger::Posts(parse_num(arg, "posts")?)),
            "recvs" => Ok(Trigger::Recvs(parse_num(arg, "recvs")?)),
            "phase" if arg.is_empty() => Err("trigger 'phase:': empty phase name".to_owned()),
            "phase" => Ok(Trigger::Phase(arg.to_owned())),
            other => Err(format!("unknown trigger '{other}'")),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// World rank dies cleanly: a thread rank unwinds with [`FaultKill`],
    /// a process rank exits with [`FAULT_KILLED_EXIT`]. Peers see the
    /// abort announcement before the death (proactive teardown).
    Kill(Rank),
    /// World rank dies *hard*: a process rank SIGKILLs itself — no
    /// unwind, no abort frame, peers find out from the dead socket. In
    /// thread mode this degrades to [`FaultKind::Kill`] (a thread
    /// cannot SIGKILL itself without taking the harness down).
    SigKill(Rank),
    /// The link between two world ranks is cut: each end's posts to the
    /// other fail with `PeerGone` once that end's trigger has fired.
    Sever(Rank, Rank),
}

/// One fault: what happens, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    pub kind: FaultKind,
    pub trigger: Trigger,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Kill(r) => write!(f, "kill:{r}")?,
            FaultKind::SigKill(r) => write!(f, "sigkill:{r}")?,
            FaultKind::Sever(a, b) => write!(f, "sever:{a}-{b}")?,
        }
        self.trigger.fmt_suffix(f)
    }
}

/// A deterministic fault schedule for one SPMD run. Parse with
/// [`FaultPlan::parse`], serialize with `Display` (the two round-trip),
/// ship across process boundaries via [`FAULT_PLAN_ENV`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the delivery-jitter RNG (each rank derives its own
    /// stream from it, so runs are reproducible across schedulers).
    pub seed: u64,
    /// Upper bound, in microseconds, of the seeded jitter slept before
    /// every post; `0` disables jitter.
    pub delay_us: u64,
    /// The faults themselves, in plan order.
    pub faults: Vec<Fault>,
}

fn parse_num(s: &str, what: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{what}: '{s}' is not a number"))
}

fn parse_rank(s: &str, what: &str) -> Result<Rank, String> {
    s.parse()
        .map_err(|_| format!("{what}: '{s}' is not a rank"))
}

impl FaultPlan {
    /// Parse the `;`-joined clause syntax shown in the module docs.
    /// Whitespace around clauses is tolerated; empty clauses are not.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                return Err(format!("fault plan '{spec}': empty clause"));
            }
            let (head, trigger) = match clause.split_once('@') {
                Some((head, spec)) => (head, Trigger::parse(spec)?),
                None => (clause, Trigger::Now),
            };
            let (kind, arg) = head
                .split_once(':')
                .ok_or_else(|| format!("clause '{clause}': expected kind:arg"))?;
            let kind = match kind {
                "seed" | "delay" if trigger != Trigger::Now => {
                    return Err(format!("clause '{clause}': {kind} takes no trigger"));
                }
                "seed" => {
                    plan.seed = parse_num(arg, "seed")?;
                    continue;
                }
                "delay" => {
                    plan.delay_us = parse_num(arg, "delay")?;
                    continue;
                }
                "kill" => FaultKind::Kill(parse_rank(arg, "kill")?),
                "sigkill" => FaultKind::SigKill(parse_rank(arg, "sigkill")?),
                "sever" => {
                    let (a, b) = arg
                        .split_once('-')
                        .ok_or_else(|| format!("sever: '{arg}' is not A-B"))?;
                    let (a, b) = (parse_rank(a, "sever")?, parse_rank(b, "sever")?);
                    if a == b {
                        return Err(format!("sever: link {a}-{b} joins a rank to itself"));
                    }
                    FaultKind::Sever(a, b)
                }
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            plan.faults.push(Fault { kind, trigger });
        }
        Ok(plan)
    }

    /// Read and parse [`FAULT_PLAN_ENV`]; `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => FaultPlan::parse(&spec).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Whether this plan changes nothing — harnesses skip wrapping
    /// entirely, so the default path carries zero fault-layer overhead.
    pub fn is_noop(&self) -> bool {
        self.faults.is_empty() && self.delay_us == 0
    }

    /// The world ranks this plan can kill outright (not sever targets).
    pub fn doomed_ranks(&self) -> Vec<Rank> {
        let mut out: Vec<Rank> = self
            .faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::Kill(r) | FaultKind::SigKill(r) => Some(r),
                FaultKind::Sever(..) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if self.seed != 0 {
            write!(f, "seed:{}", self.seed)?;
            sep = ";";
        }
        if self.delay_us != 0 {
            write!(f, "{sep}delay:{}", self.delay_us)?;
            sep = ";";
        }
        for fault in &self.faults {
            write!(f, "{sep}{fault}")?;
            sep = ";";
        }
        Ok(())
    }
}

/// Where the ranks of this run live, hence how a kill is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Ranks are threads of the harness process ([`crate::Cluster`],
    /// [`crate::SocketCluster`]): a kill unwinds with [`FaultKill`].
    Thread,
    /// Ranks are processes (`elba launch` workers): a kill takes the
    /// process down with [`FAULT_KILLED_EXIT`] or a real SIGKILL.
    Process,
}

/// Per-rank runtime state of a plan: activity counters, the per-rank
/// jitter RNG stream, and which sever faults have latched. Shared by
/// every [`FaultTransport`] of the rank (sub-communicators included),
/// so counters span the whole mesh like the plan semantics require.
struct FaultState {
    plan: FaultPlan,
    /// This rank's world rank (faults speak world ranks).
    world: Rank,
    mode: FaultMode,
    posts: AtomicU64,
    recvs: AtomicU64,
    /// One latch per plan fault; a sever stays cut once triggered.
    latched: Vec<AtomicBool>,
    rng: Mutex<u64>,
}

/// splitmix64: tiny, seedable, good enough for jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultState {
    fn new(plan: FaultPlan, world: Rank, mode: FaultMode) -> FaultState {
        let latched = (0..plan.faults.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        // Each rank gets its own RNG stream: same seed, disjoint jitter.
        let rng = Mutex::new(plan.seed ^ ((world as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)));
        FaultState {
            plan,
            world,
            mode,
            posts: AtomicU64::new(0),
            recvs: AtomicU64::new(0),
            latched,
            rng,
        }
    }

    fn satisfied(&self, trigger: &Trigger) -> bool {
        match trigger {
            Trigger::Now => true,
            Trigger::Posts(n) => self.posts.load(Ordering::Relaxed) >= *n,
            Trigger::Recvs(n) => self.recvs.load(Ordering::Relaxed) >= *n,
            Trigger::Phase(name) => crate::profile::phase_active(name),
        }
    }

    /// Check every kill fault aimed at this rank; diverges if one fires.
    fn check_kills(&self) {
        for fault in &self.plan.faults {
            let (rank, hard) = match fault.kind {
                FaultKind::Kill(r) => (r, false),
                FaultKind::SigKill(r) => (r, true),
                FaultKind::Sever(..) => continue,
            };
            if rank == self.world && self.satisfied(&fault.trigger) {
                self.die(fault, hard);
            }
        }
    }

    fn die(&self, fault: &Fault, hard: bool) -> ! {
        let desc = fault.to_string();
        match self.mode {
            // A thread cannot SIGKILL itself without killing the whole
            // harness, so hard degrades to a clean unwind here.
            FaultMode::Thread => std::panic::panic_any(FaultKill {
                rank: self.world,
                desc,
            }),
            FaultMode::Process if hard => {
                // A real SIGKILL: no unwind, no abort frame — peers
                // must notice through the transport, which is the point.
                let pid = std::process::id().to_string();
                let _ = std::process::Command::new("kill")
                    .args(["-9", &pid])
                    .status();
                // If no `kill` binary exists, still die abnormally.
                std::process::abort();
            }
            FaultMode::Process => {
                eprintln!("rank {} killed by fault plan ({desc})", self.world);
                std::process::exit(i32::from(FAULT_KILLED_EXIT));
            }
        }
    }

    /// Whether the link between world ranks `a` and `b` is (now) cut.
    /// A sever latches at the first check finding its trigger satisfied
    /// and stays cut for the rest of the run.
    fn link_severed(&self, a: Rank, b: Rank) -> bool {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            let FaultKind::Sever(x, y) = fault.kind else {
                continue;
            };
            if (x, y) != (a, b) && (x, y) != (b, a) {
                continue;
            }
            if self.latched[i].load(Ordering::Relaxed) {
                return true;
            }
            if self.satisfied(&fault.trigger) {
                self.latched[i].store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Seeded pre-post jitter; a pure scheduling perturbation, invisible
    /// to the wire-byte model.
    fn jitter(&self) {
        if self.plan.delay_us == 0 {
            return;
        }
        let us = {
            let mut rng = self
                .rng
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            splitmix64(&mut rng) % (self.plan.delay_us + 1)
        };
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// [`Transport`] wrapper that enforces a [`FaultPlan`]. Composes over
/// either backend; [`Transport::split`] rewraps the child transport
/// around the *same* state, so counters and latches span the mesh.
pub(crate) struct FaultTransport {
    inner: Arc<dyn Transport>,
    state: Arc<FaultState>,
}

impl FaultTransport {
    /// Wrap `inner` unless the plan is a no-op (then `inner` is
    /// returned untouched — the default path stays wrapper-free).
    pub(crate) fn wrap(
        inner: Arc<dyn Transport>,
        plan: &FaultPlan,
        mode: FaultMode,
    ) -> Arc<dyn Transport> {
        if plan.is_noop() {
            return inner;
        }
        let world = inner.world_rank(inner.rank());
        Arc::new(FaultTransport {
            state: Arc::new(FaultState::new(plan.clone(), world, mode)),
            inner,
        })
    }
}

impl Transport for FaultTransport {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn post(&self, dst: Rank, envelope: Envelope) -> Result<(), PeerGone> {
        let dst_world = self.inner.world_rank(dst);
        if self.state.link_severed(self.state.world, dst_world) {
            return Err(PeerGone);
        }
        self.state.jitter();
        self.inner.post(dst, envelope)?;
        // Count *after* delivery: `posts:N` means the N-th message got
        // out before the rank dies — exactly reproducible mid-exchange
        // death, not a race with it.
        self.state.posts.fetch_add(1, Ordering::Relaxed);
        self.state.check_kills();
        Ok(())
    }

    fn recv_from(&self, src: Rank) -> Result<Envelope, PeerGone> {
        let envelope = self.inner.recv_from(src)?;
        self.state.recvs.fetch_add(1, Ordering::Relaxed);
        self.state.check_kills();
        Ok(envelope)
    }

    fn try_recv_from(&self, src: Rank) -> Result<Option<Envelope>, PeerGone> {
        let out = self.inner.try_recv_from(src)?;
        if out.is_some() {
            self.state.recvs.fetch_add(1, Ordering::Relaxed);
            self.state.check_kills();
        }
        Ok(out)
    }

    fn inbox_seq(&self) -> u64 {
        self.inner.inbox_seq()
    }

    fn park_inbox(&self, seen: u64) {
        self.inner.park_inbox(seen)
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }

    fn world_rank(&self, member: Rank) -> Rank {
        self.inner.world_rank(member)
    }

    fn abort(&self) {
        self.inner.abort()
    }

    fn split(&self, members: &[Rank], my_rank: Rank, key: SplitKey) -> Arc<dyn Transport> {
        Arc::new(FaultTransport {
            inner: self.inner.split(members, my_rank, key),
            state: Arc::clone(&self.state),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let specs = [
            "kill:1@posts:5000",
            "sigkill:2@phase:Alignment",
            "sever:0-3@recvs:100",
            "seed:7;delay:50",
            "seed:9;delay:5;kill:0@posts:10;sever:1-2",
            "kill:3",
        ];
        for spec in specs {
            let plan = FaultPlan::parse(spec).expect(spec);
            assert_eq!(plan.to_string(), spec, "round trip of '{spec}'");
            assert_eq!(FaultPlan::parse(&plan.to_string()).expect(spec), plan);
        }
    }

    #[test]
    fn parse_tolerates_whitespace() {
        let plan = FaultPlan::parse(" kill:1@posts:3 ; delay:9 ").expect("valid");
        assert_eq!(plan.delay_us, 9);
        assert_eq!(
            plan.faults,
            vec![Fault {
                kind: FaultKind::Kill(1),
                trigger: Trigger::Posts(3),
            }]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "kill",
            "kill:x",
            "kill:1@",
            "kill:1@posts:abc",
            "kill:1@phase:",
            "explode:1",
            "sever:2",
            "sever:2-2",
            "kill:1;;delay:3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn noop_and_doomed() {
        assert!(FaultPlan::default().is_noop());
        assert!(FaultPlan::parse("seed:42").expect("valid").is_noop());
        assert!(!FaultPlan::parse("delay:1").expect("valid").is_noop());
        let plan = FaultPlan::parse("kill:2;sigkill:0;sever:1-3;kill:2").expect("valid");
        assert_eq!(plan.doomed_ranks(), vec![0, 2]);
    }

    #[test]
    fn counter_triggers_fire_exactly() {
        let plan = FaultPlan::parse("kill:5@posts:3").expect("valid");
        let state = FaultState::new(plan, 5, FaultMode::Thread);
        let trigger = Trigger::Posts(3);
        for _ in 0..2 {
            state.posts.fetch_add(1, Ordering::Relaxed);
            assert!(!state.satisfied(&trigger));
        }
        state.posts.fetch_add(1, Ordering::Relaxed);
        assert!(state.satisfied(&trigger));
    }

    #[test]
    fn sever_latches_on_either_orientation() {
        let plan = FaultPlan::parse("sever:0-3@posts:1").expect("valid");
        let state = FaultState::new(plan, 0, FaultMode::Thread);
        assert!(!state.link_severed(0, 3), "trigger not yet satisfied");
        state.posts.fetch_add(1, Ordering::Relaxed);
        assert!(state.link_severed(3, 0), "orientation-agnostic");
        assert!(state.link_severed(0, 3), "stays latched");
        assert!(!state.link_severed(0, 2), "other links untouched");
    }

    #[test]
    fn jitter_streams_are_seeded_and_per_rank() {
        let plan = FaultPlan::parse("seed:7;delay:1000").expect("valid");
        let draw = |world: Rank| {
            let state = FaultState::new(plan.clone(), world, FaultMode::Thread);
            let mut rng = state.rng.lock().expect("fresh");
            let mut out = Vec::new();
            for _ in 0..4 {
                out.push(splitmix64(&mut rng));
            }
            out
        };
        assert_eq!(draw(0), draw(0), "deterministic per seed+rank");
        assert_ne!(draw(0), draw(1), "disjoint streams per rank");
    }
}
