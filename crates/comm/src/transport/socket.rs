//! Multi-process backend: each rank is a **process**, and envelopes
//! travel as length-prefixed serialized frames over Unix-domain sockets
//! (std-only; see [`super::wire`] for the frame format).
//!
//! ## Topology
//!
//! The mesh is fully connected: one stream per rank pair, built either
//! from socketpairs ([`SocketCluster`] — a thread-per-rank harness that
//! exercises the full serialize/frame/deserialize path inside one test
//! process) or from filesystem sockets under a rendezvous directory
//! ([`run_worker`] — real processes, launched by `elba launch`).
//!
//! Per peer stream a dedicated reader thread drains frames into
//! condvar-backed `Mailbox`es — the same inbox type the in-process
//! backend uses, so receive matching, parking and closed-flag semantics
//! are shared code. Because readers always drain the socket into an
//! unbounded mailbox, a sender's `write` can never deadlock against its
//! own receive path: the flow-control liveness rules (non-blocking
//! `finish_sends`, `inbound_ready` probe before parking — invariant 5)
//! hold over sockets exactly as they do in process.
//!
//! ## Communicators
//!
//! One process hosts exactly one world rank (invariant 3: threads never
//! enter the comm layer), but many communicators: each `Comm` maps to a
//! *context id* carried in every frame. The world communicator is
//! context 0; `split` derives child contexts deterministically from
//! `(parent ctx, collective seq, color)` — identical on every member by
//! SPMD order, so no bootstrap messages are needed. Frames that arrive
//! before their context is registered are parked in a pending buffer
//! and replayed at registration, preserving per-source order.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use super::fault::{FaultMode, FaultPlan, FaultTransport};
use super::wire::{FrameHeader, FrameKind, FRAME_HEADER_BYTES};
use super::{Envelope, Mailbox, Payload, PeerGone, SplitKey, Transport, TryRecvError};
use crate::error::{CommError, FailureCause, SpmdFailure};
use crate::profile::{lock_profile, Profile, RunProfile};
use crate::runtime::{Backend, Comm, Rank, Runner};

/// Context id of the world communicator.
const WORLD_CTX: u64 = 0;

/// Deterministic child context id for a split: FNV-1a over the parent
/// context and the split key. Every member computes the same id from
/// the same SPMD state; context 0 stays reserved for the world.
fn child_ctx(parent: u64, key: SplitKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [parent, key.seq, key.color] {
        for b in chunk.to_ne_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    if h == WORLD_CTX {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// One registered communicator on a node.
struct CtxEntry {
    mailbox: Arc<Mailbox>,
    /// Sub-rank of each member world rank (for closing on peer EOF).
    sub_of_world: HashMap<Rank, usize>,
}

/// Demux state shared by the reader threads: one lock covers both maps
/// so a frame can never slip into `pending` while its context is being
/// registered (registration drains pending under the same lock).
#[derive(Default)]
struct Router {
    contexts: HashMap<u64, CtxEntry>,
    /// Frames for not-yet-registered contexts, in arrival order.
    pending: HashMap<u64, Vec<(FrameHeader, Vec<u8>)>>,
    /// World ranks whose stream reached EOF (process exited); contexts
    /// registered later close these members immediately.
    dead: Vec<bool>,
}

/// One process's endpoint of the socket mesh: the write half of every
/// peer stream plus the demux state its reader threads deliver into.
pub(crate) struct SocketNode {
    rank: Rank,
    size: usize,
    /// writers[peer]: locked write half of the stream to `peer`
    /// (`None` for self — self-sends never touch a socket).
    writers: Vec<Option<Mutex<UnixStream>>>,
    router: Mutex<Router>,
}

impl SocketNode {
    fn lock_router(&self) -> std::sync::MutexGuard<'_, Router> {
        self.router
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a communicator; replays any frames that raced ahead of
    /// the registration and closes members that already hung up.
    fn register_ctx(&self, ctx: u64, members: &[Rank]) -> Arc<Mailbox> {
        let mailbox = Mailbox::new(members.len());
        let entry = CtxEntry {
            mailbox: Arc::clone(&mailbox),
            sub_of_world: members.iter().enumerate().map(|(s, &w)| (w, s)).collect(),
        };
        let mut router = self.lock_router();
        let parked = router.pending.remove(&ctx).unwrap_or_default();
        let dead: Vec<Rank> = members
            .iter()
            .copied()
            .filter(|&w| w != self.rank && router.dead[w])
            .collect();
        router.contexts.insert(ctx, entry);
        for (hdr, payload) in parked {
            Self::route(&mut router, hdr, payload);
        }
        for w in dead {
            let sub = members.iter().position(|&m| m == w).expect("member");
            mailbox.close(sub);
        }
        drop(router);
        mailbox
    }

    fn unregister_ctx(&self, ctx: u64) {
        self.lock_router().contexts.remove(&ctx);
    }

    /// Deliver one inbound frame (reader thread context). Frames for
    /// unknown contexts wait in `pending`; frames for a dropped rank's
    /// mailbox are discarded (the in-process analogue panics the
    /// *sender*, which a remote sender cannot observe).
    fn deliver(&self, hdr: FrameHeader, payload: Vec<u8>) {
        let mut router = self.lock_router();
        Self::route(&mut router, hdr, payload);
    }

    fn route(router: &mut Router, hdr: FrameHeader, payload: Vec<u8>) {
        if hdr.kind == FrameKind::Abort {
            // Whole-process death announcement: `src` is a world rank.
            // Close it everywhere, like the EOF its exit will deliver —
            // but now, and ahead of any data still buffered behind it
            // on other streams.
            let world = hdr.src as usize;
            if world < router.dead.len() {
                Self::mark_dead(router, world);
            }
            return;
        }
        match router.contexts.get(&hdr.ctx) {
            Some(entry) => {
                let src = hdr.src as usize;
                match hdr.kind {
                    FrameKind::Data => {
                        let envelope = Envelope {
                            tag: hdr.tag,
                            payload: Payload::Frame(payload),
                        };
                        let _ = entry.mailbox.push(src, envelope);
                    }
                    FrameKind::Close => entry.mailbox.close(src),
                    FrameKind::Hello | FrameKind::Abort => {}
                }
            }
            None => router
                .pending
                .entry(hdr.ctx)
                .or_default()
                .push((hdr, payload)),
        }
    }

    /// Close world rank `world` out of every registered communicator and
    /// remember it for communicators registered later.
    fn mark_dead(router: &mut Router, world: Rank) {
        router.dead[world] = true;
        for entry in router.contexts.values() {
            if let Some(&sub) = entry.sub_of_world.get(&world) {
                entry.mailbox.close(sub);
            }
        }
    }

    /// The stream from `world` hit EOF: its process is gone. Close it
    /// in every communicator that includes it, and remember it for
    /// communicators registered later.
    fn peer_eof(&self, world: Rank) {
        let mut router = self.lock_router();
        Self::mark_dead(&mut router, world);
    }

    /// Serialize and ship one frame to `world` (never self).
    fn send_frame(
        &self,
        world: Rank,
        kind: FrameKind,
        ctx: u64,
        src: usize,
        tag: u64,
        payload: &[u8],
    ) -> Result<(), PeerGone> {
        let writer = self.writers[world].as_ref().ok_or(PeerGone)?;
        let header = FrameHeader {
            kind,
            ctx,
            src: src as u32,
            tag,
            len: payload.len() as u64,
        };
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        header.encode(&mut buf);
        buf.extend_from_slice(payload);
        let mut stream = writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        stream.write_all(&buf).map_err(|_| PeerGone)
    }
}

impl Drop for SocketNode {
    fn drop(&mut self) {
        // Half-close every stream so peer readers (and, once the peer
        // drops too, our own) wake with EOF instead of blocking forever.
        // Data already written stays readable: shutdown(Write) is an
        // orderly goodbye, not an abort.
        for writer in self.writers.iter().flatten() {
            let stream = writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }
}

/// Spawn the per-peer reader thread: drain frames into the node's
/// router until EOF or a protocol error. Holds only a `Weak` so a
/// finished node can drop (its `Drop` half-closes the streams, which is
/// what eventually lands every reader here on EOF).
fn spawn_reader(
    node: &Arc<SocketNode>,
    from_world: Rank,
    stream: UnixStream,
) -> std::io::Result<()> {
    let weak: Weak<SocketNode> = Arc::downgrade(node);
    let my_rank = node.rank;
    std::thread::Builder::new()
        .name(format!("sock-rx-{my_rank}-{from_world}"))
        .spawn(move || {
            let mut stream = BufReader::new(stream);
            loop {
                let mut hdr_buf = [0u8; FRAME_HEADER_BYTES];
                if stream.read_exact(&mut hdr_buf).is_err() {
                    break; // EOF or reset
                }
                let Ok(hdr) = FrameHeader::decode(&hdr_buf) else {
                    // Desynchronized stream: nothing downstream is
                    // trustworthy. Treat as a hangup.
                    break;
                };
                let mut payload = vec![0u8; hdr.len as usize];
                if stream.read_exact(&mut payload).is_err() {
                    break;
                }
                let Some(node) = weak.upgrade() else {
                    return; // our own node is gone; no one to deliver to
                };
                node.deliver(hdr, payload);
            }
            if let Some(node) = weak.upgrade() {
                node.peer_eof(from_world);
            }
        })
        .map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("rank {my_rank}: spawn reader thread for rank {from_world}: {e}"),
            )
        })?;
    Ok(())
}

fn build_node(
    rank: Rank,
    size: usize,
    streams: Vec<Option<UnixStream>>,
) -> std::io::Result<Arc<SocketNode>> {
    let mut writers = Vec::with_capacity(streams.len());
    for (peer, s) in streams.iter().enumerate() {
        writers.push(match s {
            Some(stream) => Some(Mutex::new(stream.try_clone().map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("rank {rank}: clone socket write half to rank {peer}: {e}"),
                )
            })?)),
            None => None,
        });
    }
    let node = Arc::new(SocketNode {
        rank,
        size,
        writers,
        router: Mutex::new(Router {
            dead: vec![false; size],
            ..Router::default()
        }),
    });
    for (peer, stream) in streams.into_iter().enumerate() {
        if let Some(stream) = stream {
            spawn_reader(&node, peer, stream)?;
        }
    }
    Ok(node)
}

/// Socket transport for one rank of one communicator (context).
pub(crate) struct SocketTransport {
    node: Arc<SocketNode>,
    ctx: u64,
    /// World rank of each member, indexed by sub-rank.
    members: Vec<Rank>,
    /// This rank's sub-rank within the communicator.
    rank: Rank,
    mailbox: Arc<Mailbox>,
}

impl SocketTransport {
    /// The world communicator over an established mesh.
    pub(crate) fn world(node: Arc<SocketNode>) -> SocketTransport {
        let members: Vec<Rank> = (0..node.size).collect();
        let mailbox = node.register_ctx(WORLD_CTX, &members);
        SocketTransport {
            rank: node.rank,
            ctx: WORLD_CTX,
            members,
            mailbox,
            node,
        }
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn post(&self, dst: Rank, envelope: Envelope) -> Result<(), PeerGone> {
        let world = self.members[dst];
        if world == self.node.rank {
            // Send-to-self stays a moved value: no serialization, same
            // as the in-process backend.
            return self
                .mailbox
                .push(self.rank, envelope)
                .map_err(|()| PeerGone);
        }
        let mut payload = Vec::new();
        envelope.payload.encode_into(&mut payload);
        self.node.send_frame(
            world,
            FrameKind::Data,
            self.ctx,
            self.rank,
            envelope.tag,
            &payload,
        )
    }

    fn recv_from(&self, src: Rank) -> Result<Envelope, PeerGone> {
        self.mailbox.recv(src).map_err(|()| PeerGone)
    }

    fn try_recv_from(&self, src: Rank) -> Result<Option<Envelope>, PeerGone> {
        match self.mailbox.try_recv(src) {
            Ok(envelope) => Ok(Some(envelope)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(PeerGone),
        }
    }

    fn inbox_seq(&self) -> u64 {
        self.mailbox.seq()
    }

    fn park_inbox(&self, seen: u64) {
        self.mailbox.park(seen);
    }

    fn shutdown(&self) {
        self.mailbox.mark_owner_gone();
        for (sub, &world) in self.members.iter().enumerate() {
            if world == self.node.rank {
                self.mailbox.close(sub);
            } else {
                let _ = self
                    .node
                    .send_frame(world, FrameKind::Close, self.ctx, self.rank, 0, &[]);
            }
        }
        self.node.unregister_ctx(self.ctx);
    }

    fn world_rank(&self, member: Rank) -> Rank {
        self.members[member]
    }

    fn abort(&self) {
        // Whole-process teardown: tell every peer this world rank is
        // dead (ahead of the EOF our exit will deliver), then leave the
        // current communicator the orderly way. Peers close us out of
        // every context — current and future — on the Abort frame.
        for world in 0..self.node.size {
            if world != self.node.rank {
                let _ = self.node.send_frame(
                    world,
                    FrameKind::Abort,
                    WORLD_CTX,
                    self.node.rank,
                    0,
                    &[],
                );
            }
        }
        self.shutdown();
    }

    fn split(&self, members: &[Rank], my_rank: Rank, key: SplitKey) -> Arc<dyn Transport> {
        let ctx = child_ctx(self.ctx, key);
        // `members` are parent sub-ranks; the frame plane speaks world
        // ranks.
        let world_members: Vec<Rank> = members.iter().map(|&m| self.members[m]).collect();
        let mailbox = self.node.register_ctx(ctx, &world_members);
        Arc::new(SocketTransport {
            node: Arc::clone(&self.node),
            ctx,
            members: world_members,
            rank: my_rank,
            mailbox,
        })
    }
}

// ----------------------------------------------------------------------
// Mesh construction
// ----------------------------------------------------------------------

/// Fully-connected mesh of `nranks` nodes from socketpairs, all inside
/// the calling process — the harness behind [`SocketCluster`].
fn pair_mesh(nranks: usize) -> std::io::Result<Vec<Arc<SocketNode>>> {
    let mut endpoints: Vec<Vec<Option<UnixStream>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for (i, j) in (0..nranks).flat_map(|i| (i + 1..nranks).map(move |j| (i, j))) {
        let (a, b) = UnixStream::pair().map_err(|e| {
            std::io::Error::new(e.kind(), format!("socketpair for ranks {i}-{j}: {e}"))
        })?;
        endpoints[i][j] = Some(a);
        endpoints[j][i] = Some(b);
    }
    endpoints
        .into_iter()
        .enumerate()
        .map(|(rank, streams)| build_node(rank, nranks, streams))
        .collect()
}

/// Mesh bring-up tuning: how long `connect_mesh` waits for sibling
/// processes before giving up (a crashed sibling would otherwise hang
/// the whole launch), and the retry cadence while it waits. Replaces
/// the old hard-wired 60 s constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshConfig {
    /// Give-up deadline for the whole bring-up.
    pub timeout: Duration,
    /// First retry sleep; doubles per failed attempt up to `retry_max`
    /// (exponential backoff keeps a large mesh from hammering the
    /// filesystem while still reacting in microseconds when siblings
    /// arrive quickly).
    pub retry_start: Duration,
    /// Backoff ceiling.
    pub retry_max: Duration,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            timeout: Duration::from_secs(60),
            retry_start: Duration::from_millis(2),
            retry_max: Duration::from_millis(50),
        }
    }
}

impl MeshConfig {
    /// Default config with the deadline overridden by
    /// `ELBA_MESH_TIMEOUT_MS` when present — `elba launch` sets it from
    /// `--launch-timeout` so bring-up gives up before the supervisor's
    /// own deadline fires.
    pub fn from_env() -> MeshConfig {
        let mut cfg = MeshConfig::default();
        if let Some(ms) = std::env::var("ELBA_MESH_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.timeout = Duration::from_millis(ms.max(1));
        }
        cfg
    }

    /// Next backoff sleep after `current` (doubling, capped).
    fn backoff(&self, current: Duration) -> Duration {
        (current * 2).min(self.retry_max)
    }
}

fn retry_connect(path: &Path, cfg: &MeshConfig) -> std::io::Result<UnixStream> {
    let deadline = Instant::now() + cfg.timeout;
    let mut sleep = cfg.retry_start;
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(err) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        err.kind(),
                        format!("connecting to {} timed out: {err}", path.display()),
                    ));
                }
                std::thread::sleep(sleep);
                sleep = cfg.backoff(sleep);
            }
        }
    }
}

/// Join the multi-process mesh rooted at `dir` as world rank `rank`:
/// bind `rank<r>.sock`, connect to every lower rank (with retry — the
/// siblings may not have bound yet), accept every higher rank, exchange
/// hello frames so accepted streams are attributed to the right peer.
fn connect_mesh(
    dir: &Path,
    rank: Rank,
    nranks: usize,
    cfg: &MeshConfig,
) -> std::io::Result<Arc<SocketNode>> {
    let listener = UnixListener::bind(dir.join(format!("rank{rank}.sock")))?;
    let mut streams: Vec<Option<UnixStream>> = (0..nranks).map(|_| None).collect();
    for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
        let stream = retry_connect(&dir.join(format!("rank{peer}.sock")), cfg)?;
        let mut hello = Vec::with_capacity(FRAME_HEADER_BYTES);
        FrameHeader {
            kind: FrameKind::Hello,
            ctx: WORLD_CTX,
            src: rank as u32,
            tag: 0,
            len: 0,
        }
        .encode(&mut hello);
        (&stream).write_all(&hello)?;
        *slot = Some(stream);
    }
    let deadline = Instant::now() + cfg.timeout;
    for _ in rank + 1..nranks {
        listener.set_nonblocking(true)?;
        let mut sleep = cfg.retry_start;
        let stream = loop {
            match listener.accept() {
                Ok((stream, _)) => break stream,
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "timed out waiting for higher ranks to connect",
                        ));
                    }
                    std::thread::sleep(sleep);
                    sleep = cfg.backoff(sleep);
                }
                Err(err) => return Err(err),
            }
        };
        stream.set_nonblocking(false)?;
        let mut hdr_buf = [0u8; FRAME_HEADER_BYTES];
        (&stream).read_exact(&mut hdr_buf)?;
        let hdr = FrameHeader::decode(&hdr_buf).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad hello: {e}"))
        })?;
        if hdr.kind != FrameKind::Hello || hdr.src as usize >= nranks {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "mesh handshake expected a hello frame",
            ));
        }
        streams[hdr.src as usize] = Some(stream);
    }
    build_node(rank, nranks, streams)
}

// ----------------------------------------------------------------------
// Entry points
// ----------------------------------------------------------------------

/// Why a worker process's rank body did not complete. `elba launch`
/// workers map these onto the exit-code taxonomy (`elba::exit`) so the
/// supervisor can tell a root-cause crash from a cascade unwind.
#[derive(Debug)]
pub enum WorkerError {
    /// Mesh bring-up or teardown I/O failed (rank attached upstream).
    Io(std::io::Error),
    /// The rank unwound cleanly after observing a dead peer — a cascade
    /// victim, not the root cause.
    Comm(CommError),
    /// The rank was killed on purpose by an injected fault plan.
    Killed(String),
    /// The rank body panicked.
    Panic(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "{e}"),
            WorkerError::Comm(e) => write!(f, "{e}"),
            WorkerError::Killed(d) => write!(f, "killed by fault plan ({d})"),
            WorkerError::Panic(m) => write!(f, "panicked: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> WorkerError {
        WorkerError::Io(e)
    }
}

/// Run `f` as one world rank of a multi-process socket mesh rooted at
/// `dir` (the rendezvous directory all `nranks` processes share — see
/// `elba launch`). Blocks until the mesh is up, runs `f` over the world
/// communicator, and returns `f`'s result together with this rank's
/// recorded [`Profile`]. Cross-rank aggregation (a merged
/// [`RunProfile`] at rank 0) is the caller's business: gather the
/// per-rank profiles over a duplicated communicator with
/// [`Profile::wire_encode`].
///
/// A panicking `f` does not take the process down bare-handed: the
/// panic is caught, an abort frame proactively tears this rank out of
/// the whole mesh (peers unwind with `PeerGone` instead of timing out),
/// and the classified failure comes back as a [`WorkerError`].
pub fn run_worker<T, F>(
    dir: &Path,
    rank: Rank,
    nranks: usize,
    f: F,
) -> Result<(T, Profile), WorkerError>
where
    F: FnOnce(Comm) -> T,
{
    assert!(rank < nranks, "worker rank {rank} outside 0..{nranks}");
    crate::error::silence_typed_unwinds();
    let plan = FaultPlan::from_env().map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{}: {e}", crate::transport::fault::FAULT_PLAN_ENV),
        )
    })?;
    let node = connect_mesh(dir, rank, nranks, &MeshConfig::from_env())?;
    let profile = Arc::new(Mutex::new(Profile::new(rank)));
    let mut transport: Arc<dyn Transport> = Arc::new(SocketTransport::world(node));
    if let Some(plan) = &plan {
        // Process-mode faults: a killed worker exits (or SIGKILLs
        // itself) instead of unwinding — the launcher's taxonomy and
        // the peers' PeerGone errors are the observable.
        transport = FaultTransport::wrap(transport, plan, FaultMode::Process);
    }
    let abort_handle = Arc::clone(&transport);
    let comm = Comm::from_transport(transport, Arc::clone(&profile));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(comm))) {
        Ok(out) => {
            let snapshot = lock_profile(&profile).clone();
            Ok((out, snapshot))
        }
        Err(payload) => {
            // The unwind already dropped `comm` (orderly Close frames);
            // the abort additionally declares the whole process dead so
            // peers parked in communicators this rank never joined a
            // counterpart of fail promptly too.
            abort_handle.abort();
            Err(match crate::error::classify_panic(payload) {
                FailureCause::PeerGone(e) => WorkerError::Comm(e),
                FailureCause::Killed(d) => WorkerError::Killed(d),
                FailureCause::Panic(m) => WorkerError::Panic(m),
            })
        }
    }
}

/// Deprecated entry point: run an SPMD function over `nranks`
/// socket-transport ranks hosted as threads of the current process.
/// Superseded by [`Runner`]`::new(Backend::Socket)`; each method
/// survives as a one-line shim.
///
/// The mesh is real — every cross-rank message is serialized into a
/// frame, shipped through a Unix socketpair and deserialized by the
/// receiver — but the ranks are threads, so tests and benches can pin
/// cross-backend properties (byte-identical contigs and wire bytes
/// against the in-process backend) without forking processes. For
/// genuinely separate processes, use `elba launch` / [`run_worker`].
pub struct SocketCluster;

impl SocketCluster {
    /// Run `f` on `nranks` ranks; returns each rank's result, rank-ordered.
    #[deprecated(note = "use Runner::new(Backend::Socket).ranks(n).run(f)")]
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::Socket).ranks(nranks).run(f)
    }

    /// Like `SocketCluster::run` but also returns the per-rank profiles.
    #[deprecated(note = "use Runner::new(Backend::Socket).ranks(n).run_profiled(f)")]
    pub fn run_profiled<T, F>(nranks: usize, f: F) -> (Vec<T>, RunProfile)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::Socket).ranks(nranks).run_profiled(f)
    }

    /// Like `SocketCluster::run_profiled`, but dead ranks surface as a
    /// typed [`SpmdFailure`] instead of a panic.
    #[deprecated(note = "use Runner::new(Backend::Socket).ranks(n).try_run_profiled(f)")]
    pub fn try_run_profiled<T, F>(nranks: usize, f: F) -> Result<(Vec<T>, RunProfile), SpmdFailure>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::Socket)
            .ranks(nranks)
            .try_run_profiled(f)
    }

    /// Like `SocketCluster::try_run_profiled`, but with an explicit
    /// [`FaultPlan`] (kills stay thread-mode: ranks here are threads).
    #[deprecated(
        note = "use Runner::new(Backend::Socket).ranks(n).faults(plan).try_run_profiled(f)"
    )]
    pub fn try_run_with_faults<T, F>(
        nranks: usize,
        plan: &FaultPlan,
        f: F,
    ) -> Result<(Vec<T>, RunProfile), SpmdFailure>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Runner::new(Backend::Socket)
            .ranks(nranks)
            .faults(plan)
            .try_run_profiled(f)
    }

    pub(crate) fn mesh(nranks: usize) -> Vec<Arc<dyn Transport>> {
        pair_mesh(nranks)
            .unwrap_or_else(|e| panic!("socket mesh bring-up failed: {e}"))
            .into_iter()
            .map(|node| Arc::new(SocketTransport::world(node)) as Arc<dyn Transport>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ctx_never_world_and_spreads() {
        let a = child_ctx(WORLD_CTX, SplitKey { seq: 1, color: 0 });
        let b = child_ctx(WORLD_CTX, SplitKey { seq: 1, color: 1 });
        let c = child_ctx(a, SplitKey { seq: 1, color: 0 });
        assert_ne!(a, WORLD_CTX);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
