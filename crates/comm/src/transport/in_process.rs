//! The default backend: ranks are OS threads in one address space, and
//! an envelope "travels" by moving its boxed value into the destination
//! rank's [`Mailbox`]. No serialization ever happens — identical
//! communication *structure* to MPI (who sends what to whom, and how
//! many bytes it would be on a wire) without the packing cost.
//!
//! `split` rendezvouses through a shared [`SplitRegistry`] keyed by
//! [`SplitKey`]: the first member to arrive creates the new
//! communicator's mailboxes, the rest pick them up — no leader, no
//! bootstrap messages (the old runtime shipped a `SplitPack` from a
//! leader rank; the registry replaces it so the transport trait needs no
//! "send a vector of mailboxes" special case a socket could never
//! implement).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use super::{Envelope, Mailbox, PeerGone, SplitKey, Transport, TryRecvError};
use crate::runtime::Rank;

/// Rendezvous point for `split`: every rank of a communicator holds the
/// same registry, and each distinct [`SplitKey`] names one child
/// communicator under construction.
#[derive(Default)]
pub(crate) struct SplitRegistry {
    entries: Mutex<HashMap<SplitKey, SplitEntry>>,
}

struct SplitEntry {
    mailboxes: Vec<Arc<Mailbox>>,
    /// The child communicator's own registry, so nested splits
    /// rendezvous among the members of the child, not the parent.
    registry: Arc<SplitRegistry>,
    handed_out: usize,
}

/// In-process transport for one rank of one communicator.
pub(crate) struct InProcess {
    rank: Rank,
    /// peers[dst]: rank `dst`'s mailbox (peers[rank] is our own inbox).
    peers: Vec<Arc<Mailbox>>,
    splits: Arc<SplitRegistry>,
}

impl InProcess {
    /// Build the world communicator's transports: one shared mailbox
    /// vector, one shared split registry, one handle per rank.
    pub(crate) fn world(nranks: usize) -> Vec<Arc<dyn Transport>> {
        let mailboxes: Vec<Arc<Mailbox>> = (0..nranks).map(|_| Mailbox::new(nranks)).collect();
        let registry = Arc::new(SplitRegistry::default());
        (0..nranks)
            .map(|rank| {
                Arc::new(InProcess {
                    rank,
                    peers: mailboxes.clone(),
                    splits: Arc::clone(&registry),
                }) as Arc<dyn Transport>
            })
            .collect()
    }

    #[inline]
    fn inbox(&self) -> &Mailbox {
        &self.peers[self.rank]
    }
}

impl Transport for InProcess {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.peers.len()
    }

    fn post(&self, dst: Rank, envelope: Envelope) -> Result<(), PeerGone> {
        self.peers[dst]
            .push(self.rank, envelope)
            .map_err(|()| PeerGone)
    }

    fn recv_from(&self, src: Rank) -> Result<Envelope, PeerGone> {
        self.inbox().recv(src).map_err(|()| PeerGone)
    }

    fn try_recv_from(&self, src: Rank) -> Result<Option<Envelope>, PeerGone> {
        match self.inbox().try_recv(src) {
            Ok(envelope) => Ok(Some(envelope)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(PeerGone),
        }
    }

    fn inbox_seq(&self) -> u64 {
        self.inbox().seq()
    }

    fn park_inbox(&self, seen: u64) {
        self.inbox().park(seen);
    }

    fn shutdown(&self) {
        // Refuse further deliveries to this rank and tell every peer we
        // are gone, so their blocked receives fail instead of hanging —
        // the channel-disconnect semantics the runtime has always had.
        self.inbox().mark_owner_gone();
        for peer in &self.peers {
            peer.close(self.rank);
        }
    }

    fn split(&self, members: &[Rank], my_rank: Rank, key: SplitKey) -> Arc<dyn Transport> {
        let mut entries = self
            .splits
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = entries.entry(key).or_insert_with(|| SplitEntry {
            mailboxes: (0..members.len())
                .map(|_| Mailbox::new(members.len()))
                .collect(),
            registry: Arc::new(SplitRegistry::default()),
            handed_out: 0,
        });
        debug_assert_eq!(
            entry.mailboxes.len(),
            members.len(),
            "all members of a split must agree on the group"
        );
        let transport = Arc::new(InProcess {
            rank: my_rank,
            peers: entry.mailboxes.clone(),
            splits: Arc::clone(&entry.registry),
        });
        entry.handed_out += 1;
        // Last member out removes the rendezvous entry: the key can
        // never repeat (collective sequence numbers only grow), so the
        // map stays bounded by the number of in-flight splits.
        if entry.handed_out == members.len() {
            entries.remove(&key);
        }
        transport
    }
}
