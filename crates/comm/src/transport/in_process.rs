//! The default backend: ranks are OS threads in one address space, and
//! an envelope "travels" by moving its boxed value into the destination
//! rank's [`Mailbox`]. No serialization ever happens — identical
//! communication *structure* to MPI (who sends what to whom, and how
//! many bytes it would be on a wire) without the packing cost.
//!
//! `split` rendezvouses through a shared [`SplitRegistry`] keyed by
//! [`SplitKey`]: the first member to arrive creates the new
//! communicator's mailboxes, the rest pick them up — no leader, no
//! bootstrap messages (the old runtime shipped a `SplitPack` from a
//! leader rank; the registry replaces it so the transport trait needs no
//! "send a vector of mailboxes" special case a socket could never
//! implement).
//!
//! Abort propagation mirrors the socket backend's per-process death:
//! every communicator's mailboxes are registered (weakly) in a
//! world-wide [`MeshState`], so a rank that dies can be closed in
//! *every* communicator at once — including ones the dead rank never
//! joined its counterpart of, where plain `shutdown` (scoped to one
//! communicator) could never reach the survivors parked there.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};

use super::{Envelope, Mailbox, PeerGone, SplitKey, Transport, TryRecvError};
use crate::runtime::Rank;

/// One registered communicator's mailboxes plus the world rank of each
/// member, held weakly so finished communicators can drop.
struct GroupEntry {
    mailboxes: Vec<Weak<Mailbox>>,
    to_world: Vec<Rank>,
}

/// World-wide death registry shared by every in-process transport of one
/// cluster: records which world ranks are dead and every live
/// communicator's mailboxes, so an abort can close the dead rank in all
/// of them — the in-process analogue of a socket peer's EOF reaching
/// every context at once.
#[derive(Default)]
pub(crate) struct MeshState {
    inner: Mutex<MeshInner>,
}

#[derive(Default)]
struct MeshInner {
    /// Indexed by world rank.
    dead: Vec<bool>,
    groups: Vec<GroupEntry>,
}

impl MeshState {
    fn new(nranks: usize) -> Arc<MeshState> {
        Arc::new(MeshState {
            inner: Mutex::new(MeshInner {
                dead: vec![false; nranks],
                groups: Vec::new(),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MeshInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register a freshly created communicator; members that are already
    /// dead are closed immediately (mirrors the socket router closing
    /// dead world ranks at context registration).
    fn register(&self, mailboxes: &[Arc<Mailbox>], to_world: Vec<Rank>) {
        let mut inner = self.lock();
        for (sub, &world) in to_world.iter().enumerate() {
            if inner.dead[world] {
                for mailbox in mailboxes {
                    mailbox.close(sub);
                }
                mailboxes[sub].mark_owner_gone();
            }
        }
        inner
            .groups
            .retain(|g| g.mailboxes.iter().any(|m| m.strong_count() > 0));
        inner.groups.push(GroupEntry {
            mailboxes: mailboxes.iter().map(Arc::downgrade).collect(),
            to_world,
        });
    }

    /// Mark world rank `world` dead and close it out of every registered
    /// communicator: survivors' blocked receives on it fail, and posts
    /// into its inboxes fail with [`PeerGone`]. Idempotent.
    fn abort(&self, world: Rank) {
        let mut inner = self.lock();
        if inner.dead[world] {
            return;
        }
        inner.dead[world] = true;
        for group in &inner.groups {
            let Some(sub) = group.to_world.iter().position(|&w| w == world) else {
                continue;
            };
            for mailbox in &group.mailboxes {
                if let Some(mailbox) = mailbox.upgrade() {
                    mailbox.close(sub);
                }
            }
            if let Some(own) = group.mailboxes[sub].upgrade() {
                own.mark_owner_gone();
            }
        }
    }
}

/// Rendezvous point for `split`: every rank of a communicator holds the
/// same registry, and each distinct [`SplitKey`] names one child
/// communicator under construction.
#[derive(Default)]
pub(crate) struct SplitRegistry {
    entries: Mutex<HashMap<SplitKey, SplitEntry>>,
}

struct SplitEntry {
    mailboxes: Vec<Arc<Mailbox>>,
    /// The child communicator's own registry, so nested splits
    /// rendezvous among the members of the child, not the parent.
    registry: Arc<SplitRegistry>,
    handed_out: usize,
}

/// In-process transport for one rank of one communicator.
pub(crate) struct InProcess {
    rank: Rank,
    /// peers[dst]: rank `dst`'s mailbox (peers[rank] is our own inbox).
    peers: Vec<Arc<Mailbox>>,
    splits: Arc<SplitRegistry>,
    /// World rank of each member, indexed by sub-rank.
    to_world: Vec<Rank>,
    /// Cluster-wide death registry (shared by every communicator).
    mesh: Arc<MeshState>,
}

impl InProcess {
    /// Build the world communicator's transports: one shared mailbox
    /// vector, one shared split registry, one handle per rank.
    pub(crate) fn world(nranks: usize) -> Vec<Arc<dyn Transport>> {
        let mailboxes: Vec<Arc<Mailbox>> = (0..nranks).map(|_| Mailbox::new(nranks)).collect();
        let registry = Arc::new(SplitRegistry::default());
        let mesh = MeshState::new(nranks);
        mesh.register(&mailboxes, (0..nranks).collect());
        (0..nranks)
            .map(|rank| {
                Arc::new(InProcess {
                    rank,
                    peers: mailboxes.clone(),
                    splits: Arc::clone(&registry),
                    to_world: (0..nranks).collect(),
                    mesh: Arc::clone(&mesh),
                }) as Arc<dyn Transport>
            })
            .collect()
    }

    #[inline]
    fn inbox(&self) -> &Mailbox {
        &self.peers[self.rank]
    }
}

impl Transport for InProcess {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.peers.len()
    }

    fn post(&self, dst: Rank, envelope: Envelope) -> Result<(), PeerGone> {
        self.peers[dst]
            .push(self.rank, envelope)
            .map_err(|()| PeerGone)
    }

    fn recv_from(&self, src: Rank) -> Result<Envelope, PeerGone> {
        self.inbox().recv(src).map_err(|()| PeerGone)
    }

    fn try_recv_from(&self, src: Rank) -> Result<Option<Envelope>, PeerGone> {
        match self.inbox().try_recv(src) {
            Ok(envelope) => Ok(Some(envelope)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(PeerGone),
        }
    }

    fn inbox_seq(&self) -> u64 {
        self.inbox().seq()
    }

    fn park_inbox(&self, seen: u64) {
        self.inbox().park(seen);
    }

    fn shutdown(&self) {
        // Refuse further deliveries to this rank and tell every peer we
        // are gone, so their blocked receives fail instead of hanging —
        // the channel-disconnect semantics the runtime has always had.
        self.inbox().mark_owner_gone();
        for peer in &self.peers {
            peer.close(self.rank);
        }
    }

    fn world_rank(&self, member: Rank) -> Rank {
        self.to_world[member]
    }

    fn abort(&self) {
        self.shutdown();
        self.mesh.abort(self.to_world[self.rank]);
    }

    fn split(&self, members: &[Rank], my_rank: Rank, key: SplitKey) -> Arc<dyn Transport> {
        let to_world: Vec<Rank> = members.iter().map(|&m| self.to_world[m]).collect();
        let mut entries = self
            .splits
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = entries.entry(key).or_insert_with(|| {
            let mailboxes: Vec<Arc<Mailbox>> = (0..members.len())
                .map(|_| Mailbox::new(members.len()))
                .collect();
            // One registration per communicator (the first member in
            // does it); every member computes the same `to_world`.
            self.mesh.register(&mailboxes, to_world.clone());
            SplitEntry {
                mailboxes,
                registry: Arc::new(SplitRegistry::default()),
                handed_out: 0,
            }
        });
        debug_assert_eq!(
            entry.mailboxes.len(),
            members.len(),
            "all members of a split must agree on the group"
        );
        let transport = Arc::new(InProcess {
            rank: my_rank,
            peers: entry.mailboxes.clone(),
            splits: Arc::clone(&entry.registry),
            to_world,
            mesh: Arc::clone(&self.mesh),
        });
        entry.handed_out += 1;
        // Last member out removes the rendezvous entry: the key can
        // never repeat (collective sequence numbers only grow), so the
        // map stays bounded by the number of in-flight splits.
        if entry.handed_out == members.len() {
            entries.remove(&key);
        }
        transport
    }
}
