//! Hand-rolled wire format for the socket transport: length-prefixed
//! frames whose payloads are serialized through [`crate::CommMsg`]'s
//! `wire_encode`/`wire_decode` pair (serde cannot be vendored, and the
//! message set — `Vec<u8>` buffers, k-mer/triple batches, CSR panels —
//! is small enough that a bespoke codec stays honest and fast).
//!
//! Frames never leave the machine (ranks talk over Unix-domain sockets),
//! so multi-byte integers travel in **native endianness** and
//! plain-old-data batches are copied as raw bytes. This is a transport
//! framing format, not an archival one: the only compatibility contract
//! is "the same binary on the same host".

use std::fmt;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually left in the buffer.
        have: usize,
    },
    /// A field decoded to something no encoder produces (bad magic,
    /// unknown frame kind, invalid `bool`/`char`/UTF-8, absurd length).
    Malformed(&'static str),
    /// The value decoded cleanly but left unconsumed bytes behind.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: bad {what}"),
            WireError::Trailing(n) => write!(f, "frame has {n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Largest element count a decoded vector header may claim. Frames are
/// produced by this binary on this machine, so anything beyond this is
/// corruption — rejecting it here keeps a garbage length from turning
/// into a huge allocation.
pub const MAX_VEC_ELEMS: u64 = 1 << 34;

/// Cursor over an encoded payload; every `read_*` checks bounds and
/// returns [`WireError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes verbatim.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.read_bytes(1)?[0])
    }

    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let b = self.read_bytes(4)?;
        Ok(u32::from_ne_bytes(b.try_into().expect("4-byte read")))
    }

    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        let b = self.read_bytes(8)?;
        Ok(u64::from_ne_bytes(b.try_into().expect("8-byte read")))
    }

    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// A `u64` length header, sanity-capped by [`MAX_VEC_ELEMS`].
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let n = self.read_u64()?;
        if n > MAX_VEC_ELEMS {
            return Err(WireError::Malformed("length header"));
        }
        Ok(n as usize)
    }

    /// Assert the value consumed the whole buffer.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

// ----------------------------------------------------------------------
// Socket frame header
// ----------------------------------------------------------------------

/// Frame magic: `"ELBA"`. The first thing checked on every frame — a
/// desynchronized or corrupted stream fails here instead of allocating.
pub const FRAME_MAGIC: [u8; 4] = *b"ELBA";

/// Encoded size of a [`FrameHeader`].
pub const FRAME_HEADER_BYTES: usize = 4 + 1 + 8 + 4 + 8 + 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Mesh handshake: `src` is the connecting process's world rank.
    Hello,
    /// One point-to-point message: `src` is the sender's rank *within*
    /// the communicator identified by `ctx`, `tag` the message tag, and
    /// the payload a `CommMsg::wire_encode` body of `len` bytes.
    Data,
    /// The sender's `Comm` for context `ctx` dropped; no further frames
    /// will arrive from it there (closed-flag propagation).
    Close,
    /// The sending **process** is going down (its rank panicked or was
    /// told to die by a fault plan): treat world rank `src` as dead in
    /// every context, current and future — a proactive, explicit version
    /// of the EOF its exit would eventually deliver. `ctx` is ignored.
    Abort,
}

/// Fixed-size prefix of every socket frame: magic, kind, communicator
/// context, source rank, tag, payload length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: FrameKind,
    /// Communicator context id (the world communicator is context 0;
    /// `split` derives child contexts deterministically).
    pub ctx: u64,
    pub src: u32,
    pub tag: u64,
    pub len: u64,
}

/// Largest payload a frame may claim; beyond this the header is treated
/// as garbage rather than attempting the allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 42;

impl FrameHeader {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(match self.kind {
            FrameKind::Hello => 0,
            FrameKind::Data => 1,
            FrameKind::Close => 2,
            FrameKind::Abort => 3,
        });
        out.extend_from_slice(&self.ctx.to_ne_bytes());
        out.extend_from_slice(&self.src.to_ne_bytes());
        out.extend_from_slice(&self.tag.to_ne_bytes());
        out.extend_from_slice(&self.len.to_ne_bytes());
    }

    /// Decode and validate a header; rejects bad magic, unknown kinds
    /// and absurd payload lengths.
    pub fn decode(bytes: &[u8; FRAME_HEADER_BYTES]) -> Result<FrameHeader, WireError> {
        let mut r = WireReader::new(bytes);
        if r.read_bytes(4)? != FRAME_MAGIC {
            return Err(WireError::Malformed("frame magic"));
        }
        let kind = match r.read_u8()? {
            0 => FrameKind::Hello,
            1 => FrameKind::Data,
            2 => FrameKind::Close,
            3 => FrameKind::Abort,
            _ => return Err(WireError::Malformed("frame kind")),
        };
        let ctx = r.read_u64()?;
        let src = r.read_u32()?;
        let tag = r.read_u64()?;
        let len = r.read_u64()?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Malformed("frame length"));
        }
        Ok(FrameHeader {
            kind,
            ctx,
            src,
            tag,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let hdr = FrameHeader {
            kind: FrameKind::Data,
            ctx: 0xDEAD_BEEF,
            src: 3,
            tag: (1 << 63) | 42,
            len: 1024,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES);
        let decoded = FrameHeader::decode(buf[..].try_into().expect("sized")).expect("valid");
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        FrameHeader {
            kind: FrameKind::Hello,
            ctx: 0,
            src: 0,
            tag: 0,
            len: 0,
        }
        .encode(&mut buf);
        buf[0] = b'X';
        assert_eq!(
            FrameHeader::decode(buf[..].try_into().expect("sized")),
            Err(WireError::Malformed("frame magic"))
        );
    }

    #[test]
    fn unknown_kind_and_huge_len_rejected() {
        let mut buf = Vec::new();
        FrameHeader {
            kind: FrameKind::Data,
            ctx: 0,
            src: 0,
            tag: 0,
            len: 0,
        }
        .encode(&mut buf);
        buf[4] = 9;
        assert_eq!(
            FrameHeader::decode(buf[..].try_into().expect("sized")),
            Err(WireError::Malformed("frame kind"))
        );
        buf[4] = 1;
        buf[FRAME_HEADER_BYTES - 8..].copy_from_slice(&u64::MAX.to_ne_bytes());
        assert_eq!(
            FrameHeader::decode(buf[..].try_into().expect("sized")),
            Err(WireError::Malformed("frame length"))
        );
    }

    #[test]
    fn reader_truncation_reports_counts() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.read_bytes(2), Ok(&[1u8, 2][..]));
        assert_eq!(
            r.read_u64(),
            Err(WireError::Truncated { needed: 8, have: 1 })
        );
    }

    #[test]
    fn finish_rejects_trailing() {
        let mut r = WireReader::new(&[0u8; 9]);
        let _ = r.read_u64().expect("in bounds");
        assert_eq!(r.finish(), Err(WireError::Trailing(1)));
    }
}
