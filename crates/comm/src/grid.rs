//! √P×√P logical process grid (CombBLAS-style), the layout every
//! distributed matrix in ELBA lives on.
//!
//! Rank `r` sits at grid position `(r / q, r % q)` for `q = √P`. The grid
//! carries three communicators: the world, a row communicator (all ranks
//! with the same row index, ordered by column) and a column communicator.
//! ELBA's induced-subgraph exchange (paper Fig. 2) is expressed with
//! exactly these: an allgather over the row dimension plus point-to-point
//! with the *transposed* rank `(col, row)`.

use crate::runtime::{Comm, Rank};

/// A square process grid over a world communicator.
pub struct ProcGrid {
    world: Comm,
    row: Comm,
    col: Comm,
    q: usize,
}

impl ProcGrid {
    /// Build the grid. Collective over `world`; `world.size()` must be a
    /// perfect square (as ELBA requires for its 2D distribution).
    pub fn new(world: Comm) -> Self {
        let p = world.size();
        let q = (p as f64).sqrt().round() as usize;
        assert_eq!(
            q * q,
            p,
            "process grid needs a perfect square rank count, got {p}"
        );
        let myrow = world.rank() / q;
        let mycol = world.rank() % q;
        let row = world.split(myrow, mycol);
        let col = world.split(mycol, myrow);
        debug_assert_eq!(row.rank(), mycol);
        debug_assert_eq!(col.rank(), myrow);
        ProcGrid { world, row, col, q }
    }

    /// Grid side length √P.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// World communicator spanning the whole grid.
    #[inline]
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// Communicator over this rank's grid row (rank within = column index).
    #[inline]
    pub fn row(&self) -> &Comm {
        &self.row
    }

    /// Communicator over this rank's grid column (rank within = row index).
    #[inline]
    pub fn col(&self) -> &Comm {
        &self.col
    }

    /// This rank's grid row index.
    #[inline]
    pub fn myrow(&self) -> usize {
        self.world.rank() / self.q
    }

    /// This rank's grid column index.
    #[inline]
    pub fn mycol(&self) -> usize {
        self.world.rank() % self.q
    }

    /// World rank of grid position `(i, j)`.
    #[inline]
    pub fn rank_of(&self, i: usize, j: usize) -> Rank {
        debug_assert!(i < self.q && j < self.q);
        i * self.q + j
    }

    /// World rank of the transposed position `(mycol, myrow)` — the partner
    /// in ELBA's induced-subgraph vector exchange.
    #[inline]
    pub fn transpose_rank(&self) -> Rank {
        self.rank_of(self.mycol(), self.myrow())
    }

    /// Whether this rank sits on the grid diagonal (its own transpose).
    #[inline]
    pub fn is_diagonal(&self) -> bool {
        self.myrow() == self.mycol()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Backend, Runner};

    #[test]
    fn grid_coordinates() {
        let out = Runner::new(Backend::InProcess).ranks(9).run(|comm| {
            let rank = comm.rank();
            let grid = ProcGrid::new(comm);
            assert_eq!(grid.rank_of(grid.myrow(), grid.mycol()), rank);
            (
                grid.myrow(),
                grid.mycol(),
                grid.row().rank(),
                grid.col().rank(),
            )
        });
        assert_eq!(out[5], (1, 2, 2, 1));
        assert_eq!(out[0], (0, 0, 0, 0));
        assert_eq!(out[8], (2, 2, 2, 2));
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_rejected() {
        let _ = Runner::new(Backend::InProcess).ranks(6).run(|comm| {
            let _ = ProcGrid::new(comm);
        });
    }

    #[test]
    fn row_allgather_collects_row() {
        // Mirrors the first half of the paper's Fig. 2 exchange.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let rank = comm.rank();
            let grid = ProcGrid::new(comm);
            grid.row().allgather(rank as u64)
        });
        assert_eq!(out[0], vec![0, 1]);
        assert_eq!(out[1], vec![0, 1]);
        assert_eq!(out[2], vec![2, 3]);
        assert_eq!(out[3], vec![2, 3]);
    }

    #[test]
    fn transpose_exchange() {
        // Second half of Fig. 2: p2p with the transposed processor.
        let out = Runner::new(Backend::InProcess).ranks(9).run(|comm| {
            let rank = comm.rank();
            let grid = ProcGrid::new(comm);
            let partner = grid.transpose_rank();
            grid.world().send(partner, 3, rank as u64);
            grid.world().recv::<u64>(partner, 3)
        });
        for (rank, &got) in out.iter().enumerate() {
            let (i, j) = (rank / 3, rank % 3);
            assert_eq!(got, (j * 3 + i) as u64);
        }
    }

    #[test]
    fn diagonal_detection() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            grid.is_diagonal()
        });
        assert_eq!(out, vec![true, false, false, true]);
    }

    #[test]
    fn column_communicator_spans_columns() {
        let out = Runner::new(Backend::InProcess).ranks(9).run(|comm| {
            let rank = comm.rank();
            let grid = ProcGrid::new(comm);
            grid.col().allgather(rank as u64)
        });
        // Column of rank 5 (=pos (1,2)) is ranks {2, 5, 8}.
        assert_eq!(out[5], vec![2, 5, 8]);
    }
}
