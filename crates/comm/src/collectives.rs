//! Collective operations over a [`Comm`], implemented with the classic
//! algorithms whose message counts match what an MPI library would issue:
//! binomial trees for broadcast/reduce, dissemination barrier, flat
//! personalized exchange for `alltoallv`. Reduction operators must be
//! associative and commutative (as for `MPI_Op`).

use std::sync::Arc;
use std::time::Instant;

use crate::error::{raise, CommError};
use crate::msg::CommMsg;
use crate::runtime::{op, Comm, Rank, RecvRequest, Tag};

impl Comm {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ P⌉ rounds).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag(op::BARRIER);
        let started = Instant::now();
        let p = self.size();
        let mut step = 1;
        while step < p {
            let dst = (self.rank() + step) % p;
            let src = (self.rank() + p - step) % p;
            self.coll_send(dst, tag, ());
            self.coll_recv::<()>(src, tag);
            step <<= 1;
        }
        self.record_collective("barrier", 0, started.elapsed().as_secs_f64());
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value (binomial tree, ⌈log₂ P⌉ depth).
    ///
    /// Delivery is *arrival-driven* (see `bcast_deliver_tree`): the
    /// root pushes the value into every rank's mailbox at post time, so
    /// no rank's progress ever depends on an inner tree rank reaching
    /// its own receive — the ROADMAP's deep-tree serialization item.
    /// Every rank still *books* the modeled wire bytes of its own
    /// binomial-tree sends, so profiled traffic is identical to the
    /// per-hop schedule an MPI library would run.
    pub fn bcast<T: CommMsg + Clone>(&self, root: Rank, value: Option<T>) -> T {
        let tag = self.next_coll_tag(op::BCAST);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root at 0
        let value = if vr == 0 {
            let value = value.expect("bcast root must supply a value");
            bcast_deliver_tree(self, root, tag, &value);
            value
        } else {
            self.coll_recv::<T>(root, tag)
        };
        // Same tree shape as the non-blocking broadcast: one byte-model
        // routine serves both, so the schedules can never diverge.
        let bytes = tree_share_bytes(self, vr, &value);
        self.record_collective("bcast", bytes, started.elapsed().as_secs_f64());
        value
    }

    /// Zero-copy broadcast of an [`Arc`]-shared payload: only the `Arc`
    /// is cloned per tree edge — the payload itself is never deep-copied
    /// on any rank, root included (share the root's resident block with
    /// `Arc::clone` instead of packing a copy). The profiler books the
    /// *inner* value's wire bytes per tree send, exactly as
    /// [`Comm::bcast`] would for the owned value, so the modeled MPI
    /// traffic of a run is unchanged by going shared. Charge received
    /// blocks with [`Comm::mem_charge_shared`] to keep the once-per-rank
    /// accounting honest.
    pub fn bcast_shared<T: CommMsg + Sync>(&self, root: Rank, value: Option<Arc<T>>) -> Arc<T> {
        self.bcast(root, value)
    }

    /// Gather every rank's value at `root` (rank-ordered). Non-roots get `None`.
    pub fn gather<T: CommMsg>(&self, root: Rank, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag(op::GATHER);
        let started = Instant::now();
        let result = if self.rank() == root {
            let mut all: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            all[root] = Some(value);
            for (src, slot) in all.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.coll_recv::<T>(src, tag));
                }
            }
            Some(
                all.into_iter()
                    .map(|v| v.expect("gather slot filled"))
                    .collect(),
            )
        } else {
            let bytes = value.nbytes();
            self.coll_send(root, tag, value);
            self.record_collective("gather", bytes, 0.0);
            None
        };
        self.record_collective("gather", 0, started.elapsed().as_secs_f64());
        result
    }

    /// All ranks receive every rank's value, rank-ordered
    /// (gather at rank 0 + broadcast; 2(P−1) messages).
    pub fn allgather<T: CommMsg + Clone>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered)
    }

    /// Reduce all values to `root` with `op` (binomial tree). `op` must be
    /// associative + commutative. Non-roots get `None`.
    pub fn reduce<T: CommMsg>(&self, root: Rank, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let tag = self.next_coll_tag(op::REDUCE);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = Some(value);
        let mut step = 1;
        while step < p {
            if vr & step != 0 {
                let parent = (vr - step + root) % p;
                let value = acc.take().expect("value still held before sending");
                let bytes = value.nbytes();
                self.coll_send(parent, tag, value);
                self.record_collective("reduce", bytes, started.elapsed().as_secs_f64());
                return None;
            }
            if vr + step < p {
                let child = (vr + step + root) % p;
                let other = self.coll_recv::<T>(child, tag);
                acc = Some(op(acc.take().expect("accumulator held"), other));
            }
            step <<= 1;
        }
        self.record_collective("reduce", 0, started.elapsed().as_secs_f64());
        acc
    }

    /// Reduction whose result is available on every rank.
    pub fn allreduce<T: CommMsg + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.bcast(0, reduced)
    }

    /// Per-destination message sizes of a personalized exchange — the one
    /// place the `bufs[dst]` layout is validated and measured, shared by
    /// [`Comm::alltoallv`], [`Comm::ialltoallv`] and
    /// [`Comm::alltoallv_counts`]. Panics unless there is exactly one
    /// buffer per rank.
    fn personalized_counts<T>(&self, bufs: &[Vec<T>]) -> Vec<usize> {
        assert_eq!(
            bufs.len(),
            self.size(),
            "personalized exchange needs one buffer per rank"
        );
        bufs.iter().map(Vec::len).collect()
    }

    /// Personalized all-to-all: `bufs[dst]` is shipped to rank `dst`;
    /// returns the buffers received, indexed by source rank. The analogue
    /// of `MPI_Alltoallv` (and ELBA's "custom all-to-all" for edge triples).
    pub fn alltoallv<T: CommMsg>(&self, bufs: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.personalized_counts(&bufs); // validate one buffer per rank
        let tag = self.next_coll_tag(op::ALLTOALLV);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, buf) in bufs.into_iter().enumerate() {
            bytes += buf.nbytes();
            self.coll_send(dst, tag, buf);
        }
        let received: Vec<Vec<T>> = (0..self.size())
            .map(|src| self.coll_recv::<Vec<T>>(src, tag))
            .collect();
        self.record_collective("alltoallv", bytes, started.elapsed().as_secs_f64());
        received
    }

    /// Block reduce-scatter: every rank contributes one value *per rank*;
    /// rank `i` returns the reduction of all ranks' `i`-th contribution
    /// (`MPI_Reduce_scatter_block`). Used for global contig sizes (§4.2).
    pub fn reduce_scatter_block<T: CommMsg>(
        &self,
        contributions: Vec<T>,
        op: impl Fn(T, T) -> T,
    ) -> T {
        assert_eq!(
            contributions.len(),
            self.size(),
            "reduce_scatter_block needs one contribution per rank"
        );
        let tag = self.next_coll_tag(op::REDUCE_SCATTER);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, value) in contributions.into_iter().enumerate() {
            bytes += value.nbytes();
            self.coll_send(dst, tag, value);
        }
        let mut acc: Option<T> = None;
        for src in 0..self.size() {
            let value = self.coll_recv::<T>(src, tag);
            acc = Some(match acc.take() {
                None => value,
                Some(prev) => op(prev, value),
            });
        }
        self.record_collective("reduce_scatter", bytes, started.elapsed().as_secs_f64());
        acc.expect("at least one contribution")
    }

    /// Exclusive prefix scan: rank `r` returns `op` folded over the values
    /// of ranks `0..r`; rank 0 returns `identity`.
    pub fn exscan<T: CommMsg + Clone>(&self, value: T, identity: T, op: impl Fn(T, T) -> T) -> T {
        let tag = self.next_coll_tag(op::EXSCAN);
        let started = Instant::now();
        let prefix = if self.rank() == 0 {
            identity
        } else {
            self.coll_recv::<T>(self.rank() - 1, tag)
        };
        if self.rank() + 1 < self.size() {
            // The prefix clone is inherent to the scan, not a transport
            // copy: this rank must both *return* its own prefix and fold
            // it into the successor's — two live values with different
            // owners. Payloads here are scalar counts in practice; the
            // zero-copy shared path is for broadcast fan-out, where one
            // value reaches many ranks.
            let next = op(prefix.clone(), value);
            let bytes = next.nbytes();
            self.coll_send(self.rank() + 1, tag, next);
            self.record_collective("exscan", bytes, 0.0);
        }
        self.record_collective("exscan", 0, started.elapsed().as_secs_f64());
        prefix
    }

    /// Convenience: `alltoallv` message counts per destination, useful for
    /// tests and diagnostics. Shares the sizing (and shape validation)
    /// logic of [`Comm::alltoallv`] itself.
    pub fn alltoallv_counts<T: CommMsg>(&self, bufs: &[Vec<T>]) -> Vec<usize> {
        self.personalized_counts(bufs)
    }

    /// Non-blocking personalized all-to-all (`MPI_Ialltoallv` analogue):
    /// `bufs[dst]` is shipped to rank `dst` in chunks of at most
    /// `chunk_elems` elements, and the returned [`IalltoallvRequest`]
    /// yields per-source chunks *as they arrive* — the caller can fold
    /// each chunk into an accumulator while the rest of the exchange is
    /// still in flight, so neither side ever has to hold the full
    /// personalized exchange at once.
    ///
    /// Chunks from one source are delivered in posting order (the
    /// runtime's per-`(source, tag)` FIFO guarantee), so concatenating a
    /// source's chunks reconstructs its buffer exactly;
    /// [`IalltoallvRequest::wait`] does that and is therefore equivalent
    /// to [`Comm::alltoallv`]. Time blocked in
    /// `next` (the request is an [`Iterator`] over `(source, chunk)`
    /// pairs) or [`IalltoallvRequest::wait`] is booked to the profile's
    /// *wait* bucket, like `ibcast`.
    ///
    /// Collective: every rank must post the matching call in SPMD order
    /// and must drain the request to completion.
    pub fn ialltoallv<T: CommMsg + Clone + Sync>(
        &self,
        bufs: Vec<Vec<T>>,
        chunk_elems: usize,
    ) -> IalltoallvRequest<'_, T> {
        // validate one buffer per rank
        self.personalized_counts(&bufs);
        // One-shot exchanges disable the credit window: all chunks go
        // out eagerly at post time, preserving the guarantee that a
        // caller may run other blocking collectives between this call
        // and draining the request. (A finite window would queue excess
        // chunks sender-side until the caller drains — interleaving a
        // barrier before `wait` would then deadlock against a peer
        // parked on the missing chunks.)
        let mut req = self.ialltoallv_stream_with_window(chunk_elems, usize::MAX);
        for (dst, buf) in bufs.into_iter().enumerate() {
            req.post(dst, buf);
        }
        req.finish_sends();
        req
    }

    /// Open a *streaming* personalized exchange: like
    /// [`Comm::ialltoallv`], but outgoing data is supplied incrementally
    /// through [`IalltoallvRequest::post`] — any number of posts per
    /// destination, in any order, interleaved with draining inbound
    /// chunks — and sealed with [`IalltoallvRequest::finish_sends`].
    /// Ranks may post different amounts of traffic (termination is
    /// per-source, not count-based), which is what lets the k-mer
    /// exchange stream unevenly distributed reads without a per-batch
    /// barrier. One collective call regardless of how many chunks flow.
    ///
    /// Sends are flow-controlled: at most
    /// [`IalltoallvRequest::DEFAULT_WINDOW`] chunks may be outstanding
    /// (sent but not yet consumed by the receiver) per destination; see
    /// [`Comm::ialltoallv_stream_with_window`].
    pub fn ialltoallv_stream<T: CommMsg + Clone + Sync>(
        &self,
        chunk_elems: usize,
    ) -> IalltoallvRequest<'_, T> {
        self.ialltoallv_stream_with_window(chunk_elems, IalltoallvRequest::<T>::DEFAULT_WINDOW)
    }

    /// [`Comm::ialltoallv_stream`] with an explicit flow-control window:
    /// the sender keeps at most `window` unacknowledged chunks in flight
    /// per destination. Each consumed chunk is acknowledged by the
    /// receiver (a credit message on a dedicated tag); chunks posted
    /// beyond the window queue on the sender and flow out as credits
    /// return. This bounds the *transport-side* buffering of the
    /// exchange end-to-end — a rank scanning much slower than its peers
    /// holds at most `window` chunks per source in its mailbox, instead
    /// of an unbounded backlog.
    pub fn ialltoallv_stream_with_window<T: CommMsg + Clone + Sync>(
        &self,
        chunk_elems: usize,
        window: usize,
    ) -> IalltoallvRequest<'_, T> {
        assert!(chunk_elems > 0, "ialltoallv chunks need at least 1 element");
        assert!(window > 0, "flow-control window needs at least 1 chunk");
        let tag = self.next_coll_tag(op::IALLTOALLV);
        let ack_tag = self.next_coll_tag(op::IALLTOALLV);
        let p = self.size();
        IalltoallvRequest {
            comm: self,
            tag,
            ack_tag,
            chunk_elems,
            window,
            send_open: vec![true; p],
            pending_sends: (0..p).map(|_| std::collections::VecDeque::new()).collect(),
            credits: vec![window; p],
            sent_chunks: vec![0; p],
            acked_chunks: vec![0; p],
            terminator_sent: vec![false; p],
            peak_outstanding: 0,
            ack_inflight: (0..p).map(|_| None).collect(),
            inflight: (0..p).map(|src| Some(self.raw_irecv(src, tag))).collect(),
            open_sources: p,
            poll_cursor: 0,
        }
    }

    /// Non-blocking broadcast (`MPI_Ibcast` analogue): posts the same
    /// binomial tree as [`Comm::bcast`] but returns immediately with an
    /// [`IbcastRequest`]; the value is obtained by `wait`ing the request.
    ///
    /// Delivery is arrival-driven (see `bcast_deliver_tree`): the root
    /// pushes the value to *every* rank at post time, so posting the
    /// broadcast for stage `s+1` before computing stage `s` overlaps the
    /// whole tree's transfer with local work — and an inner rank that
    /// reaches its `wait`/`test` late never stalls the ranks below it
    /// (deep trees pipeline instead of serializing).
    ///
    /// Every rank of the communicator must post the matching `ibcast` in
    /// the same SPMD order as any other collective, and must eventually
    /// complete the request: completion is where a rank books the
    /// modeled wire bytes of its share of the tree.
    pub fn ibcast<T: CommMsg + Clone>(&self, root: Rank, value: Option<T>) -> IbcastRequest<'_, T> {
        let tag = self.next_coll_tag(op::IBCAST);
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root at 0
        if vr == 0 {
            let value = value.expect("ibcast root must supply a value");
            bcast_deliver_tree(self, root, tag, &value);
            let bytes = tree_share_bytes(self, vr, &value);
            self.record_coll_bytes("ibcast", bytes);
            IbcastRequest {
                comm: self,
                root,
                state: IbcastState::Ready(value),
            }
        } else {
            let req = self.raw_irecv::<T>(root, tag);
            IbcastRequest {
                comm: self,
                root,
                state: IbcastState::Waiting(req),
            }
        }
    }

    /// Zero-copy non-blocking broadcast of an [`Arc`]-shared payload:
    /// [`Comm::ibcast`] where every tree delivery clones only the `Arc`.
    /// Wire-byte accounting books the inner value's size per tree edge,
    /// identical to the owned path (the equivalence property tests pin
    /// this). This is the engine of the pipelined SUMMA stage
    /// broadcasts: a `q×q` grid moves each CSR panel with **zero**
    /// payload deep-copies.
    pub fn ibcast_shared<T: CommMsg + Sync>(
        &self,
        root: Rank,
        value: Option<Arc<T>>,
    ) -> IbcastRequest<'_, Arc<T>> {
        self.ibcast(root, value)
    }
}

/// Arrival-driven tree delivery: when a broadcast value "arrives" at a
/// rank, its whole subtree is fed in the same delivering path — which,
/// applied recursively from the root, collapses to the root pushing the
/// value into every rank's mailbox at post time. Inner tree ranks never
/// hold up their descendants by reaching `wait`/`test` late, closing the
/// ROADMAP item where deep trees (large q) serialized on hop-by-hop
/// forwarding. Physical copies: one `clone()` per non-root rank — a
/// refcount bump on the shared (`Arc`) path, a deep copy on the owned
/// path (the same total copy count hop-by-hop forwarding performed,
/// just executed by the delivering thread).
///
/// Wire bytes are *not* booked here: the binomial tree survives as the
/// byte model — each rank books its own modeled tree share via
/// [`tree_share_bytes`] when it completes, keeping per-rank profiled
/// traffic identical to the per-hop schedule an MPI library would run.
fn bcast_deliver_tree<T: CommMsg + Clone>(comm: &Comm, root: Rank, tag: Tag, value: &T) {
    let p = comm.size();
    for vr in 1..p {
        let dst = (vr + root) % p;
        comm.coll_send(dst, tag, value.clone());
    }
}

/// Modeled wire bytes of this rank's share of an (i)bcast binomial tree:
/// one message of `value.nbytes()` per tree child. The byte model every
/// broadcast books against, shared by the blocking, non-blocking, owned
/// and `Arc`-shared paths so their profiled traffic can never diverge.
fn tree_share_bytes<T: CommMsg>(comm: &Comm, vr: usize, value: &T) -> usize {
    let p = comm.size();
    let limit = if vr == 0 {
        p.next_power_of_two()
    } else {
        vr & vr.wrapping_neg()
    };
    let mut bytes = 0;
    let mut j = limit >> 1;
    while j >= 1 {
        if vr + j < p {
            bytes += value.nbytes();
        }
        j >>= 1;
    }
    bytes
}

enum IbcastState<'c, T: CommMsg> {
    /// Value in hand (root, or an inner node whose `test` completed);
    /// the subtree below was fed by the root's arrival-driven delivery.
    Ready(T),
    /// Still waiting on the parent tree node.
    Waiting(RecvRequest<'c, T>),
    /// Transient marker while `test` swaps states; never observable.
    Poisoned,
}

/// In-flight non-blocking broadcast; see [`Comm::ibcast`].
#[must_use = "ibcast must be completed with wait() — dropping it skips booking this rank's share of the collective"]
pub struct IbcastRequest<'c, T: CommMsg + Clone> {
    comm: &'c Comm,
    root: Rank,
    state: IbcastState<'c, T>,
}

impl<T: CommMsg + Clone> IbcastRequest<'_, T> {
    fn virtual_rank(&self) -> usize {
        let p = self.comm.size();
        (self.comm.rank() + p - self.root) % p
    }

    /// Book this rank's modeled share of the collective. The subtree was
    /// already fed physically at the root's post (arrival-driven
    /// delivery); completion only settles the per-rank byte model.
    fn complete(&self, value: &T) {
        let bytes = tree_share_bytes(self.comm, self.virtual_rank(), value);
        self.comm.record_coll_bytes("ibcast", bytes);
    }

    /// Poll for completion without blocking.
    pub fn test(&mut self) -> bool {
        match &mut self.state {
            IbcastState::Ready(_) => true,
            IbcastState::Waiting(req) => {
                if !req.test() {
                    return false;
                }
                let IbcastState::Waiting(req) =
                    std::mem::replace(&mut self.state, IbcastState::Poisoned)
                else {
                    unreachable!("state was just matched as Waiting");
                };
                let value = req.wait(); // non-blocking: test() buffered it
                self.complete(&value);
                self.state = IbcastState::Ready(value);
                true
            }
            IbcastState::Poisoned => unreachable!("ibcast state poisoned"),
        }
    }

    /// Block until the broadcast value arrives, book this rank's share
    /// of the collective, and return it. Blocked time is booked as
    /// *wait* time.
    pub fn wait(mut self) -> T {
        match std::mem::replace(&mut self.state, IbcastState::Poisoned) {
            IbcastState::Ready(value) => value,
            IbcastState::Waiting(req) => {
                let value = req.wait();
                self.complete(&value);
                value
            }
            IbcastState::Poisoned => unreachable!("ibcast state poisoned"),
        }
    }
}

/// Payload of one `ialltoallv` data chunk. A posted buffer larger than
/// one chunk is wrapped in a single `Arc` and its chunks travel as
/// zero-copy *views* into that shared allocation — the sender never
/// re-copies the tail the way a `split_off` chain would, and however
/// many chunks a buffer fans out into, the transport holds one
/// allocation. The receiver materializes each view into an owned `Vec`
/// when it consumes the chunk (the one copy a real MPI receive would
/// also make); the final view of a buffer recovers the allocation
/// itself without copying.
enum ChunkBody<T> {
    Owned(Vec<T>),
    Shared(Arc<Vec<T>>, std::ops::Range<usize>),
}

impl<T> ChunkBody<T> {
    fn len(&self) -> usize {
        match self {
            ChunkBody::Owned(v) => v.len(),
            ChunkBody::Shared(_, range) => range.len(),
        }
    }

    fn slice(&self) -> &[T] {
        match self {
            ChunkBody::Owned(v) => v,
            ChunkBody::Shared(buf, range) => &buf[range.clone()],
        }
    }
}

impl<T: Clone> ChunkBody<T> {
    /// Take the chunk's elements as an owned vector, copying only when
    /// the backing allocation is still shared with other chunks.
    fn into_vec(self) -> Vec<T> {
        match self {
            ChunkBody::Owned(v) => v,
            ChunkBody::Shared(buf, range) => match Arc::try_unwrap(buf) {
                Ok(mut v) => {
                    // Last view standing: reclaim the allocation.
                    v.truncate(range.end);
                    v.drain(..range.start);
                    v
                }
                Err(buf) => buf[range].to_vec(),
            },
        }
    }
}

/// Wire bytes — and the frame layout — match the owned `Vec<T>`
/// encoding exactly (length header + payload), so the shared fan-out is
/// invisible to the profiler *and* to the socket transport: a zero-copy
/// view serializes like the vector it is a view of, and always decodes
/// back as an owned chunk (sharing cannot cross an address space).
impl<T: CommMsg + Sync> CommMsg for ChunkBody<T> {
    fn nbytes(&self) -> usize {
        8 + self.slice().iter().map(CommMsg::nbytes).sum::<usize>()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        let slice = self.slice();
        out.extend_from_slice(&(slice.len() as u64).to_ne_bytes());
        T::wire_encode_slice(slice, out);
    }

    fn wire_decode(
        r: &mut crate::transport::wire::WireReader<'_>,
    ) -> Result<Self, crate::transport::wire::WireError> {
        Ok(ChunkBody::Owned(Vec::<T>::wire_decode(r)?))
    }
}

/// Wire format of one `ialltoallv` message: a chunk plus the last-marker
/// (`true` terminates the source's stream and carries no data).
type ChunkMsg<T> = (ChunkBody<T>, bool);
/// Outstanding receive for the next [`ChunkMsg`] from one source.
type ChunkRecv<'c, T> = RecvRequest<'c, ChunkMsg<T>>;

/// In-flight chunked personalized exchange; see [`Comm::ialltoallv`] and
/// [`Comm::ialltoallv_stream`].
///
/// Wire protocol: each outgoing buffer travels as zero or more
/// `(chunk, false)` messages followed by one empty `(_, true)` terminator
/// per destination. The per-`(source, tag)` FIFO guarantee of the runtime
/// keeps a source's chunks in posting order, so receivers can fold them
/// incrementally without reassembly metadata.
///
/// Sends are *flow-controlled*: every data chunk consumes one credit for
/// its destination, and the receiver returns the credit (an empty ack on
/// a dedicated tag) when the chunk is consumed by
/// [`IalltoallvRequest::try_next`]/`next`. A destination with no credits
/// queues further chunks sender-side; they flow out as credits return
/// (progress is made inside every `try_next`/`next` call). At most
/// `window` chunks per (source, destination) pair are therefore ever
/// resident in transport mailboxes — the exchange's memory bound is
/// end-to-end, not just application-side. Terminators bypass credits
/// (one tiny message per pair) but are only sent once the destination's
/// queued data has fully flowed out, preserving order.
#[must_use = "ialltoallv must be drained (next()/wait()) — abandoning it desynchronizes the collective"]
pub struct IalltoallvRequest<'c, T: CommMsg + Clone + Sync> {
    comm: &'c Comm,
    tag: Tag,
    /// Credit returns travel on their own tag so they never interleave
    /// with the data stream's FIFO.
    ack_tag: Tag,
    chunk_elems: usize,
    window: usize,
    /// Destinations still accepting `post` calls.
    send_open: Vec<bool>,
    /// Chunks awaiting credits, per destination (bounded by what the
    /// application has posted and not yet seen flow out; chunks of one
    /// posted buffer share its allocation).
    pending_sends: Vec<std::collections::VecDeque<ChunkBody<T>>>,
    /// Remaining send credits per destination (`window` minus chunks in
    /// flight).
    credits: Vec<usize>,
    sent_chunks: Vec<u64>,
    acked_chunks: Vec<u64>,
    /// Whether the destination's terminator has gone out (requires the
    /// destination to be sealed and its pending queue drained).
    terminator_sent: Vec<bool>,
    /// Diagnostic: most chunks ever simultaneously unacknowledged toward
    /// one destination. Never exceeds `window` by construction.
    peak_outstanding: usize,
    /// One outstanding credit receive per destination with chunks in
    /// flight.
    ack_inflight: Vec<Option<RecvRequest<'c, ()>>>,
    /// One outstanding receive per source still streaming; `None` once
    /// the source's terminator has been consumed.
    inflight: Vec<Option<ChunkRecv<'c, T>>>,
    open_sources: usize,
    /// Round-robin fairness cursor so one chatty source cannot starve
    /// the others in `try_next`.
    poll_cursor: usize,
}

impl<'c, T: CommMsg + Clone + Sync> IalltoallvRequest<'c, T> {
    /// Default flow-control window: unacknowledged chunks allowed per
    /// destination before the sender queues locally.
    pub const DEFAULT_WINDOW: usize = 16;

    /// Ship `buf` to rank `dst`, split into chunks of at most
    /// `chunk_elems` elements. May be called any number of times per
    /// destination until [`IalltoallvRequest::finish_sends`]; an empty
    /// `buf` posts nothing. Posting never blocks: chunks beyond the
    /// destination's credit window queue locally and flow out during
    /// subsequent `try_next`/`next` calls as credits return.
    pub fn post(&mut self, dst: Rank, buf: Vec<T>) {
        self.post_checked(dst, buf).unwrap_or_else(|e| raise(e))
    }

    /// Fallible face of [`IalltoallvRequest::post`]: a dead peer is a
    /// typed [`CommError`] instead of an unwind.
    pub fn post_checked(&mut self, dst: Rank, buf: Vec<T>) -> Result<(), CommError> {
        assert!(
            self.send_open[dst],
            "ialltoallv: post to rank {dst} after finish_sends"
        );
        // Reclaimed credits must drain the queue immediately, not sit
        // idle until the next try_next — a posting burst would otherwise
        // serialize behind its first window.
        self.flush_sends()?;
        if buf.is_empty() {
            return Ok(());
        }
        if buf.len() <= self.chunk_elems {
            self.enqueue_chunk(dst, ChunkBody::Owned(buf))?;
        } else {
            // Shared fan-out: one Arc'd allocation, chunk-sized views.
            // (A split_off chain would re-copy the remaining tail once
            // per chunk — O(len²/chunk) moves for a large buffer.)
            let shared = Arc::new(buf);
            let mut start = 0;
            while start < shared.len() {
                let end = (start + self.chunk_elems).min(shared.len());
                self.enqueue_chunk(dst, ChunkBody::Shared(Arc::clone(&shared), start..end))?;
                start = end;
            }
        }
        Ok(())
    }

    /// Attribute an error from a comm primitive to this collective.
    fn op_err(e: CommError) -> CommError {
        e.in_op("ialltoallv")
    }

    /// Ship one chunk now if the destination has credit and no queue,
    /// else queue it.
    fn enqueue_chunk(&mut self, dst: Rank, chunk: ChunkBody<T>) -> Result<(), CommError> {
        if self.pending_sends[dst].is_empty() && self.credits[dst] > 0 {
            self.send_chunk(dst, chunk)
        } else {
            self.pending_sends[dst].push_back(chunk);
            Ok(())
        }
    }

    fn send_chunk(&mut self, dst: Rank, chunk: ChunkBody<T>) -> Result<(), CommError> {
        debug_assert!(self.credits[dst] > 0);
        self.credits[dst] -= 1;
        self.sent_chunks[dst] += 1;
        let outstanding = (self.sent_chunks[dst] - self.acked_chunks[dst]) as usize;
        self.peak_outstanding = self.peak_outstanding.max(outstanding);
        let msg = (chunk, false);
        self.comm.record_coll_bytes("ialltoallv", msg.nbytes());
        self.comm
            .coll_send_checked(dst, self.tag, msg)
            .map_err(Self::op_err)
    }

    /// Reap any credits that have come back. Surfacing a dead peer here
    /// is what keeps `wait_for_credit` live: outstanding acks toward a
    /// dead destination can never return, and the probe must error
    /// rather than let the sender park on them forever.
    fn pump_acks(&mut self) -> Result<(), CommError> {
        for dst in 0..self.comm.size() {
            while self.acked_chunks[dst] < self.sent_chunks[dst] {
                let req = self.ack_inflight[dst]
                    .get_or_insert_with(|| self.comm.raw_irecv(dst, self.ack_tag));
                if !req.try_test().map_err(Self::op_err)? {
                    break;
                }
                let req = self.ack_inflight[dst].take().expect("just inserted");
                req.wait(); // non-blocking: test() buffered it
                self.acked_chunks[dst] += 1;
                // Saturating: an unwindowed exchange starts at
                // usize::MAX credits.
                self.credits[dst] = self.credits[dst].saturating_add(1);
            }
        }
        Ok(())
    }

    /// Move queued chunks (and due terminators) out under the available
    /// credits.
    fn flush_sends(&mut self) -> Result<(), CommError> {
        self.pump_acks()?;
        for dst in 0..self.comm.size() {
            while self.credits[dst] > 0 {
                let Some(chunk) = self.pending_sends[dst].pop_front() else {
                    break;
                };
                self.send_chunk(dst, chunk)?;
            }
            if !self.send_open[dst]
                && self.pending_sends[dst].is_empty()
                && !self.terminator_sent[dst]
            {
                let msg: ChunkMsg<T> = (ChunkBody::Owned(Vec::new()), true);
                self.comm.record_coll_bytes("ialltoallv", msg.nbytes());
                self.comm
                    .coll_send_checked(dst, self.tag, msg)
                    .map_err(Self::op_err)?;
                self.terminator_sent[dst] = true;
            }
        }
        Ok(())
    }

    /// Seal every destination: no further [`IalltoallvRequest::post`]
    /// calls are accepted, and each peer's terminator goes out as soon as
    /// its queued chunks have flowed out. Idempotent, non-blocking. Must
    /// be called by every rank for the exchange to terminate
    /// ([`IalltoallvRequest::wait`] calls it implicitly); after sealing,
    /// keep draining with `next`/`wait` so queued sends make progress.
    pub fn finish_sends(&mut self) {
        self.finish_sends_checked().unwrap_or_else(|e| raise(e))
    }

    /// Fallible face of [`IalltoallvRequest::finish_sends`].
    pub fn finish_sends_checked(&mut self) -> Result<(), CommError> {
        self.send_open.iter_mut().for_each(|open| *open = false);
        self.flush_sends()
    }

    /// Number of sources that have not yet sent their terminator. The
    /// exchange is complete when this reaches zero. A consumer that
    /// drains the exchange via [`try_next`] alone must still make one
    /// final [`next`] call (it returns `None`) before dropping the
    /// request: that call block-reaps the in-flight credit acks for
    /// chunks this rank sent, which would otherwise outlive the
    /// collective as stray envelopes in the mailbox.
    ///
    /// [`try_next`]: IalltoallvRequest::try_next
    /// [`next`]: Iterator::next
    pub fn open_sources(&self) -> usize {
        self.open_sources
    }

    /// Diagnostic: the most chunks ever simultaneously unacknowledged
    /// toward a single destination — ≤ the flow-control window by
    /// construction.
    pub fn peak_outstanding(&self) -> usize {
        self.peak_outstanding
    }

    /// The flow-control window this exchange runs under.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Items queued sender-side awaiting credits. Producers that want a
    /// *bounded* application-side footprint throttle on this (see the
    /// streaming k-mer exchange): flow control caps what sits in
    /// transport mailboxes, but a producer that keeps posting ahead of a
    /// slow receiver grows this queue instead — the backlog has to live
    /// somewhere until the receiver consumes it.
    pub fn pending_send_items(&self) -> usize {
        self.pending_sends
            .iter()
            .flat_map(|q| q.iter())
            .map(ChunkBody::len)
            .sum()
    }

    /// Flush whatever credits allow, then block until the mailbox
    /// changes (an ack or an inbound chunk) if queued sends remain —
    /// the parking primitive behind producer-side throttling. Blocked
    /// time books to the *wait* bucket. Returns immediately when the
    /// queue is empty *or* an inbound chunk is ready for [`try_next`]:
    /// consuming that chunk is what grants the peer its credit, so
    /// parking past it would deadlock two mutually credit-exhausted
    /// ranks. Callers loop `wait_for_credit` with a `try_next` drain
    /// until the queue empties.
    ///
    /// [`try_next`]: IalltoallvRequest::try_next
    pub fn wait_for_credit(&mut self) {
        self.wait_for_credit_checked().unwrap_or_else(|e| raise(e))
    }

    /// Fallible face of [`IalltoallvRequest::wait_for_credit`]: a peer
    /// dying mid-exchange errors out of the park (releasing the
    /// credit-blocked sends queued toward it) instead of deadlocking —
    /// its closed flag bumps the inbox sequence, the probe sweep runs,
    /// and the dead peer surfaces from `pump_acks` or the inbound probe.
    pub fn wait_for_credit_checked(&mut self) -> Result<(), CommError> {
        let mut waited: Option<Instant> = None;
        let result = loop {
            // Seq is read before the flush and the inbound probe: an
            // ack or chunk arriving in between bumps it and the park
            // returns at once (no lost wakeup).
            let seen = self.comm.inbox_seq();
            if let Err(e) = self.flush_sends() {
                break Err(e);
            }
            if self.pending_send_items() == 0 {
                break Ok(());
            }
            match self.inbound_ready() {
                Err(e) => break Err(e),
                Ok(true) => break Ok(()),
                Ok(false) => {}
            }
            waited.get_or_insert_with(Instant::now);
            self.comm.park_inbox(seen);
        };
        if let Some(started) = waited {
            self.comm.record_wait(started.elapsed().as_secs_f64());
        }
        result
    }

    /// Whether any source has a chunk (or terminator) consumable right
    /// now. `test` buffers a matched envelope inside the request, so a
    /// positive probe is never lost — the next `try_next` returns it.
    fn inbound_ready(&mut self) -> Result<bool, CommError> {
        for req in self.inflight.iter_mut().flatten() {
            if req.try_test().map_err(Self::op_err)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether this rank's outbound side is fully done (sealed, queues
    /// drained, terminators on the wire).
    fn sends_done(&self) -> bool {
        self.terminator_sent.iter().all(|&t| t)
    }

    /// Poll for an arrived chunk from any source, without blocking.
    /// Returns the source rank and its next chunk (≤ `chunk_elems`
    /// elements, in per-source posting order), or `None` if nothing is
    /// ready right now. Terminators are consumed transparently, and each
    /// consumed data chunk returns a credit to its sender. Arrived
    /// credit acks are reaped on every call, but a consumer that drains
    /// the exchange via `try_next` alone must still make one final
    /// [`next`](Iterator::next) call (it returns `None`) before
    /// dropping the request, to block-reap acks still in flight — see
    /// [`open_sources`](IalltoallvRequest::open_sources).
    pub fn try_next(&mut self) -> Option<(Rank, Vec<T>)> {
        self.try_next_checked().unwrap_or_else(|e| raise(e))
    }

    /// Fallible face of [`IalltoallvRequest::try_next`]: a source dying
    /// mid-stream (its terminator can never arrive) is a typed
    /// [`CommError`] instead of an unwind.
    pub fn try_next_checked(&mut self) -> Result<Option<(Rank, Vec<T>)>, CommError> {
        self.flush_sends()?;
        let p = self.comm.size();
        for i in 0..p {
            let src = (self.poll_cursor + i) % p;
            let Some(req) = self.inflight[src].as_mut() else {
                continue; // source already terminated
            };
            if !req.try_test().map_err(Self::op_err)? {
                continue;
            }
            let req = self.inflight[src].take().expect("matched as Some");
            let (chunk, last) = req.wait(); // non-blocking: test() buffered it
            if last {
                debug_assert!(chunk.len() == 0, "terminators carry no data");
                self.open_sources -= 1;
                continue; // inflight[src] stays None; scan the next source
            }
            self.inflight[src] = Some(self.comm.raw_irecv(src, self.tag));
            self.poll_cursor = (src + 1) % p;
            // Return the credit: the chunk has left the mailbox. Acks
            // carry no payload but are real protocol messages — record
            // them so the profiler's message count (and the α-term of
            // the machine model) sees the flow-control traffic.
            self.comm.record_coll_bytes("ialltoallv", 0);
            self.comm
                .coll_send_checked(src, self.ack_tag, ())
                .map_err(Self::op_err)?;
            return Ok(Some((src, chunk.into_vec())));
        }
        Ok(None)
    }

    /// Whether the whole exchange is over from this rank's perspective:
    /// all sources terminated and all own terminators on the wire. The
    /// first condition implies the exchange was sealed (this rank is one
    /// of its own sources, and its own terminator only goes out after
    /// `finish_sends`), so an unsealed exchange is never complete.
    fn complete(&self) -> bool {
        self.open_sources == 0 && self.sends_done()
    }

    /// Block-reap the credits still in flight for chunks we sent, so no
    /// stray ack messages outlive the collective in the mailbox.
    fn reap_remaining_acks(&mut self) -> Result<(), CommError> {
        for dst in 0..self.comm.size() {
            while self.acked_chunks[dst] < self.sent_chunks[dst] {
                let req = self.ack_inflight[dst]
                    .take()
                    .unwrap_or_else(|| self.comm.raw_irecv(dst, self.ack_tag));
                req.wait_checked().map_err(Self::op_err)?;
                self.acked_chunks[dst] += 1;
                self.credits[dst] = self.credits[dst].saturating_add(1);
            }
        }
        Ok(())
    }

    /// Drain the whole exchange into per-source buffers (seals this
    /// rank's sends first). `comm.ialltoallv(bufs, n).wait()` is
    /// equivalent to `comm.alltoallv(bufs)`.
    pub fn wait(mut self) -> Vec<Vec<T>> {
        self.finish_sends();
        let mut received: Vec<Vec<T>> = (0..self.comm.size()).map(|_| Vec::new()).collect();
        for (src, mut chunk) in self.by_ref() {
            received[src].append(&mut chunk);
        }
        received
    }
}

/// Blocking chunk stream: `next` yields `(source, chunk)` pairs, blocking
/// until one arrives and returning `None` once every source has sent its
/// terminator and (if sealed) this rank's own queued sends have flowed
/// out — so a receive loop is literally a `for` loop over the request.
/// Blocking parks on the mailbox condvar (no polling); blocked time is
/// booked to the profile's *wait* bucket (like `ibcast`), keeping
/// communication/computation overlap measurable. Use
/// [`IalltoallvRequest::try_next`] to poll without blocking.
impl<T: CommMsg + Clone + Sync> IalltoallvRequest<'_, T> {
    /// Fallible face of the blocking [`Iterator::next`]: a peer dying
    /// mid-exchange errors out of the park (its closed flag bumps the
    /// inbox sequence and the next probe sweep surfaces it) instead of
    /// unwinding.
    pub fn next_checked(&mut self) -> Result<Option<(Rank, Vec<T>)>, CommError> {
        let mut out = self.try_next_checked();
        if matches!(out, Ok(None)) && !self.complete() {
            let started = Instant::now();
            out = loop {
                // Read the change counter *before* the probe sweep: an
                // arrival in between bumps it and park returns at once.
                let seen = self.comm.inbox_seq();
                match self.try_next_checked() {
                    Ok(Some(chunk)) => break Ok(Some(chunk)),
                    Ok(None) => {}
                    Err(e) => break Err(e),
                }
                if self.complete() {
                    break Ok(None);
                }
                self.comm.park_inbox(seen);
            };
            self.comm.record_wait(started.elapsed().as_secs_f64());
        }
        if matches!(out, Ok(None)) && self.open_sources == 0 {
            // Exchange over: collect the last credits so nothing leaks
            // into the mailbox past the collective (blocked time books
            // to the wait bucket via the requests themselves).
            self.reap_remaining_acks()?;
        }
        out
    }
}

impl<T: CommMsg + Clone + Sync> Iterator for IalltoallvRequest<'_, T> {
    type Item = (Rank, Vec<T>);

    fn next(&mut self) -> Option<(Rank, Vec<T>)> {
        self.next_checked().unwrap_or_else(|e| raise(e))
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{Backend, Runner};

    fn nonpow2_sizes() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7, 8, 9]
    }

    #[test]
    fn barrier_all_sizes() {
        for p in nonpow2_sizes() {
            Runner::new(Backend::InProcess).ranks(p).run(|comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let value = if comm.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    comm.bcast(root, value)
                });
                assert!(
                    out.iter().all(|&v| v == 42 + root as u64),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn bcast_vectors() {
        let out = Runner::new(Backend::InProcess).ranks(6).run(|comm| {
            let value = if comm.rank() == 2 {
                Some(vec![1u32, 2, 3])
            } else {
                None
            };
            comm.bcast(2, value)
        });
        assert!(out.iter().all(|v| v == &vec![1u32, 2, 3]));
    }

    #[test]
    fn gather_rank_ordered() {
        for p in nonpow2_sizes() {
            let out = Runner::new(Backend::InProcess)
                .ranks(p)
                .run(|comm| comm.gather(0, comm.rank() as u64 * 10));
            let root = out[0].as_ref().expect("root holds result");
            assert_eq!(root, &(0..p as u64).map(|r| r * 10).collect::<Vec<_>>());
            assert!(out[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Runner::new(Backend::InProcess)
                    .ranks(p)
                    .run(move |comm| comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b));
                let expect = (p * (p + 1) / 2) as u64;
                assert_eq!(out[root], Some(expect), "p={p} root={root}");
                for (r, v) in out.iter().enumerate() {
                    if r != root {
                        assert!(v.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Runner::new(Backend::InProcess)
            .ranks(7)
            .run(|comm| comm.allreduce(comm.rank() as u64, u64::max));
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in nonpow2_sizes() {
            let out = Runner::new(Backend::InProcess)
                .ranks(p)
                .run(|comm| comm.allgather(comm.rank() as u64));
            for v in out {
                assert_eq!(v, (0..p as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn alltoallv_personalizes() {
        let p = 4;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            // rank r sends [r*10 + dst] to each dst.
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![comm.rank() as u64 * 10 + dst as u64])
                .collect();
            comm.alltoallv(bufs)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![src as u64 * 10 + dst as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_empty_buffers_ok() {
        let out = Runner::new(Backend::InProcess).ranks(3).run(|comm| {
            let bufs: Vec<Vec<u64>> = vec![Vec::new(); 3];
            comm.alltoallv(bufs)
        });
        assert!(out.iter().all(|bufs| bufs.iter().all(Vec::is_empty)));
    }

    #[test]
    fn reduce_scatter_block_sums_columns() {
        let p = 5;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            // contribution[i] = rank + i; reduced column i = sum over ranks.
            let contributions: Vec<u64> = (0..p).map(|i| comm.rank() as u64 + i as u64).collect();
            comm.reduce_scatter_block(contributions, |a, b| a + b)
        });
        let rank_sum: u64 = (0..p as u64).sum();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, rank_sum + (p * i) as u64);
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let out = Runner::new(Backend::InProcess)
            .ranks(6)
            .run(|comm| comm.exscan(comm.rank() as u64 + 1, 0, |a, b| a + b));
        // rank r gets sum of 1..=r
        assert_eq!(out, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn ibcast_from_every_root_all_sizes() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let value = if comm.rank() == root {
                        Some(root as u64 + 7)
                    } else {
                        None
                    };
                    comm.ibcast(root, value).wait()
                });
                assert!(
                    out.iter().all(|&v| v == root as u64 + 7),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn ibcast_overlaps_with_local_work() {
        // Post, do local work, then wait — the canonical pipelined shape.
        let out = Runner::new(Backend::InProcess).ranks(5).run(|comm| {
            let req = comm.ibcast(0, (comm.rank() == 0).then(|| vec![1u64, 2, 3]));
            let local: u64 = (0..1000u64).sum(); // stand-in compute
            let value = req.wait();
            value.iter().sum::<u64>() + local % 2
        });
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn two_outstanding_ibcasts_complete_in_any_order() {
        // The double-buffered SUMMA posts A and B broadcasts for the next
        // stage before waiting on either.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let a = comm.ibcast(0, (comm.rank() == 0).then_some(10u64));
            let b = comm.ibcast(1, (comm.rank() == 1).then_some(20u64));
            let vb = b.wait();
            let va = a.wait();
            va + vb
        });
        assert!(out.iter().all(|&v| v == 30));
    }

    #[test]
    fn ibcast_test_completes_without_wait_blocking() {
        let out = Runner::new(Backend::InProcess).ranks(3).run(|comm| {
            let mut req = comm.ibcast(0, (comm.rank() == 0).then_some(5u64));
            while !req.test() {
                std::thread::yield_now();
            }
            req.wait()
        });
        assert_eq!(out, vec![5, 5, 5]);
    }

    #[test]
    fn ibcast_forwards_at_arrival_not_at_inner_ranks_wait() {
        // p = 4, root 0: binomial tree 0 → {2, 1}, 2 → {3}. Rank 2
        // blocks on a message rank 3 only sends *after* completing its
        // own broadcast wait. Under hop-by-hop forwarding (inner ranks
        // forwarding on their own wait/test) this deadlocks: 3 waits for
        // 2's forward, 2 waits for 3's ack. Arrival-driven delivery
        // feeds rank 3 at the root's post, so the cycle never forms.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let req = comm.ibcast(0, (comm.rank() == 0).then_some(7u64));
            match comm.rank() {
                2 => {
                    let ack = comm.recv::<u64>(3, 1);
                    req.wait() + ack
                }
                3 => {
                    let v = req.wait();
                    comm.send(2, 1, v * 10);
                    v
                }
                _ => req.wait(),
            }
        });
        assert_eq!(out, vec![7, 7, 77, 7]);
    }

    #[test]
    fn bcast_subtree_does_not_depend_on_inner_rank_progress() {
        // Blocking-bcast twin of the arrival-driven test: rank 2 (the
        // tree parent of rank 3) refuses to enter the broadcast until
        // rank 3 has already received its value.
        let out = Runner::new(Backend::InProcess)
            .ranks(4)
            .run(|comm| match comm.rank() {
                2 => {
                    let ack = comm.recv::<u64>(3, 1);
                    let v = comm.bcast(0, None::<u64>);
                    v + ack
                }
                3 => {
                    let v = comm.bcast(0, None);
                    comm.send(2, 1, v * 10);
                    v
                }
                _ => comm.bcast(0, (comm.rank() == 0).then_some(5u64)),
            });
        assert_eq!(out, vec![5, 5, 55, 5]);
    }

    #[test]
    fn ibcast_interleaves_with_blocking_collectives() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let req = comm.ibcast(2, (comm.rank() == 2).then_some(9u64));
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let v = req.wait();
            comm.barrier();
            v * 100 + sum
        });
        assert!(out.iter().all(|&v| v == 904));
    }

    #[test]
    fn ibcast_books_wait_not_comm_time() {
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(2)
            .run_profiled(|comm| {
                let _g = comm.phase("stage");
                if comm.rank() == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(15));
                    comm.ibcast(0, Some(3u64)).wait()
                } else {
                    comm.ibcast(0, None).wait()
                }
            });
        assert!(
            profile.max_wait_secs("stage") > 0.005,
            "wait bucket must fill"
        );
        assert!(
            profile.max_comm_secs("stage") < 0.005,
            "comm bucket must not"
        );
    }

    #[test]
    fn ialltoallv_equals_alltoallv_all_sizes() {
        for p in nonpow2_sizes() {
            for chunk in [1usize, 3, 64] {
                let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let make = || -> Vec<Vec<u64>> {
                        (0..comm.size())
                            .map(|dst| {
                                (0..(comm.rank() + 2 * dst) % 5)
                                    .map(|i| (comm.rank() * 100 + dst * 10 + i) as u64)
                                    .collect()
                            })
                            .collect()
                    };
                    let got = comm.ialltoallv(make(), chunk).wait();
                    let want = comm.alltoallv(make());
                    got == want
                });
                assert!(out.iter().all(|&ok| ok), "p={p} chunk={chunk}");
            }
        }
    }

    #[test]
    fn ialltoallv_chunks_preserve_source_order() {
        // One big buffer split into many chunks: concatenation in arrival
        // order must reproduce it exactly (per-(source, tag) FIFO).
        let out = Runner::new(Backend::InProcess).ranks(3).run(|comm| {
            let bufs: Vec<Vec<u64>> = (0..3)
                .map(|dst| (0..47u64).map(|i| dst as u64 * 1000 + i).collect())
                .collect();
            let mut req = comm.ialltoallv(bufs, 5);
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); 3];
            let mut largest_chunk = 0usize;
            for (src, mut chunk) in req.by_ref() {
                largest_chunk = largest_chunk.max(chunk.len());
                got[src].append(&mut chunk);
            }
            assert!(largest_chunk <= 5, "chunk cap violated: {largest_chunk}");
            // Every sender src built bufs[dst] = [dst*1000 + i], so we
            // (rank = dst) must see rank*1000 + 0..47, in order, from all.
            got.iter().all(|buf| {
                buf.len() == 47
                    && buf
                        .iter()
                        .enumerate()
                        .all(|(i, &v)| v == comm.rank() as u64 * 1000 + i as u64)
            })
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_streaming_posts_in_rounds() {
        // The k-mer exchange shape: ranks post different numbers of
        // rounds, folding inbound chunks between posts; totals must match
        // the sum of everything posted toward each rank.
        let p = 4;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let rounds = comm.rank() + 1; // uneven traffic per rank
            let mut req = comm.ialltoallv_stream::<u64>(3);
            let mut received: Vec<u64> = Vec::new();
            for round in 0..rounds {
                for dst in 0..p {
                    let batch: Vec<u64> = (0..4)
                        .map(|i| (comm.rank() * 1000 + round * 100 + dst * 10 + i) as u64)
                        .collect();
                    req.post(dst, batch);
                }
                while let Some((_, chunk)) = req.try_next() {
                    received.extend(chunk);
                }
            }
            req.finish_sends();
            for (_, chunk) in req.by_ref() {
                received.extend(chunk);
            }
            // src sends (src+1) rounds × 4 values to every rank.
            let want: u64 = (0..p)
                .map(|src| {
                    (0..=src)
                        .map(|round| {
                            (0..4)
                                .map(|i| (src * 1000 + round * 100 + comm.rank() * 10 + i) as u64)
                                .sum::<u64>()
                        })
                        .sum::<u64>()
                })
                .sum();
            let total: u64 = received.iter().sum();
            assert_eq!(
                received.len(),
                (0..p).map(|src| (src + 1) * 4).sum::<usize>()
            );
            total == want
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_empty_and_single_rank() {
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let got = comm.ialltoallv(vec![vec![7u64, 8, 9]], 2).wait();
            got == vec![vec![7u64, 8, 9]]
        });
        assert!(out[0]);
        let out = Runner::new(Backend::InProcess).ranks(3).run(|comm| {
            let got = comm.ialltoallv(vec![Vec::<u64>::new(); 3], 4).wait();
            got.iter().all(Vec::is_empty)
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_interleaves_with_collectives_and_p2p() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let p2p = comm.irecv::<u64>(left, 11);
            comm.isend(right, 11, comm.rank() as u64).wait();
            let bufs: Vec<Vec<u64>> = (0..4)
                .map(|dst| vec![(comm.rank() * 4 + dst) as u64])
                .collect();
            let req = comm.ialltoallv(bufs, 1);
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let got = req.wait();
            let from_left = p2p.wait();
            comm.barrier();
            let diag = got[comm.rank()][0];
            sum == 4 && from_left == left as u64 && diag == (comm.rank() * 4 + comm.rank()) as u64
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_books_wait_not_comm_time() {
        let (_, profile) = Runner::new(Backend::InProcess)
            .ranks(2)
            .run_profiled(|comm| {
                let _g = comm.phase("stage");
                if comm.rank() == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(15));
                }
                let bufs: Vec<Vec<u64>> = vec![vec![1], vec![2]];
                comm.ialltoallv(bufs, 8).wait()
            });
        assert!(
            profile.max_wait_secs("stage") > 0.005,
            "wait bucket must fill"
        );
        assert!(
            profile.max_comm_secs("stage") < 0.005,
            "comm bucket must not"
        );
    }

    #[test]
    fn flow_control_caps_outstanding_chunks() {
        // A fast sender against a deliberately slow receiver: the credit
        // protocol must keep unacknowledged chunks per destination at or
        // below the window, no matter how far ahead the sender scans.
        let out = Runner::new(Backend::InProcess).ranks(2).run(|comm| {
            let window = 3usize;
            let mut req = comm.ialltoallv_stream_with_window::<u64>(4, window);
            if comm.rank() == 0 {
                // 4 elems per chunk x 30 posts = 30 chunks toward rank 1.
                for round in 0..30u64 {
                    req.post(1, (0..4).map(|i| round * 4 + i).collect());
                }
            }
            req.finish_sends();
            let mut received = 0usize;
            for (_, chunk) in req.by_ref() {
                received += chunk.len();
                if comm.rank() == 1 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            (req.peak_outstanding(), req.window(), received)
        });
        let (peak, window, _) = out[0];
        assert!(peak <= window, "rank 0 peak {peak} exceeds window {window}");
        assert!(peak > 0, "sender must have had chunks in flight");
        assert_eq!(out[1].2, 120, "receiver must still get every element");
    }

    #[test]
    fn flow_control_window_one_matches_alltoallv() {
        // The tightest window (one chunk in flight per destination) must
        // still complete and reproduce the blocking exchange exactly,
        // including under mutual pressure on every pair at once.
        for p in [1usize, 2, 4, 5] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let make = || -> Vec<Vec<u64>> {
                    (0..comm.size())
                        .map(|dst| {
                            (0..17 + comm.rank() + dst)
                                .map(|i| (comm.rank() * 1000 + dst * 100 + i) as u64)
                                .collect()
                        })
                        .collect()
                };
                let mut req = comm.ialltoallv_stream_with_window(2, 1);
                for (dst, buf) in make().into_iter().enumerate() {
                    req.post(dst, buf);
                }
                req.finish_sends();
                let mut got: Vec<Vec<u64>> = vec![Vec::new(); comm.size()];
                let peak = {
                    for (src, mut chunk) in req.by_ref() {
                        got[src].append(&mut chunk);
                    }
                    req.peak_outstanding()
                };
                let want = comm.alltoallv(make());
                assert!(peak <= 1, "window 1 violated: {peak}");
                got == want
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 5, comm.rank() as u64);
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let from_left = comm.recv::<u64>(left, 5);
            comm.barrier();
            sum + from_left
        });
        assert_eq!(out, vec![7, 4, 5, 6]);
    }
}
