//! Collective operations over a [`Comm`], implemented with the classic
//! algorithms whose message counts match what an MPI library would issue:
//! binomial trees for broadcast/reduce, dissemination barrier, flat
//! personalized exchange for `alltoallv`. Reduction operators must be
//! associative and commutative (as for `MPI_Op`).

use std::time::Instant;

use crate::msg::CommMsg;
use crate::runtime::{op, Comm, Rank, RecvRequest, Tag};

impl Comm {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ P⌉ rounds).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag(op::BARRIER);
        let started = Instant::now();
        let p = self.size();
        let mut step = 1;
        while step < p {
            let dst = (self.rank() + step) % p;
            let src = (self.rank() + p - step) % p;
            self.coll_send(dst, tag, ());
            self.coll_recv::<()>(src, tag);
            step <<= 1;
        }
        self.record_collective("barrier", 0, started.elapsed().as_secs_f64());
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value (binomial tree, ⌈log₂ P⌉ depth).
    pub fn bcast<T: CommMsg + Clone>(&self, root: Rank, value: Option<T>) -> T {
        let tag = self.next_coll_tag(op::BCAST);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root at 0
        let value = if vr == 0 {
            value.expect("bcast root must supply a value")
        } else {
            let lsb = vr & vr.wrapping_neg();
            let parent = (vr - lsb + root) % p;
            self.coll_recv::<T>(parent, tag)
        };
        // Same tree shape as the non-blocking broadcast: one forwarding
        // routine serves both, so the schedules can never diverge.
        let bytes = ibcast_forward(self, root, tag, vr, &value);
        self.record_collective("bcast", bytes, started.elapsed().as_secs_f64());
        value
    }

    /// Gather every rank's value at `root` (rank-ordered). Non-roots get `None`.
    pub fn gather<T: CommMsg>(&self, root: Rank, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag(op::GATHER);
        let started = Instant::now();
        let result = if self.rank() == root {
            let mut all: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            all[root] = Some(value);
            for (src, slot) in all.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.coll_recv::<T>(src, tag));
                }
            }
            Some(
                all.into_iter()
                    .map(|v| v.expect("gather slot filled"))
                    .collect(),
            )
        } else {
            let bytes = value.nbytes();
            self.coll_send(root, tag, value);
            self.record_collective("gather", bytes, 0.0);
            None
        };
        self.record_collective("gather", 0, started.elapsed().as_secs_f64());
        result
    }

    /// All ranks receive every rank's value, rank-ordered
    /// (gather at rank 0 + broadcast; 2(P−1) messages).
    pub fn allgather<T: CommMsg + Clone>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered)
    }

    /// Reduce all values to `root` with `op` (binomial tree). `op` must be
    /// associative + commutative. Non-roots get `None`.
    pub fn reduce<T: CommMsg>(&self, root: Rank, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let tag = self.next_coll_tag(op::REDUCE);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = Some(value);
        let mut step = 1;
        while step < p {
            if vr & step != 0 {
                let parent = (vr - step + root) % p;
                let value = acc.take().expect("value still held before sending");
                let bytes = value.nbytes();
                self.coll_send(parent, tag, value);
                self.record_collective("reduce", bytes, started.elapsed().as_secs_f64());
                return None;
            }
            if vr + step < p {
                let child = (vr + step + root) % p;
                let other = self.coll_recv::<T>(child, tag);
                acc = Some(op(acc.take().expect("accumulator held"), other));
            }
            step <<= 1;
        }
        self.record_collective("reduce", 0, started.elapsed().as_secs_f64());
        acc
    }

    /// Reduction whose result is available on every rank.
    pub fn allreduce<T: CommMsg + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.bcast(0, reduced)
    }

    /// Per-destination message sizes of a personalized exchange — the one
    /// place the `bufs[dst]` layout is validated and measured, shared by
    /// [`Comm::alltoallv`], [`Comm::ialltoallv`] and
    /// [`Comm::alltoallv_counts`]. Panics unless there is exactly one
    /// buffer per rank.
    fn personalized_counts<T>(&self, bufs: &[Vec<T>]) -> Vec<usize> {
        assert_eq!(
            bufs.len(),
            self.size(),
            "personalized exchange needs one buffer per rank"
        );
        bufs.iter().map(Vec::len).collect()
    }

    /// Personalized all-to-all: `bufs[dst]` is shipped to rank `dst`;
    /// returns the buffers received, indexed by source rank. The analogue
    /// of `MPI_Alltoallv` (and ELBA's "custom all-to-all" for edge triples).
    pub fn alltoallv<T: CommMsg>(&self, bufs: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.personalized_counts(&bufs); // validate one buffer per rank
        let tag = self.next_coll_tag(op::ALLTOALLV);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, buf) in bufs.into_iter().enumerate() {
            bytes += buf.nbytes();
            self.coll_send(dst, tag, buf);
        }
        let received: Vec<Vec<T>> = (0..self.size())
            .map(|src| self.coll_recv::<Vec<T>>(src, tag))
            .collect();
        self.record_collective("alltoallv", bytes, started.elapsed().as_secs_f64());
        received
    }

    /// Block reduce-scatter: every rank contributes one value *per rank*;
    /// rank `i` returns the reduction of all ranks' `i`-th contribution
    /// (`MPI_Reduce_scatter_block`). Used for global contig sizes (§4.2).
    pub fn reduce_scatter_block<T: CommMsg>(
        &self,
        contributions: Vec<T>,
        op: impl Fn(T, T) -> T,
    ) -> T {
        assert_eq!(
            contributions.len(),
            self.size(),
            "reduce_scatter_block needs one contribution per rank"
        );
        let tag = self.next_coll_tag(op::REDUCE_SCATTER);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, value) in contributions.into_iter().enumerate() {
            bytes += value.nbytes();
            self.coll_send(dst, tag, value);
        }
        let mut acc: Option<T> = None;
        for src in 0..self.size() {
            let value = self.coll_recv::<T>(src, tag);
            acc = Some(match acc.take() {
                None => value,
                Some(prev) => op(prev, value),
            });
        }
        self.record_collective("reduce_scatter", bytes, started.elapsed().as_secs_f64());
        acc.expect("at least one contribution")
    }

    /// Exclusive prefix scan: rank `r` returns `op` folded over the values
    /// of ranks `0..r`; rank 0 returns `identity`.
    pub fn exscan<T: CommMsg + Clone>(&self, value: T, identity: T, op: impl Fn(T, T) -> T) -> T {
        let tag = self.next_coll_tag(op::EXSCAN);
        let started = Instant::now();
        let prefix = if self.rank() == 0 {
            identity
        } else {
            self.coll_recv::<T>(self.rank() - 1, tag)
        };
        if self.rank() + 1 < self.size() {
            let next = op(prefix.clone(), value);
            let bytes = next.nbytes();
            self.coll_send(self.rank() + 1, tag, next);
            self.record_collective("exscan", bytes, 0.0);
        }
        self.record_collective("exscan", 0, started.elapsed().as_secs_f64());
        prefix
    }

    /// Convenience: `alltoallv` message counts per destination, useful for
    /// tests and diagnostics. Shares the sizing (and shape validation)
    /// logic of [`Comm::alltoallv`] itself.
    pub fn alltoallv_counts<T: CommMsg>(&self, bufs: &[Vec<T>]) -> Vec<usize> {
        self.personalized_counts(bufs)
    }

    /// Non-blocking personalized all-to-all (`MPI_Ialltoallv` analogue):
    /// `bufs[dst]` is shipped to rank `dst` in chunks of at most
    /// `chunk_elems` elements, and the returned [`IalltoallvRequest`]
    /// yields per-source chunks *as they arrive* — the caller can fold
    /// each chunk into an accumulator while the rest of the exchange is
    /// still in flight, so neither side ever has to hold the full
    /// personalized exchange at once.
    ///
    /// Chunks from one source are delivered in posting order (the
    /// runtime's per-`(source, tag)` FIFO guarantee), so concatenating a
    /// source's chunks reconstructs its buffer exactly;
    /// [`IalltoallvRequest::wait`] does that and is therefore equivalent
    /// to [`Comm::alltoallv`]. Time blocked in
    /// `next` (the request is an [`Iterator`] over `(source, chunk)`
    /// pairs) or [`IalltoallvRequest::wait`] is booked to the profile's
    /// *wait* bucket, like `ibcast`.
    ///
    /// Collective: every rank must post the matching call in SPMD order
    /// and must drain the request to completion.
    pub fn ialltoallv<T: CommMsg>(
        &self,
        bufs: Vec<Vec<T>>,
        chunk_elems: usize,
    ) -> IalltoallvRequest<'_, T> {
        self.personalized_counts(&bufs); // validate one buffer per rank
        let mut req = self.ialltoallv_stream(chunk_elems);
        for (dst, buf) in bufs.into_iter().enumerate() {
            req.post(dst, buf);
        }
        req.finish_sends();
        req
    }

    /// Open a *streaming* personalized exchange: like
    /// [`Comm::ialltoallv`], but outgoing data is supplied incrementally
    /// through [`IalltoallvRequest::post`] — any number of posts per
    /// destination, in any order, interleaved with draining inbound
    /// chunks — and sealed with [`IalltoallvRequest::finish_sends`].
    /// Ranks may post different amounts of traffic (termination is
    /// per-source, not count-based), which is what lets the k-mer
    /// exchange stream unevenly distributed reads without a per-batch
    /// barrier. One collective call regardless of how many chunks flow.
    pub fn ialltoallv_stream<T: CommMsg>(&self, chunk_elems: usize) -> IalltoallvRequest<'_, T> {
        assert!(chunk_elems > 0, "ialltoallv chunks need at least 1 element");
        let tag = self.next_coll_tag(op::IALLTOALLV);
        let p = self.size();
        IalltoallvRequest {
            comm: self,
            tag,
            chunk_elems,
            send_open: vec![true; p],
            inflight: (0..p).map(|src| Some(self.raw_irecv(src, tag))).collect(),
            open_sources: p,
            poll_cursor: 0,
        }
    }

    /// Non-blocking broadcast (`MPI_Ibcast` analogue): posts the same
    /// binomial tree as [`Comm::bcast`] but returns immediately with an
    /// [`IbcastRequest`]; the value is obtained by `wait`ing the request.
    ///
    /// The root's sends to its children go out at post time, so posting
    /// the broadcast for stage `s+1` before computing stage `s` overlaps
    /// the transfer with local work — the heart of pipelined SUMMA. An
    /// inner tree node forwards to its children as soon as it completes
    /// its own request (via `wait` or a successful `test`).
    ///
    /// Every rank of the communicator must post the matching `ibcast` in
    /// the same SPMD order as any other collective, and must eventually
    /// complete the request: dropping it un-waited starves the subtree
    /// below this rank.
    pub fn ibcast<T: CommMsg + Clone>(&self, root: Rank, value: Option<T>) -> IbcastRequest<'_, T> {
        let tag = self.next_coll_tag(op::IBCAST);
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root at 0
        if vr == 0 {
            let value = value.expect("ibcast root must supply a value");
            let bytes = ibcast_forward(self, root, tag, vr, &value);
            self.record_coll_bytes("ibcast", bytes);
            IbcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Ready(value),
            }
        } else {
            let lsb = vr & vr.wrapping_neg();
            let parent = (vr - lsb + root) % p;
            let req = self.raw_irecv::<T>(parent, tag);
            IbcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Waiting(req),
            }
        }
    }
}

/// Send `value` down this rank's binomial subtree for an (i)bcast rooted
/// at `root`; returns the bytes pushed onto the (virtual) wire.
fn ibcast_forward<T: CommMsg + Clone>(
    comm: &Comm,
    root: Rank,
    tag: Tag,
    vr: usize,
    value: &T,
) -> usize {
    let p = comm.size();
    let limit = if vr == 0 {
        p.next_power_of_two()
    } else {
        vr & vr.wrapping_neg()
    };
    let mut bytes = 0;
    let mut j = limit >> 1;
    while j >= 1 {
        if vr + j < p {
            let child = (vr + j + root) % p;
            bytes += value.nbytes();
            comm.coll_send(child, tag, value.clone());
        }
        j >>= 1;
    }
    bytes
}

enum IbcastState<'c, T: Send + 'static> {
    /// Value in hand and subtree already fed (root, or an inner node
    /// whose `test` completed).
    Ready(T),
    /// Still waiting on the parent tree node.
    Waiting(RecvRequest<'c, T>),
    /// Transient marker while `test` swaps states; never observable.
    Poisoned,
}

/// In-flight non-blocking broadcast; see [`Comm::ibcast`].
#[must_use = "ibcast must be completed with wait() — dropping it starves the subtree"]
pub struct IbcastRequest<'c, T: CommMsg + Clone> {
    comm: &'c Comm,
    root: Rank,
    tag: Tag,
    state: IbcastState<'c, T>,
}

impl<T: CommMsg + Clone> IbcastRequest<'_, T> {
    fn virtual_rank(&self) -> usize {
        let p = self.comm.size();
        (self.comm.rank() + p - self.root) % p
    }

    /// Forward to children and book this rank's share of the collective.
    fn complete(&self, value: &T) {
        let bytes = ibcast_forward(self.comm, self.root, self.tag, self.virtual_rank(), value);
        self.comm.record_coll_bytes("ibcast", bytes);
    }

    /// Poll for completion without blocking. On the transition to
    /// complete, the value is forwarded down the tree immediately, so
    /// polling ranks keep the pipeline moving even before they `wait`.
    pub fn test(&mut self) -> bool {
        match &mut self.state {
            IbcastState::Ready(_) => true,
            IbcastState::Waiting(req) => {
                if !req.test() {
                    return false;
                }
                let IbcastState::Waiting(req) =
                    std::mem::replace(&mut self.state, IbcastState::Poisoned)
                else {
                    unreachable!("state was just matched as Waiting");
                };
                let value = req.wait(); // non-blocking: test() buffered it
                self.complete(&value);
                self.state = IbcastState::Ready(value);
                true
            }
            IbcastState::Poisoned => unreachable!("ibcast state poisoned"),
        }
    }

    /// Block until the broadcast value arrives, forward it down the
    /// tree, and return it. Blocked time is booked as *wait* time.
    pub fn wait(mut self) -> T {
        match std::mem::replace(&mut self.state, IbcastState::Poisoned) {
            IbcastState::Ready(value) => value,
            IbcastState::Waiting(req) => {
                let value = req.wait();
                self.complete(&value);
                value
            }
            IbcastState::Poisoned => unreachable!("ibcast state poisoned"),
        }
    }
}

/// Wire format of one `ialltoallv` message: a chunk plus the last-marker
/// (`true` terminates the source's stream and carries no data).
type ChunkMsg<T> = (Vec<T>, bool);
/// Outstanding receive for the next [`ChunkMsg`] from one source.
type ChunkRecv<'c, T> = RecvRequest<'c, ChunkMsg<T>>;

/// In-flight chunked personalized exchange; see [`Comm::ialltoallv`] and
/// [`Comm::ialltoallv_stream`].
///
/// Wire protocol: each outgoing buffer travels as zero or more
/// `(chunk, false)` messages followed by one empty `(_, true)` terminator
/// per destination (sent by `finish_sends`). The per-`(source, tag)` FIFO
/// guarantee of the runtime keeps a source's chunks in posting order, so
/// receivers can fold them incrementally without reassembly metadata.
#[must_use = "ialltoallv must be drained (next()/wait()) — abandoning it desynchronizes the collective"]
pub struct IalltoallvRequest<'c, T: CommMsg> {
    comm: &'c Comm,
    tag: Tag,
    chunk_elems: usize,
    /// Destinations this rank has not yet sealed with a terminator.
    send_open: Vec<bool>,
    /// One outstanding receive per source still streaming; `None` once
    /// the source's terminator has been consumed.
    inflight: Vec<Option<ChunkRecv<'c, T>>>,
    open_sources: usize,
    /// Round-robin fairness cursor so one chatty source cannot starve
    /// the others in `try_next`.
    poll_cursor: usize,
}

impl<T: CommMsg> IalltoallvRequest<'_, T> {
    /// Ship `buf` to rank `dst`, split into chunks of at most
    /// `chunk_elems` elements. May be called any number of times per
    /// destination until [`IalltoallvRequest::finish_sends`]; an empty
    /// `buf` posts nothing. Sends complete eagerly (buffered protocol),
    /// so posting never blocks.
    pub fn post(&mut self, dst: Rank, buf: Vec<T>) {
        assert!(
            self.send_open[dst],
            "ialltoallv: post to rank {dst} after finish_sends"
        );
        let mut head = buf;
        while !head.is_empty() {
            let tail = if head.len() > self.chunk_elems {
                head.split_off(self.chunk_elems)
            } else {
                Vec::new()
            };
            let msg = (head, false);
            self.comm.record_coll_bytes("ialltoallv", msg.nbytes());
            self.comm.coll_send(dst, self.tag, msg);
            head = tail;
        }
    }

    /// Seal every destination: after this, peers know no further chunks
    /// will arrive from this rank. Idempotent. Must be called by every
    /// rank for the exchange to terminate ([`IalltoallvRequest::wait`]
    /// calls it implicitly).
    pub fn finish_sends(&mut self) {
        for dst in 0..self.comm.size() {
            if std::mem::take(&mut self.send_open[dst]) {
                let msg: (Vec<T>, bool) = (Vec::new(), true);
                self.comm.record_coll_bytes("ialltoallv", msg.nbytes());
                self.comm.coll_send(dst, self.tag, msg);
            }
        }
    }

    /// Number of sources that have not yet sent their terminator. The
    /// exchange is complete when this reaches zero.
    pub fn open_sources(&self) -> usize {
        self.open_sources
    }

    /// Poll for an arrived chunk from any source, without blocking.
    /// Returns the source rank and its next chunk (≤ `chunk_elems`
    /// elements, in per-source posting order), or `None` if nothing is
    /// ready right now. Terminators are consumed transparently.
    pub fn try_next(&mut self) -> Option<(Rank, Vec<T>)> {
        let p = self.comm.size();
        for i in 0..p {
            let src = (self.poll_cursor + i) % p;
            let Some(req) = self.inflight[src].as_mut() else {
                continue; // source already terminated
            };
            if !req.test() {
                continue;
            }
            let req = self.inflight[src].take().expect("matched as Some");
            let (chunk, last) = req.wait(); // non-blocking: test() buffered it
            if last {
                debug_assert!(chunk.is_empty(), "terminators carry no data");
                self.open_sources -= 1;
                continue; // inflight[src] stays None; scan the next source
            }
            self.inflight[src] = Some(self.comm.raw_irecv(src, self.tag));
            self.poll_cursor = (src + 1) % p;
            return Some((src, chunk));
        }
        None
    }

    /// Drain the whole exchange into per-source buffers (seals this
    /// rank's sends first). `comm.ialltoallv(bufs, n).wait()` is
    /// equivalent to `comm.alltoallv(bufs)`.
    pub fn wait(mut self) -> Vec<Vec<T>> {
        self.finish_sends();
        let mut received: Vec<Vec<T>> = (0..self.comm.size()).map(|_| Vec::new()).collect();
        for (src, mut chunk) in self.by_ref() {
            received[src].append(&mut chunk);
        }
        received
    }
}

/// Blocking chunk stream: `next` yields `(source, chunk)` pairs, blocking
/// until one arrives and returning `None` once every source has sent its
/// terminator — so a receive loop is literally a `for` loop over the
/// request. Blocked time is booked to the profile's *wait* bucket (like
/// `ibcast`), keeping communication/computation overlap measurable; use
/// [`IalltoallvRequest::try_next`] to poll without blocking.
impl<T: CommMsg> Iterator for IalltoallvRequest<'_, T> {
    type Item = (Rank, Vec<T>);

    fn next(&mut self) -> Option<(Rank, Vec<T>)> {
        if let Some(chunk) = self.try_next() {
            return Some(chunk);
        }
        if self.open_sources == 0 {
            return None;
        }
        let started = Instant::now();
        let mut spins = 0u32;
        let out = loop {
            if let Some(chunk) = self.try_next() {
                break Some(chunk);
            }
            if self.open_sources == 0 {
                break None;
            }
            // Spin briefly for the common quick arrival, then back off
            // to short sleeps: a parked rank must not burn the core its
            // peers need to produce the very chunks it is waiting for.
            if spins < 128 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        };
        self.comm.record_wait(started.elapsed().as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::Cluster;

    fn nonpow2_sizes() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7, 8, 9]
    }

    #[test]
    fn barrier_all_sizes() {
        for p in nonpow2_sizes() {
            Cluster::run(p, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Cluster::run(p, move |comm| {
                    let value = if comm.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    comm.bcast(root, value)
                });
                assert!(
                    out.iter().all(|&v| v == 42 + root as u64),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn bcast_vectors() {
        let out = Cluster::run(6, |comm| {
            let value = if comm.rank() == 2 {
                Some(vec![1u32, 2, 3])
            } else {
                None
            };
            comm.bcast(2, value)
        });
        assert!(out.iter().all(|v| v == &vec![1u32, 2, 3]));
    }

    #[test]
    fn gather_rank_ordered() {
        for p in nonpow2_sizes() {
            let out = Cluster::run(p, |comm| comm.gather(0, comm.rank() as u64 * 10));
            let root = out[0].as_ref().expect("root holds result");
            assert_eq!(root, &(0..p as u64).map(|r| r * 10).collect::<Vec<_>>());
            assert!(out[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Cluster::run(p, move |comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b)
                });
                let expect = (p * (p + 1) / 2) as u64;
                assert_eq!(out[root], Some(expect), "p={p} root={root}");
                for (r, v) in out.iter().enumerate() {
                    if r != root {
                        assert!(v.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Cluster::run(7, |comm| comm.allreduce(comm.rank() as u64, u64::max));
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in nonpow2_sizes() {
            let out = Cluster::run(p, |comm| comm.allgather(comm.rank() as u64));
            for v in out {
                assert_eq!(v, (0..p as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn alltoallv_personalizes() {
        let p = 4;
        let out = Cluster::run(p, move |comm| {
            // rank r sends [r*10 + dst] to each dst.
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![comm.rank() as u64 * 10 + dst as u64])
                .collect();
            comm.alltoallv(bufs)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![src as u64 * 10 + dst as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_empty_buffers_ok() {
        let out = Cluster::run(3, |comm| {
            let bufs: Vec<Vec<u64>> = vec![Vec::new(); 3];
            comm.alltoallv(bufs)
        });
        assert!(out.iter().all(|bufs| bufs.iter().all(Vec::is_empty)));
    }

    #[test]
    fn reduce_scatter_block_sums_columns() {
        let p = 5;
        let out = Cluster::run(p, move |comm| {
            // contribution[i] = rank + i; reduced column i = sum over ranks.
            let contributions: Vec<u64> = (0..p).map(|i| comm.rank() as u64 + i as u64).collect();
            comm.reduce_scatter_block(contributions, |a, b| a + b)
        });
        let rank_sum: u64 = (0..p as u64).sum();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, rank_sum + (p * i) as u64);
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let out = Cluster::run(6, |comm| {
            comm.exscan(comm.rank() as u64 + 1, 0, |a, b| a + b)
        });
        // rank r gets sum of 1..=r
        assert_eq!(out, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn ibcast_from_every_root_all_sizes() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Cluster::run(p, move |comm| {
                    let value = if comm.rank() == root {
                        Some(root as u64 + 7)
                    } else {
                        None
                    };
                    comm.ibcast(root, value).wait()
                });
                assert!(
                    out.iter().all(|&v| v == root as u64 + 7),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn ibcast_overlaps_with_local_work() {
        // Post, do local work, then wait — the canonical pipelined shape.
        let out = Cluster::run(5, |comm| {
            let req = comm.ibcast(0, (comm.rank() == 0).then(|| vec![1u64, 2, 3]));
            let local: u64 = (0..1000u64).sum(); // stand-in compute
            let value = req.wait();
            value.iter().sum::<u64>() + local % 2
        });
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn two_outstanding_ibcasts_complete_in_any_order() {
        // The double-buffered SUMMA posts A and B broadcasts for the next
        // stage before waiting on either.
        let out = Cluster::run(4, |comm| {
            let a = comm.ibcast(0, (comm.rank() == 0).then_some(10u64));
            let b = comm.ibcast(1, (comm.rank() == 1).then_some(20u64));
            let vb = b.wait();
            let va = a.wait();
            va + vb
        });
        assert!(out.iter().all(|&v| v == 30));
    }

    #[test]
    fn ibcast_test_completes_without_wait_blocking() {
        let out = Cluster::run(3, |comm| {
            let mut req = comm.ibcast(0, (comm.rank() == 0).then_some(5u64));
            while !req.test() {
                std::thread::yield_now();
            }
            req.wait()
        });
        assert_eq!(out, vec![5, 5, 5]);
    }

    #[test]
    fn ibcast_interleaves_with_blocking_collectives() {
        let out = Cluster::run(4, |comm| {
            let req = comm.ibcast(2, (comm.rank() == 2).then_some(9u64));
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let v = req.wait();
            comm.barrier();
            v * 100 + sum
        });
        assert!(out.iter().all(|&v| v == 904));
    }

    #[test]
    fn ibcast_books_wait_not_comm_time() {
        use crate::runtime::Cluster;
        let (_, profile) = Cluster::run_profiled(2, |comm| {
            let _g = comm.phase("stage");
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(15));
                comm.ibcast(0, Some(3u64)).wait()
            } else {
                comm.ibcast(0, None).wait()
            }
        });
        assert!(
            profile.max_wait_secs("stage") > 0.005,
            "wait bucket must fill"
        );
        assert!(
            profile.max_comm_secs("stage") < 0.005,
            "comm bucket must not"
        );
    }

    #[test]
    fn ialltoallv_equals_alltoallv_all_sizes() {
        for p in nonpow2_sizes() {
            for chunk in [1usize, 3, 64] {
                let out = Cluster::run(p, move |comm| {
                    let make = || -> Vec<Vec<u64>> {
                        (0..comm.size())
                            .map(|dst| {
                                (0..(comm.rank() + 2 * dst) % 5)
                                    .map(|i| (comm.rank() * 100 + dst * 10 + i) as u64)
                                    .collect()
                            })
                            .collect()
                    };
                    let got = comm.ialltoallv(make(), chunk).wait();
                    let want = comm.alltoallv(make());
                    got == want
                });
                assert!(out.iter().all(|&ok| ok), "p={p} chunk={chunk}");
            }
        }
    }

    #[test]
    fn ialltoallv_chunks_preserve_source_order() {
        // One big buffer split into many chunks: concatenation in arrival
        // order must reproduce it exactly (per-(source, tag) FIFO).
        let out = Cluster::run(3, |comm| {
            let bufs: Vec<Vec<u64>> = (0..3)
                .map(|dst| (0..47u64).map(|i| dst as u64 * 1000 + i).collect())
                .collect();
            let mut req = comm.ialltoallv(bufs, 5);
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); 3];
            let mut largest_chunk = 0usize;
            for (src, mut chunk) in req.by_ref() {
                largest_chunk = largest_chunk.max(chunk.len());
                got[src].append(&mut chunk);
            }
            assert!(largest_chunk <= 5, "chunk cap violated: {largest_chunk}");
            // Every sender src built bufs[dst] = [dst*1000 + i], so we
            // (rank = dst) must see rank*1000 + 0..47, in order, from all.
            got.iter().all(|buf| {
                buf.len() == 47
                    && buf
                        .iter()
                        .enumerate()
                        .all(|(i, &v)| v == comm.rank() as u64 * 1000 + i as u64)
            })
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_streaming_posts_in_rounds() {
        // The k-mer exchange shape: ranks post different numbers of
        // rounds, folding inbound chunks between posts; totals must match
        // the sum of everything posted toward each rank.
        let p = 4;
        let out = Cluster::run(p, move |comm| {
            let rounds = comm.rank() + 1; // uneven traffic per rank
            let mut req = comm.ialltoallv_stream::<u64>(3);
            let mut received: Vec<u64> = Vec::new();
            for round in 0..rounds {
                for dst in 0..p {
                    let batch: Vec<u64> = (0..4)
                        .map(|i| (comm.rank() * 1000 + round * 100 + dst * 10 + i) as u64)
                        .collect();
                    req.post(dst, batch);
                }
                while let Some((_, chunk)) = req.try_next() {
                    received.extend(chunk);
                }
            }
            req.finish_sends();
            for (_, chunk) in req.by_ref() {
                received.extend(chunk);
            }
            // src sends (src+1) rounds × 4 values to every rank.
            let want: u64 = (0..p)
                .map(|src| {
                    (0..=src)
                        .map(|round| {
                            (0..4)
                                .map(|i| (src * 1000 + round * 100 + comm.rank() * 10 + i) as u64)
                                .sum::<u64>()
                        })
                        .sum::<u64>()
                })
                .sum();
            let total: u64 = received.iter().sum();
            assert_eq!(
                received.len(),
                (0..p).map(|src| (src + 1) * 4).sum::<usize>()
            );
            total == want
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_empty_and_single_rank() {
        let out = Cluster::run(1, |comm| {
            let got = comm.ialltoallv(vec![vec![7u64, 8, 9]], 2).wait();
            got == vec![vec![7u64, 8, 9]]
        });
        assert!(out[0]);
        let out = Cluster::run(3, |comm| {
            let got = comm.ialltoallv(vec![Vec::<u64>::new(); 3], 4).wait();
            got.iter().all(Vec::is_empty)
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_interleaves_with_collectives_and_p2p() {
        let out = Cluster::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let p2p = comm.irecv::<u64>(left, 11);
            comm.isend(right, 11, comm.rank() as u64).wait();
            let bufs: Vec<Vec<u64>> = (0..4)
                .map(|dst| vec![(comm.rank() * 4 + dst) as u64])
                .collect();
            let req = comm.ialltoallv(bufs, 1);
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let got = req.wait();
            let from_left = p2p.wait();
            comm.barrier();
            let diag = got[comm.rank()][0];
            sum == 4 && from_left == left as u64 && diag == (comm.rank() * 4 + comm.rank()) as u64
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn ialltoallv_books_wait_not_comm_time() {
        let (_, profile) = Cluster::run_profiled(2, |comm| {
            let _g = comm.phase("stage");
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
            let bufs: Vec<Vec<u64>> = vec![vec![1], vec![2]];
            comm.ialltoallv(bufs, 8).wait()
        });
        assert!(
            profile.max_wait_secs("stage") > 0.005,
            "wait bucket must fill"
        );
        assert!(
            profile.max_comm_secs("stage") < 0.005,
            "comm bucket must not"
        );
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        let out = Cluster::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 5, comm.rank() as u64);
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let from_left = comm.recv::<u64>(left, 5);
            comm.barrier();
            sum + from_left
        });
        assert_eq!(out, vec![7, 4, 5, 6]);
    }
}
