//! Collective operations over a [`Comm`], implemented with the classic
//! algorithms whose message counts match what an MPI library would issue:
//! binomial trees for broadcast/reduce, dissemination barrier, flat
//! personalized exchange for `alltoallv`. Reduction operators must be
//! associative and commutative (as for `MPI_Op`).

use std::time::Instant;

use crate::msg::CommMsg;
use crate::runtime::{op, Comm, Rank};

impl Comm {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ P⌉ rounds).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag(op::BARRIER);
        let started = Instant::now();
        let p = self.size();
        let mut step = 1;
        while step < p {
            let dst = (self.rank() + step) % p;
            let src = (self.rank() + p - step) % p;
            self.coll_send(dst, tag, ());
            self.coll_recv::<()>(src, tag);
            step <<= 1;
        }
        self.record_collective("barrier", 0, started.elapsed().as_secs_f64());
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value (binomial tree, ⌈log₂ P⌉ depth).
    pub fn bcast<T: CommMsg + Clone>(&self, root: Rank, value: Option<T>) -> T {
        let tag = self.next_coll_tag(op::BCAST);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank, root at 0
        let mut value = if vr == 0 {
            value.expect("bcast root must supply a value")
        } else {
            let lsb = vr & vr.wrapping_neg();
            let parent = (vr - lsb + root) % p;
            self.coll_recv::<T>(parent, tag)
        };
        let limit = if vr == 0 { p.next_power_of_two() } else { vr & vr.wrapping_neg() };
        let mut bytes = 0;
        let mut j = limit >> 1;
        while j >= 1 {
            if vr + j < p {
                let child = (vr + j + root) % p;
                bytes += value.nbytes();
                self.coll_send(child, tag, value.clone());
            }
            j >>= 1;
        }
        // Keep `value` unmoved for the return; the clone above covers sends.
        self.record_collective("bcast", bytes, started.elapsed().as_secs_f64());
        let _ = &mut value;
        value
    }

    /// Gather every rank's value at `root` (rank-ordered). Non-roots get `None`.
    pub fn gather<T: CommMsg>(&self, root: Rank, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag(op::GATHER);
        let started = Instant::now();
        let result = if self.rank() == root {
            let mut all: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            all[root] = Some(value);
            for src in 0..self.size() {
                if src != root {
                    all[src] = Some(self.coll_recv::<T>(src, tag));
                }
            }
            Some(all.into_iter().map(|v| v.expect("gather slot filled")).collect())
        } else {
            let bytes = value.nbytes();
            self.coll_send(root, tag, value);
            self.record_collective("gather", bytes, 0.0);
            None
        };
        self.record_collective("gather", 0, started.elapsed().as_secs_f64());
        result
    }

    /// All ranks receive every rank's value, rank-ordered
    /// (gather at rank 0 + broadcast; 2(P−1) messages).
    pub fn allgather<T: CommMsg + Clone>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered)
    }

    /// Reduce all values to `root` with `op` (binomial tree). `op` must be
    /// associative + commutative. Non-roots get `None`.
    pub fn reduce<T: CommMsg>(&self, root: Rank, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let tag = self.next_coll_tag(op::REDUCE);
        let started = Instant::now();
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = Some(value);
        let mut step = 1;
        while step < p {
            if vr & step != 0 {
                let parent = (vr - step + root) % p;
                let value = acc.take().expect("value still held before sending");
                let bytes = value.nbytes();
                self.coll_send(parent, tag, value);
                self.record_collective("reduce", bytes, started.elapsed().as_secs_f64());
                return None;
            }
            if vr + step < p {
                let child = (vr + step + root) % p;
                let other = self.coll_recv::<T>(child, tag);
                acc = Some(op(acc.take().expect("accumulator held"), other));
            }
            step <<= 1;
        }
        self.record_collective("reduce", 0, started.elapsed().as_secs_f64());
        acc
    }

    /// Reduction whose result is available on every rank.
    pub fn allreduce<T: CommMsg + Clone>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op);
        self.bcast(0, reduced)
    }

    /// Personalized all-to-all: `bufs[dst]` is shipped to rank `dst`;
    /// returns the buffers received, indexed by source rank. The analogue
    /// of `MPI_Alltoallv` (and ELBA's "custom all-to-all" for edge triples).
    pub fn alltoallv<T: CommMsg>(&self, bufs: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(bufs.len(), self.size(), "alltoallv needs one buffer per rank");
        let tag = self.next_coll_tag(op::ALLTOALLV);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, buf) in bufs.into_iter().enumerate() {
            bytes += buf.nbytes();
            self.coll_send(dst, tag, buf);
        }
        let received: Vec<Vec<T>> =
            (0..self.size()).map(|src| self.coll_recv::<Vec<T>>(src, tag)).collect();
        self.record_collective("alltoallv", bytes, started.elapsed().as_secs_f64());
        received
    }

    /// Block reduce-scatter: every rank contributes one value *per rank*;
    /// rank `i` returns the reduction of all ranks' `i`-th contribution
    /// (`MPI_Reduce_scatter_block`). Used for global contig sizes (§4.2).
    pub fn reduce_scatter_block<T: CommMsg>(
        &self,
        contributions: Vec<T>,
        op: impl Fn(T, T) -> T,
    ) -> T {
        assert_eq!(
            contributions.len(),
            self.size(),
            "reduce_scatter_block needs one contribution per rank"
        );
        let tag = self.next_coll_tag(op::REDUCE_SCATTER);
        let started = Instant::now();
        let mut bytes = 0;
        for (dst, value) in contributions.into_iter().enumerate() {
            bytes += value.nbytes();
            self.coll_send(dst, tag, value);
        }
        let mut acc: Option<T> = None;
        for src in 0..self.size() {
            let value = self.coll_recv::<T>(src, tag);
            acc = Some(match acc.take() {
                None => value,
                Some(prev) => op(prev, value),
            });
        }
        self.record_collective("reduce_scatter", bytes, started.elapsed().as_secs_f64());
        acc.expect("at least one contribution")
    }

    /// Exclusive prefix scan: rank `r` returns `op` folded over the values
    /// of ranks `0..r`; rank 0 returns `identity`.
    pub fn exscan<T: CommMsg + Clone>(&self, value: T, identity: T, op: impl Fn(T, T) -> T) -> T {
        let tag = self.next_coll_tag(op::EXSCAN);
        let started = Instant::now();
        let prefix = if self.rank() == 0 {
            identity
        } else {
            self.coll_recv::<T>(self.rank() - 1, tag)
        };
        if self.rank() + 1 < self.size() {
            let next = op(prefix.clone(), value);
            let bytes = next.nbytes();
            self.coll_send(self.rank() + 1, tag, next);
            self.record_collective("exscan", bytes, 0.0);
        }
        self.record_collective("exscan", 0, started.elapsed().as_secs_f64());
        prefix
    }

    /// Convenience: `alltoallv` message counts per destination, useful for
    /// tests and diagnostics.
    pub fn alltoallv_counts<T: CommMsg>(&self, bufs: &[Vec<T>]) -> Vec<usize> {
        bufs.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::Cluster;

    fn nonpow2_sizes() -> Vec<usize> {
        vec![1, 2, 3, 4, 5, 7, 8, 9]
    }

    #[test]
    fn barrier_all_sizes() {
        for p in nonpow2_sizes() {
            Cluster::run(p, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Cluster::run(p, move |comm| {
                    let value = if comm.rank() == root { Some(42u64 + root as u64) } else { None };
                    comm.bcast(root, value)
                });
                assert!(out.iter().all(|&v| v == 42 + root as u64), "p={p} root={root}");
            }
        }
    }

    #[test]
    fn bcast_vectors() {
        let out = Cluster::run(6, |comm| {
            let value = if comm.rank() == 2 { Some(vec![1u32, 2, 3]) } else { None };
            comm.bcast(2, value)
        });
        assert!(out.iter().all(|v| v == &vec![1u32, 2, 3]));
    }

    #[test]
    fn gather_rank_ordered() {
        for p in nonpow2_sizes() {
            let out = Cluster::run(p, |comm| comm.gather(0, comm.rank() as u64 * 10));
            let root = out[0].as_ref().expect("root holds result");
            assert_eq!(root, &(0..p as u64).map(|r| r * 10).collect::<Vec<_>>());
            assert!(out[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in nonpow2_sizes() {
            for root in 0..p {
                let out = Cluster::run(p, move |comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b)
                });
                let expect = (p * (p + 1) / 2) as u64;
                assert_eq!(out[root], Some(expect), "p={p} root={root}");
                for (r, v) in out.iter().enumerate() {
                    if r != root {
                        assert!(v.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Cluster::run(7, |comm| comm.allreduce(comm.rank() as u64, u64::max));
        assert!(out.iter().all(|&v| v == 6));
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in nonpow2_sizes() {
            let out = Cluster::run(p, |comm| comm.allgather(comm.rank() as u64));
            for v in out {
                assert_eq!(v, (0..p as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn alltoallv_personalizes() {
        let p = 4;
        let out = Cluster::run(p, move |comm| {
            // rank r sends [r*10 + dst] to each dst.
            let bufs: Vec<Vec<u64>> =
                (0..p).map(|dst| vec![comm.rank() as u64 * 10 + dst as u64]).collect();
            comm.alltoallv(bufs)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                assert_eq!(buf, &vec![src as u64 * 10 + dst as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_empty_buffers_ok() {
        let out = Cluster::run(3, |comm| {
            let bufs: Vec<Vec<u64>> = vec![Vec::new(); 3];
            comm.alltoallv(bufs)
        });
        assert!(out.iter().all(|bufs| bufs.iter().all(Vec::is_empty)));
    }

    #[test]
    fn reduce_scatter_block_sums_columns() {
        let p = 5;
        let out = Cluster::run(p, move |comm| {
            // contribution[i] = rank + i; reduced column i = sum over ranks.
            let contributions: Vec<u64> =
                (0..p).map(|i| comm.rank() as u64 + i as u64).collect();
            comm.reduce_scatter_block(contributions, |a, b| a + b)
        });
        let rank_sum: u64 = (0..p as u64).sum();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, rank_sum + (p * i) as u64);
        }
    }

    #[test]
    fn exscan_prefix_sums() {
        let out = Cluster::run(6, |comm| comm.exscan(comm.rank() as u64 + 1, 0, |a, b| a + b));
        // rank r gets sum of 1..=r
        assert_eq!(out, vec![0, 1, 3, 6, 10, 15]);
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        let out = Cluster::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 5, comm.rank() as u64);
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let from_left = comm.recv::<u64>(left, 5);
            comm.barrier();
            sum + from_left
        });
        assert_eq!(out, vec![4 + 3, 4 + 0, 4 + 1, 4 + 2]);
    }
}
