//! α–β (Hockney) machine model used to project the recorded communication
//! trace of a laptop-scale run onto the paper's machine configurations
//! (Cori Haswell, Summit CPU; Table 1) and rank counts (576–4096).
//!
//! The projection is deliberately simple and documented, because its job
//! is to reproduce the *shape* of Figs. 4–6 — parallel efficiency falling
//! with P as latency-bound phases stop scaling — not absolute numbers:
//!
//! ```text
//! T_phase(P) = compute_secs · (P_meas / P)            // perfect strong scaling
//!            + max(0, coll_calls · α · log2(P)        // latency term
//!                    + (total_bytes / P) / β          // bandwidth term
//!                    − overlap(P))                    // overlap credit
//! overlap(P) = min(wait_secs, compute_secs) · (P_meas / P)
//! ```
//!
//! `compute_secs` is measured wall time minus time blocked in
//! communication; `coll_calls` and `total_bytes` come straight from the
//! [`crate::profile`] trace. The latency term grows with P while the other
//! two shrink — exactly the behaviour the paper reports for the
//! `TrReduction` and `ExtractContig` phases ("the amount of work is
//! smaller ... and the algorithms are latency-bound", §6.1).
//!
//! The *overlap credit* refines the earlier model, which charged time
//! parked in non-blocking `wait`s fully as communication. A phase that
//! drives its transfers through requests (`ibcast`, `ialltoallv`) can
//! hide them behind local work; the hideable share demonstrated by the
//! trace is bounded both by the time actually spent blocked
//! (`wait_secs` — transfer that *was* exposed and is overlappable) and
//! by the compute available to hide it, hence
//! `min(wait_secs, compute_secs)`. The credit is scaled like the compute
//! term (hiding capacity strong-scales away with local work) and the
//! communication term is floored at zero so the credit can never project
//! negative transfer time.

/// Condensed per-phase measurements extracted from a [`crate::RunProfile`].
#[derive(Debug, Clone)]
pub struct PhaseObservation {
    pub phase: String,
    /// Max-over-ranks wall seconds at the measured rank count.
    pub wall_secs: f64,
    /// Wall seconds minus communication-blocked seconds.
    pub compute_secs: f64,
    /// Max-over-ranks seconds blocked in non-blocking request `wait`s —
    /// the exposed (non-overlapped) share of the phase's non-blocking
    /// communication, which the projection may credit as hideable.
    pub wait_secs: f64,
    /// Mean collective invocations per rank.
    pub coll_calls_per_rank: f64,
    /// Total bytes pushed by all ranks during the phase.
    pub total_bytes: f64,
}

/// Interconnect + node parameters for the projection.
///
/// Values are representative published figures for the two machines in the
/// paper's Table 1, not measurements of this repository.
#[derive(Debug, Clone)]
pub struct MachineModel {
    pub name: &'static str,
    /// Point-to-point latency in seconds.
    pub alpha: f64,
    /// Per-rank effective bandwidth in bytes/second.
    pub beta: f64,
    /// Relative single-core compute speed (Cori Haswell = 1.0). The paper
    /// observes Summit's per-core alignment throughput is lower because
    /// the x-drop kernel lacks POWER9 SIMD.
    pub compute_speed: f64,
    /// Ranks per node used in the paper's runs (32 on both machines).
    pub ranks_per_node: usize,
}

impl MachineModel {
    /// Cray XC40 Aries dragonfly: ~1.3 µs latency, ~10 GB/s injection per
    /// node shared by 32 ranks.
    pub fn cori_haswell() -> Self {
        MachineModel {
            name: "Cori Haswell",
            alpha: 1.3e-6,
            beta: 10e9 / 32.0,
            compute_speed: 1.0,
            ranks_per_node: 32,
        }
    }

    /// Summit fat-tree (EDR InfiniBand): ~1.5 µs latency, ~23 GB/s per node
    /// shared by 32 used ranks; slower per-core alignment (no AVX2).
    pub fn summit_cpu() -> Self {
        MachineModel {
            name: "Summit CPU",
            alpha: 1.5e-6,
            beta: 23e9 / 32.0,
            compute_speed: 0.55,
            ranks_per_node: 32,
        }
    }

    /// Projected wall seconds of one phase at `target_ranks`, given an
    /// observation made at `measured_ranks`.
    pub fn project_phase(
        &self,
        obs: &PhaseObservation,
        measured_ranks: usize,
        target_ranks: usize,
    ) -> f64 {
        assert!(measured_ranks > 0 && target_ranks > 0);
        let p = target_ranks as f64;
        let scale = measured_ranks as f64 / p;
        let compute = obs.compute_secs / self.compute_speed * scale;
        let latency = obs.coll_calls_per_rank * self.alpha * p.log2().max(1.0);
        let bandwidth = (obs.total_bytes / p) / self.beta;
        // Measured overlap credit: see the module docs. Scales with the
        // compute that hides it and can never drive communication below
        // zero.
        let overlap = obs.wait_secs.min(obs.compute_secs) / self.compute_speed * scale;
        compute + (latency + bandwidth - overlap).max(0.0)
    }

    /// Project a whole pipeline (sum over phases) at `target_ranks`.
    pub fn project_total(
        &self,
        observations: &[PhaseObservation],
        measured_ranks: usize,
        target_ranks: usize,
    ) -> f64 {
        observations
            .iter()
            .map(|obs| self.project_phase(obs, measured_ranks, target_ranks))
            .sum()
    }

    /// Parallel efficiency of a strong-scaling series relative to its first
    /// point: `e(Pᵢ) = T(P₀)·P₀ / (T(Pᵢ)·Pᵢ)`.
    pub fn parallel_efficiency(ranks: &[usize], times: &[f64]) -> Vec<f64> {
        assert_eq!(ranks.len(), times.len());
        if ranks.is_empty() {
            return Vec::new();
        }
        let base = times[0] * ranks[0] as f64;
        ranks
            .iter()
            .zip(times)
            .map(|(&p, &t)| base / (t * p as f64))
            .collect()
    }
}

/// A SUMMA schedule as seen by the predictor. Mirrors the sparse crate's
/// `SpGemmAlgorithm` without depending on it (comm sits below sparse in
/// the crate graph); the sparse side maps between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePlan {
    /// Blocking broadcast per stage, triples accumulated and sort-merged
    /// once at the end. No overlap; merge touches every intermediate
    /// product.
    Eager,
    /// One-stage broadcast lookahead, running CSR merge per stage.
    Pipelined,
    /// Output-batched rounds sized to the memory budget, with a structure
    /// estimate pass when budgeted.
    ColumnBatched,
    /// 2.5D-style: stages split into `c` contiguous slices, each slice's
    /// broadcasts posted as one batch, per-layer partials combined by one
    /// k-way merge at the end.
    Layered { c: usize },
}

impl SchedulePlan {
    /// Short label used in logs and bench JSON.
    pub fn label(&self) -> String {
        match self {
            SchedulePlan::Eager => "eager".into(),
            SchedulePlan::Pipelined => "pipelined".into(),
            SchedulePlan::ColumnBatched => "column-batched".into(),
            SchedulePlan::Layered { c } => format!("layered:{c}"),
        }
    }
}

/// Structure estimates feeding [`CostConstants::predict_phase`] — derived
/// from the ColumnBatched estimate pass (per-column flop counts and
/// per-stage panel bytes), reduced max-over-ranks so every rank predicts
/// from the same numbers (the critical path) and reaches the same pick.
#[derive(Debug, Clone)]
pub struct SpGemmEstimate {
    /// Grid side; p = grid_q².
    pub grid_q: usize,
    /// Max-over-ranks A+B panel bytes broadcast in one SUMMA stage.
    pub stage_bytes: f64,
    /// Bytes broadcast per stage by the ColumnBatched structure pass
    /// (A column counts + B structure, no values).
    pub struct_bytes: f64,
    /// Max-over-ranks Gustavson multiply-adds (Σ over A entries of the
    /// matched B-row length) — also the intermediate-product count.
    pub flops: f64,
    /// Max-over-ranks upper estimate of nnz(C_local):
    /// Σ_j min(col_flops\[j\], nrows).
    pub result_entries: f64,
    /// Bytes per stored C entry (column index + value).
    pub entry_bytes: f64,
    /// Per-rank memory budget for the phase, if limited. Schedules whose
    /// modeled peak exceeds it predict infinite cost (feasibility veto).
    pub mem_budget: Option<u64>,
}

/// Calibration constants for *predicting* per-schedule SpGEMM cost, the
/// optimizing counterpart of [`MachineModel::project_phase`] (which
/// post-dicts a recorded trace). `alpha`/`beta` have their Hockney
/// meanings; `gamma` is seconds per local *entry touch* — one
/// multiply-add into the sparse accumulator, or one entry read/written
/// by a CSR merge — so compute and merge traffic share a unit.
#[derive(Debug, Clone)]
pub struct CostConstants {
    /// Broadcast latency in seconds (per tree, charged × log2 p).
    pub alpha: f64,
    /// Effective per-rank bandwidth in bytes/second.
    pub beta: f64,
    /// Seconds per entry touch (multiply-add or merge read/write).
    pub gamma: f64,
}

impl CostConstants {
    /// Defaults for the in-process transport, where a "transfer" is an
    /// `Arc` handoff through a condvar mailbox: latency is the wake, the
    /// bandwidth term is nearly free, and entry touches run at memory
    /// speed. Deliberately *fixed* rather than measured per run — the
    /// auto-tuner must be deterministic across ranks, and these only
    /// need to rank schedules, not time them.
    pub fn in_process() -> Self {
        CostConstants {
            alpha: 2.0e-6,
            beta: 1.0e10,
            gamma: 5.0e-9,
        }
    }

    /// Calibrate against a machine model, supplying the measured compute
    /// rate separately (used by the perf bench to score predictions with
    /// a γ derived from a real run).
    pub fn from_machine(machine: &MachineModel, gamma: f64) -> Self {
        CostConstants {
            alpha: machine.alpha,
            beta: machine.beta,
            gamma,
        }
    }

    /// Modeled peak resident bytes of one rank running `plan`, charged
    /// the same way the schedules charge the memory tracker.
    fn peak_bytes(&self, plan: SchedulePlan, est: &SpGemmEstimate) -> f64 {
        let q = est.grid_q as f64;
        let stage = est.stage_bytes;
        let result = est.result_entries * est.entry_bytes;
        match plan {
            // Accumulated triples of *every* intermediate product
            // (index pair + value per flop) plus the in-flight stage.
            SchedulePlan::Eager => est.flops * (est.entry_bytes + 8.0) + stage,
            // Accumulator + merged copy + current and prefetched stage.
            SchedulePlan::Pipelined => 2.0 * result + 2.0 * stage,
            // c resident partials + combine output + the in-flight slice
            // batch (current + prefetched, ⌈q/c⌉ stages each). c=1 is
            // the pipelined path and charges like it.
            SchedulePlan::Layered { c } => {
                let c = (c.max(1) as f64).min(q);
                if c <= 1.0 {
                    return self.peak_bytes(SchedulePlan::Pipelined, est);
                }
                let slice = (q / c).ceil();
                (c + 1.0) * result + 2.0 * slice * stage
            }
            // Sized to the budget by construction.
            SchedulePlan::ColumnBatched => 0.0,
        }
    }

    /// Rounds the ColumnBatched packer needs to emit `result` bytes of
    /// output under the budget (mirrors its `4·stage ≤ budget`
    /// double-buffer rule coarsely); 1 when unlimited.
    fn column_batched_rounds(&self, est: &SpGemmEstimate) -> f64 {
        let Some(budget) = est.mem_budget else {
            return 1.0;
        };
        let b = budget as f64;
        let usable = (b - 2.0 * est.stage_bytes).max(b / 4.0);
        (est.result_entries * est.entry_bytes / usable)
            .ceil()
            .max(1.0)
    }

    /// Predicted wall seconds of one SpGEMM phase under `plan`.
    ///
    /// All schedules broadcast the same q stage panels (the wire-byte
    /// model pins them byte-identical); what differs is *exposed*
    /// latency, overlap, and merge traffic:
    ///
    /// ```text
    /// T = startup + max(comm − startup, compute)       // overlap
    /// comm_eager      = q·(L + W)       compute += γ·flops·log2(flops) (sort)
    /// comm_pipelined  = q·(L + W)       merge = 3γE·(q−1)   (binary, per stage)
    /// comm_layered(c) = c·L + q·W       merge = 3γE·(q−c) + 2γE
    /// comm_colbatch   = r·q·(L + W) + structure pass; merge as pipelined
    /// L = α·log2 p,  W = stage_bytes/β,  E = result_entries
    /// ```
    ///
    /// Eager gets no overlap (blocking broadcasts). A binary CSR merge
    /// touches ~3E entries (read both sides, write the union); the
    /// layered k-way combine touches Σ nnz(part) + E ≈ 2E once (stage
    /// outputs are near-disjoint slabs, so the partials sum to E), which
    /// is why layered's merge term shrinks as c approaches q while its
    /// memory peak grows — exactly the 2.5D memory-for-traffic trade.
    /// Returns `f64::INFINITY` when the modeled peak exceeds
    /// `est.mem_budget`.
    pub fn predict_phase(&self, plan: SchedulePlan, est: &SpGemmEstimate) -> f64 {
        if let Some(budget) = est.mem_budget {
            if self.peak_bytes(plan, est) > budget as f64 {
                return f64::INFINITY;
            }
        }
        let q = est.grid_q as f64;
        let p = q * q;
        let lat = self.alpha * p.log2().max(1.0);
        let wire = est.stage_bytes / self.beta;
        let mul = self.gamma * est.flops;
        let e = est.result_entries;
        match plan {
            SchedulePlan::Eager => {
                // Final combine is a comparison sort over every
                // intermediate triple: n·log2 n entry touches.
                let sort = self.gamma * est.flops * est.flops.max(2.0).log2();
                q * (lat + wire) + mul + sort
            }
            SchedulePlan::Pipelined => {
                let startup = lat + wire;
                let comm = q * (lat + wire);
                let compute = mul + 3.0 * self.gamma * e * (q - 1.0);
                startup + (comm - startup).max(compute)
            }
            SchedulePlan::Layered { c } => {
                let c = (c.max(1) as f64).min(q);
                if c <= 1.0 {
                    // c=1 *is* the pipelined schedule (dispatched there).
                    return self.predict_phase(SchedulePlan::Pipelined, est);
                }
                let slice = (q / c).ceil();
                let startup = lat + slice * wire;
                let comm = c * lat + q * wire;
                // Intra-layer running merges touch 3·E per extra stage
                // (as pipelined does), but the final k-way combine is
                // Σ nnz(part) + nnz(out) ≈ 2·E: SUMMA stages emit
                // near-disjoint column slabs, so the partials sum to
                // the result, not c copies of it — and the merge's
                // single-contributor fast path keeps the per-entry cost
                // at bulk-copy rates.
                let compute = mul + 3.0 * self.gamma * e * (q - c) + 2.0 * self.gamma * e;
                startup + (comm - startup).max(compute)
            }
            SchedulePlan::ColumnBatched => {
                let rounds = self.column_batched_rounds(est);
                let structure = if est.mem_budget.is_some() {
                    q * (lat + est.struct_bytes / self.beta) + self.gamma * est.flops * 0.25
                } else {
                    0.0
                };
                let startup = lat + wire;
                let comm = rounds * q * (lat + wire);
                let compute = mul + 3.0 * self.gamma * e * (q - 1.0);
                structure + startup + (comm - startup).max(compute)
            }
        }
    }

    /// Cheapest feasible candidate, first-wins on ties (order the
    /// candidates by preference). A challenger must beat the incumbent
    /// by a 0.1% margin: formulas that are algebraically equal on
    /// degenerate grids (layered at c = q = 2 vs pipelined) can differ
    /// in the last float ulp, and the model's precision is nowhere near
    /// that — sub-margin differences are ties, resolved by candidate
    /// order. Falls back to the first candidate if every prediction is
    /// infinite (the caller should include ColumnBatched, which always
    /// fits).
    pub fn pick_schedule(
        &self,
        est: &SpGemmEstimate,
        candidates: &[SchedulePlan],
    ) -> (SchedulePlan, f64) {
        assert!(!candidates.is_empty());
        let mut best = (candidates[0], f64::INFINITY);
        for &plan in candidates {
            let t = self.predict_phase(plan, est);
            if t < best.1 * (1.0 - 1e-3) {
                best = (plan, t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(compute: f64, calls: f64, bytes: f64) -> PhaseObservation {
        PhaseObservation {
            phase: "x".into(),
            wall_secs: compute,
            compute_secs: compute,
            wait_secs: 0.0,
            coll_calls_per_rank: calls,
            total_bytes: bytes,
        }
    }

    #[test]
    fn compute_bound_phase_scales_nearly_linearly() {
        let m = MachineModel::cori_haswell();
        let o = obs(100.0, 10.0, 1e6);
        let t576 = m.project_phase(&o, 16, 576);
        let t1152 = m.project_phase(&o, 16, 1152);
        let ratio = t576 / t1152;
        assert!(ratio > 1.9 && ratio <= 2.0, "ratio={ratio}");
    }

    #[test]
    fn latency_bound_phase_stops_scaling() {
        let m = MachineModel::cori_haswell();
        // Tiny compute, many collective calls: time should *grow* with P.
        let o = obs(1e-4, 1e5, 1e3);
        let small = m.project_phase(&o, 16, 64);
        let large = m.project_phase(&o, 16, 4096);
        assert!(large > small, "latency term must dominate at scale");
    }

    #[test]
    fn summit_slower_compute() {
        let cori = MachineModel::cori_haswell();
        let summit = MachineModel::summit_cpu();
        let o = obs(50.0, 1.0, 1.0);
        assert!(
            summit.project_phase(&o, 16, 576) > cori.project_phase(&o, 16, 576),
            "paper: ELBA is faster on Cori than Summit"
        );
    }

    #[test]
    fn efficiency_baseline_is_one() {
        let eff = MachineModel::parallel_efficiency(&[18, 32, 128], &[10.0, 6.0, 2.0]);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        assert!(eff[1] < 1.0 && eff[1] > 0.9);
    }

    #[test]
    fn overlap_credit_reduces_projection() {
        let m = MachineModel::cori_haswell();
        let blocking = obs(10.0, 100.0, 1e9);
        let overlapped = PhaseObservation {
            wait_secs: 0.02,
            ..blocking.clone()
        };
        let t_block = m.project_phase(&blocking, 16, 576);
        let t_over = m.project_phase(&overlapped, 16, 576);
        assert!(
            t_over < t_block,
            "measured overlap must credit the projection: {t_over} vs {t_block}"
        );
        // The credit is capped by min(wait, compute): more wait than
        // compute earns nothing extra.
        let capped = PhaseObservation {
            compute_secs: 0.01,
            wait_secs: 50.0,
            ..blocking.clone()
        };
        let uncapped_equiv = PhaseObservation {
            compute_secs: 0.01,
            wait_secs: 0.01,
            ..blocking
        };
        let a = m.project_phase(&capped, 16, 576);
        let b = m.project_phase(&uncapped_equiv, 16, 576);
        assert!((a - b).abs() < 1e-12, "credit must cap at compute_secs");
    }

    #[test]
    fn overlap_credit_never_projects_negative_comm() {
        let m = MachineModel::cori_haswell();
        // Huge wait + huge compute, tiny actual traffic: the credit
        // would wipe out the comm terms many times over; total must
        // floor at the compute term alone.
        let o = PhaseObservation {
            phase: "x".into(),
            wall_secs: 200.0,
            compute_secs: 100.0,
            wait_secs: 100.0,
            coll_calls_per_rank: 1.0,
            total_bytes: 8.0,
        };
        let t = m.project_phase(&o, 16, 64);
        let compute_term = 100.0 * 16.0 / 64.0;
        assert!((t - compute_term).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn zero_wait_matches_unrefined_formula() {
        let m = MachineModel::summit_cpu();
        let o = obs(42.0, 7.0, 5e8);
        let p = 1152f64;
        let by_hand =
            42.0 / m.compute_speed * 16.0 / p + 7.0 * m.alpha * p.log2() + (5e8 / p) / m.beta;
        let t = m.project_phase(&o, 16, 1152);
        assert!((t - by_hand).abs() < 1e-12);
    }

    #[test]
    fn project_total_sums_phases() {
        let m = MachineModel::cori_haswell();
        let obs_list = vec![obs(10.0, 1.0, 1e3), obs(20.0, 1.0, 1e3)];
        let total = m.project_total(&obs_list, 16, 64);
        let by_hand: f64 = obs_list.iter().map(|o| m.project_phase(o, 16, 64)).sum();
        assert!((total - by_hand).abs() < 1e-12);
    }

    fn est(q: usize, flops: f64, entries: f64) -> SpGemmEstimate {
        SpGemmEstimate {
            grid_q: q,
            stage_bytes: 1e6,
            struct_bytes: 1e5,
            flops,
            result_entries: entries,
            entry_bytes: 8.0,
            mem_budget: None,
        }
    }

    #[test]
    fn layered_c1_predicts_exactly_pipelined() {
        let k = CostConstants::in_process();
        let e = est(3, 1e7, 1e6);
        let pipe = k.predict_phase(SchedulePlan::Pipelined, &e);
        let lay = k.predict_phase(SchedulePlan::Layered { c: 1 }, &e);
        assert_eq!(
            pipe.to_bits(),
            lay.to_bits(),
            "c=1 must be the pipelined path"
        );
        // Same through the clamp: c > q on a 1×1 grid is still pipelined.
        let e1 = est(1, 1e7, 1e6);
        assert_eq!(
            k.predict_phase(SchedulePlan::Pipelined, &e1).to_bits(),
            k.predict_phase(SchedulePlan::Layered { c: 3 }, &e1)
                .to_bits(),
        );
    }

    #[test]
    fn kway_combine_wins_on_merge_heavy_shapes() {
        let k = CostConstants::in_process();
        // flops ≈ result entries: almost no arithmetic reuse, so merge
        // traffic dominates local time — the shape where the one-pass
        // k-way combine (touching (c+1)·E) beats q−1 binary merges
        // (touching 3E each).
        let e = est(3, 2e6, 1e6);
        let eager = k.predict_phase(SchedulePlan::Eager, &e);
        let pipe = k.predict_phase(SchedulePlan::Pipelined, &e);
        let lay = k.predict_phase(SchedulePlan::Layered { c: 3 }, &e);
        assert!(lay < pipe, "layered {lay} must beat pipelined {pipe}");
        assert!(pipe < eager, "pipelined {pipe} must beat eager {eager}");
    }

    #[test]
    fn budget_vetoes_memory_hungry_schedules() {
        let k = CostConstants::in_process();
        let mut e = est(3, 1e8, 1e7);
        e.mem_budget = Some(16 << 20); // far below (c+1)·E·entry_bytes
        assert!(k.predict_phase(SchedulePlan::Eager, &e).is_infinite());
        assert!(k
            .predict_phase(SchedulePlan::Layered { c: 3 }, &e)
            .is_infinite());
        let (pick, cost) = k.pick_schedule(
            &e,
            &[
                SchedulePlan::Pipelined,
                SchedulePlan::Layered { c: 3 },
                SchedulePlan::ColumnBatched,
                SchedulePlan::Eager,
            ],
        );
        assert_eq!(pick, SchedulePlan::ColumnBatched, "only feasible schedule");
        assert!(cost.is_finite());
    }

    #[test]
    fn tie_break_prefers_earlier_candidate() {
        let k = CostConstants::in_process();
        let e = est(1, 1e5, 1e4);
        // On a 1×1 grid layered degenerates to pipelined: equal cost,
        // first listed wins.
        let (pick, _) = k.pick_schedule(
            &e,
            &[SchedulePlan::Pipelined, SchedulePlan::Layered { c: 2 }],
        );
        assert_eq!(pick, SchedulePlan::Pipelined);
    }

    #[test]
    fn eager_pays_for_the_global_sort_merge() {
        let k = CostConstants::in_process();
        // High-reuse shape: flops ≫ entries. Eager's n·log n sort over
        // all intermediate triples dwarfs the per-stage merges of the
        // overlapped schedules.
        let e = est(3, 1e9, 1e5);
        let eager = k.predict_phase(SchedulePlan::Eager, &e);
        let pipe = k.predict_phase(SchedulePlan::Pipelined, &e);
        assert!(eager > pipe * 1.5, "eager {eager} vs pipelined {pipe}");
    }

    #[test]
    fn schedule_plan_labels() {
        assert_eq!(SchedulePlan::Eager.label(), "eager");
        assert_eq!(SchedulePlan::Layered { c: 2 }.label(), "layered:2");
        assert_eq!(SchedulePlan::ColumnBatched.label(), "column-batched");
    }
}
