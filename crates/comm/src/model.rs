//! α–β (Hockney) machine model used to project the recorded communication
//! trace of a laptop-scale run onto the paper's machine configurations
//! (Cori Haswell, Summit CPU; Table 1) and rank counts (576–4096).
//!
//! The projection is deliberately simple and documented, because its job
//! is to reproduce the *shape* of Figs. 4–6 — parallel efficiency falling
//! with P as latency-bound phases stop scaling — not absolute numbers:
//!
//! ```text
//! T_phase(P) = compute_secs · (P_meas / P)            // perfect strong scaling
//!            + max(0, coll_calls · α · log2(P)        // latency term
//!                    + (total_bytes / P) / β          // bandwidth term
//!                    − overlap(P))                    // overlap credit
//! overlap(P) = min(wait_secs, compute_secs) · (P_meas / P)
//! ```
//!
//! `compute_secs` is measured wall time minus time blocked in
//! communication; `coll_calls` and `total_bytes` come straight from the
//! [`crate::profile`] trace. The latency term grows with P while the other
//! two shrink — exactly the behaviour the paper reports for the
//! `TrReduction` and `ExtractContig` phases ("the amount of work is
//! smaller ... and the algorithms are latency-bound", §6.1).
//!
//! The *overlap credit* refines the earlier model, which charged time
//! parked in non-blocking `wait`s fully as communication. A phase that
//! drives its transfers through requests (`ibcast`, `ialltoallv`) can
//! hide them behind local work; the hideable share demonstrated by the
//! trace is bounded both by the time actually spent blocked
//! (`wait_secs` — transfer that *was* exposed and is overlappable) and
//! by the compute available to hide it, hence
//! `min(wait_secs, compute_secs)`. The credit is scaled like the compute
//! term (hiding capacity strong-scales away with local work) and the
//! communication term is floored at zero so the credit can never project
//! negative transfer time.

/// Condensed per-phase measurements extracted from a [`crate::RunProfile`].
#[derive(Debug, Clone)]
pub struct PhaseObservation {
    pub phase: String,
    /// Max-over-ranks wall seconds at the measured rank count.
    pub wall_secs: f64,
    /// Wall seconds minus communication-blocked seconds.
    pub compute_secs: f64,
    /// Max-over-ranks seconds blocked in non-blocking request `wait`s —
    /// the exposed (non-overlapped) share of the phase's non-blocking
    /// communication, which the projection may credit as hideable.
    pub wait_secs: f64,
    /// Mean collective invocations per rank.
    pub coll_calls_per_rank: f64,
    /// Total bytes pushed by all ranks during the phase.
    pub total_bytes: f64,
}

/// Interconnect + node parameters for the projection.
///
/// Values are representative published figures for the two machines in the
/// paper's Table 1, not measurements of this repository.
#[derive(Debug, Clone)]
pub struct MachineModel {
    pub name: &'static str,
    /// Point-to-point latency in seconds.
    pub alpha: f64,
    /// Per-rank effective bandwidth in bytes/second.
    pub beta: f64,
    /// Relative single-core compute speed (Cori Haswell = 1.0). The paper
    /// observes Summit's per-core alignment throughput is lower because
    /// the x-drop kernel lacks POWER9 SIMD.
    pub compute_speed: f64,
    /// Ranks per node used in the paper's runs (32 on both machines).
    pub ranks_per_node: usize,
}

impl MachineModel {
    /// Cray XC40 Aries dragonfly: ~1.3 µs latency, ~10 GB/s injection per
    /// node shared by 32 ranks.
    pub fn cori_haswell() -> Self {
        MachineModel {
            name: "Cori Haswell",
            alpha: 1.3e-6,
            beta: 10e9 / 32.0,
            compute_speed: 1.0,
            ranks_per_node: 32,
        }
    }

    /// Summit fat-tree (EDR InfiniBand): ~1.5 µs latency, ~23 GB/s per node
    /// shared by 32 used ranks; slower per-core alignment (no AVX2).
    pub fn summit_cpu() -> Self {
        MachineModel {
            name: "Summit CPU",
            alpha: 1.5e-6,
            beta: 23e9 / 32.0,
            compute_speed: 0.55,
            ranks_per_node: 32,
        }
    }

    /// Projected wall seconds of one phase at `target_ranks`, given an
    /// observation made at `measured_ranks`.
    pub fn project_phase(
        &self,
        obs: &PhaseObservation,
        measured_ranks: usize,
        target_ranks: usize,
    ) -> f64 {
        assert!(measured_ranks > 0 && target_ranks > 0);
        let p = target_ranks as f64;
        let scale = measured_ranks as f64 / p;
        let compute = obs.compute_secs / self.compute_speed * scale;
        let latency = obs.coll_calls_per_rank * self.alpha * p.log2().max(1.0);
        let bandwidth = (obs.total_bytes / p) / self.beta;
        // Measured overlap credit: see the module docs. Scales with the
        // compute that hides it and can never drive communication below
        // zero.
        let overlap = obs.wait_secs.min(obs.compute_secs) / self.compute_speed * scale;
        compute + (latency + bandwidth - overlap).max(0.0)
    }

    /// Project a whole pipeline (sum over phases) at `target_ranks`.
    pub fn project_total(
        &self,
        observations: &[PhaseObservation],
        measured_ranks: usize,
        target_ranks: usize,
    ) -> f64 {
        observations
            .iter()
            .map(|obs| self.project_phase(obs, measured_ranks, target_ranks))
            .sum()
    }

    /// Parallel efficiency of a strong-scaling series relative to its first
    /// point: `e(Pᵢ) = T(P₀)·P₀ / (T(Pᵢ)·Pᵢ)`.
    pub fn parallel_efficiency(ranks: &[usize], times: &[f64]) -> Vec<f64> {
        assert_eq!(ranks.len(), times.len());
        if ranks.is_empty() {
            return Vec::new();
        }
        let base = times[0] * ranks[0] as f64;
        ranks
            .iter()
            .zip(times)
            .map(|(&p, &t)| base / (t * p as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(compute: f64, calls: f64, bytes: f64) -> PhaseObservation {
        PhaseObservation {
            phase: "x".into(),
            wall_secs: compute,
            compute_secs: compute,
            wait_secs: 0.0,
            coll_calls_per_rank: calls,
            total_bytes: bytes,
        }
    }

    #[test]
    fn compute_bound_phase_scales_nearly_linearly() {
        let m = MachineModel::cori_haswell();
        let o = obs(100.0, 10.0, 1e6);
        let t576 = m.project_phase(&o, 16, 576);
        let t1152 = m.project_phase(&o, 16, 1152);
        let ratio = t576 / t1152;
        assert!(ratio > 1.9 && ratio <= 2.0, "ratio={ratio}");
    }

    #[test]
    fn latency_bound_phase_stops_scaling() {
        let m = MachineModel::cori_haswell();
        // Tiny compute, many collective calls: time should *grow* with P.
        let o = obs(1e-4, 1e5, 1e3);
        let small = m.project_phase(&o, 16, 64);
        let large = m.project_phase(&o, 16, 4096);
        assert!(large > small, "latency term must dominate at scale");
    }

    #[test]
    fn summit_slower_compute() {
        let cori = MachineModel::cori_haswell();
        let summit = MachineModel::summit_cpu();
        let o = obs(50.0, 1.0, 1.0);
        assert!(
            summit.project_phase(&o, 16, 576) > cori.project_phase(&o, 16, 576),
            "paper: ELBA is faster on Cori than Summit"
        );
    }

    #[test]
    fn efficiency_baseline_is_one() {
        let eff = MachineModel::parallel_efficiency(&[18, 32, 128], &[10.0, 6.0, 2.0]);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        assert!(eff[1] < 1.0 && eff[1] > 0.9);
    }

    #[test]
    fn overlap_credit_reduces_projection() {
        let m = MachineModel::cori_haswell();
        let blocking = obs(10.0, 100.0, 1e9);
        let overlapped = PhaseObservation {
            wait_secs: 0.02,
            ..blocking.clone()
        };
        let t_block = m.project_phase(&blocking, 16, 576);
        let t_over = m.project_phase(&overlapped, 16, 576);
        assert!(
            t_over < t_block,
            "measured overlap must credit the projection: {t_over} vs {t_block}"
        );
        // The credit is capped by min(wait, compute): more wait than
        // compute earns nothing extra.
        let capped = PhaseObservation {
            compute_secs: 0.01,
            wait_secs: 50.0,
            ..blocking.clone()
        };
        let uncapped_equiv = PhaseObservation {
            compute_secs: 0.01,
            wait_secs: 0.01,
            ..blocking
        };
        let a = m.project_phase(&capped, 16, 576);
        let b = m.project_phase(&uncapped_equiv, 16, 576);
        assert!((a - b).abs() < 1e-12, "credit must cap at compute_secs");
    }

    #[test]
    fn overlap_credit_never_projects_negative_comm() {
        let m = MachineModel::cori_haswell();
        // Huge wait + huge compute, tiny actual traffic: the credit
        // would wipe out the comm terms many times over; total must
        // floor at the compute term alone.
        let o = PhaseObservation {
            phase: "x".into(),
            wall_secs: 200.0,
            compute_secs: 100.0,
            wait_secs: 100.0,
            coll_calls_per_rank: 1.0,
            total_bytes: 8.0,
        };
        let t = m.project_phase(&o, 16, 64);
        let compute_term = 100.0 * 16.0 / 64.0;
        assert!((t - compute_term).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn zero_wait_matches_unrefined_formula() {
        let m = MachineModel::summit_cpu();
        let o = obs(42.0, 7.0, 5e8);
        let p = 1152f64;
        let by_hand =
            42.0 / m.compute_speed * 16.0 / p + 7.0 * m.alpha * p.log2() + (5e8 / p) / m.beta;
        let t = m.project_phase(&o, 16, 1152);
        assert!((t - by_hand).abs() < 1e-12);
    }

    #[test]
    fn project_total_sums_phases() {
        let m = MachineModel::cori_haswell();
        let obs_list = vec![obs(10.0, 1.0, 1e3), obs(20.0, 1.0, 1e3)];
        let total = m.project_total(&obs_list, 16, 64);
        let by_hand: f64 = obs_list.iter().map(|o| m.project_phase(o, 16, 64)).sum();
        assert!((total - by_hand).abs() < 1e-12);
    }
}
