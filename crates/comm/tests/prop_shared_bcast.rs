//! Property tests for the zero-copy `Arc`-shared broadcast path: shared
//! and owned broadcasts must deliver identical values on every grid
//! size and root, book byte-identical profiled wire traffic, survive
//! concurrent point-to-point traffic and FIFO-sensitive interleavings,
//! and mem-charge a shared payload once per rank no matter how many
//! references the rank holds.

use std::sync::Arc;

use elba_comm::{Backend, Runner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ibcast_shared_equals_ibcast_all_roots(
        p in 1usize..10,
        root_k in 0usize..10,
        payload in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let root = root_k % p;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let owned = comm
                .ibcast(root, (comm.rank() == root).then(|| payload.clone()))
                .wait();
            let shared = comm
                .ibcast_shared(root, (comm.rank() == root).then(|| Arc::new(payload.clone())))
                .wait();
            owned == *shared
        });
        prop_assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn bcast_shared_equals_bcast_all_roots(
        p in 1usize..10,
        root_k in 0usize..10,
        payload in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let root = root_k % p;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let owned = comm.bcast(root, (comm.rank() == root).then(|| payload.clone()));
            let shared =
                comm.bcast_shared(root, (comm.rank() == root).then(|| Arc::new(payload.clone())));
            owned == *shared
        });
        prop_assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn shared_and_owned_book_identical_wire_bytes(
        p in 1usize..10,
        root_k in 0usize..10,
        n in 0usize..100,
    ) {
        // The acceptance invariant: for the same value, the profiled
        // per-rank `ibcast`/`bcast` byte counters of the shared path are
        // byte-identical to the owned path — we simulate MPI traffic,
        // and zero-copy transport must not change the model.
        let root = root_k % p;
        let (_, profile) = Runner::new(Backend::InProcess).ranks(p).run_profiled(move |comm| {
            let value = vec![7u64; n];
            {
                let _g = comm.phase("owned");
                comm.ibcast(root, (comm.rank() == root).then(|| value.clone())).wait();
                comm.bcast(root, (comm.rank() == root).then(|| value.clone()));
            }
            {
                let _g = comm.phase("shared");
                let arc = Arc::new(value);
                comm.ibcast_shared(root, (comm.rank() == root).then(|| Arc::clone(&arc))).wait();
                comm.bcast_shared(root, (comm.rank() == root).then_some(arc));
            }
        });
        for rank in profile.rank_profiles() {
            let coll = |phase: &str| {
                let mut entries: Vec<(&str, u64, u64)> = rank
                    .phase(phase)
                    .map(|ph| ph.collectives.clone())
                    .unwrap_or_default();
                entries.sort();
                entries
            };
            prop_assert_eq!(
                coll("owned"),
                coll("shared"),
                "rank {} profiled bytes diverge between owned and shared",
                rank.rank()
            );
        }
    }

    #[test]
    fn shared_bcast_interleaves_with_p2p_and_fifo_traffic(
        p in 2usize..9,
        root_k in 0usize..10,
        salt: u64,
    ) {
        // Two outstanding shared broadcasts, ring p2p on a reused tag
        // (per-(source, tag) FIFO must survive the broadcast's pushes),
        // and an owned collective interleaved between post and wait.
        let root = root_k % p;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 3, salt + comm.rank() as u64); // m1, tag 3
            let req_a = comm
                .ibcast_shared(root, (comm.rank() == root).then(|| Arc::new(vec![salt; 5])));
            comm.send(right, 3, salt + 100 + comm.rank() as u64); // m2, same tag
            let req_b = comm.ibcast_shared(
                root,
                (comm.rank() == root).then(|| Arc::new(vec![salt + 1; 3])),
            );
            let sum = comm.allreduce(1u64, |a, b| a + b);
            let vb = req_b.wait();
            let va = req_a.wait();
            let m1 = comm.recv::<u64>(left, 3);
            let m2 = comm.recv::<u64>(left, 3);
            comm.barrier();
            let fifo_ok = m1 == salt + left as u64 && m2 == salt + 100 + left as u64;
            fifo_ok && sum == p as u64 && *va == vec![salt; 5] && *vb == vec![salt + 1; 3]
        });
        prop_assert!(out.iter().all(|&ok| ok));
    }
}

#[test]
fn shared_payload_is_mem_charged_once_per_rank() {
    // A rank holding several references to one shared block — the
    // broadcast result, a second guard, and (on the root) the resident
    // source block itself — charges its bytes exactly once.
    let bytes = 100_000usize;
    let (_, profile) = Runner::new(Backend::InProcess)
        .ranks(4)
        .run_profiled(move |comm| {
            let _g = comm.phase("charge");
            let payload = (comm.rank() == 0).then(|| Arc::new(vec![0u8; bytes]));
            // The root charges its resident copy up front, like a pipeline
            // stage charging a matrix it is about to broadcast.
            let _resident = payload
                .as_ref()
                .map(|arc| comm.mem_charge_shared(arc, bytes));
            let arc = comm.ibcast_shared(0, payload).wait();
            let _c1 = comm.mem_charge_shared(&arc, bytes);
            let _c2 = comm.mem_charge_shared(&arc, bytes);
            comm.barrier();
        });
    for rank in profile.rank_profiles() {
        assert_eq!(
            rank.mem().high_water("charge"),
            bytes as u64,
            "rank {} must charge the shared block exactly once",
            rank.rank()
        );
    }
    // ... and the charge releases with the last guard.
    assert_eq!(profile.rank_profiles()[0].mem().current(), 0);
}

#[test]
fn distinct_blocks_still_charge_separately() {
    let (_, profile) = Runner::new(Backend::InProcess)
        .ranks(2)
        .run_profiled(|comm| {
            let _g = comm.phase("two");
            let a = comm.ibcast_shared(0, (comm.rank() == 0).then(|| Arc::new(vec![1u8; 1000])));
            let b = comm.ibcast_shared(1, (comm.rank() == 1).then(|| Arc::new(vec![2u8; 500])));
            let (a, b) = (a.wait(), b.wait());
            let _ca = comm.mem_charge_shared(&a, 1000);
            let _cb = comm.mem_charge_shared(&b, 500);
            comm.barrier();
        });
    assert_eq!(profile.max_mem_hw("two"), 1500);
}
