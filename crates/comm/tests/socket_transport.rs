//! The socket backend must be a drop-in [`Transport`]: every runtime
//! feature the in-process mailbox supports — tagged point-to-point,
//! out-of-order matching, communicator splits, the full collective set,
//! the credit/ack streaming exchange, disconnect panics — must behave
//! identically when every cross-rank message is serialized into a frame
//! and shipped through a Unix socketpair ([`SocketCluster`]).

use elba_comm::{Backend, Runner};

#[test]
fn ring_send_recv_over_sockets() {
    let out = Runner::new(Backend::Socket).ranks(5).run(|comm| {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(next, 7, comm.rank() as u64);
        comm.recv::<u64>(prev, 7)
    });
    assert_eq!(out, vec![4, 0, 1, 2, 3]);
}

#[test]
fn out_of_order_tags_are_buffered_over_sockets() {
    let out = Runner::new(Backend::Socket).ranks(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, 10u64);
            comm.send(1, 2, 20u64);
            comm.send(1, 3, 30u64);
            0
        } else {
            let c = comm.recv::<u64>(0, 3);
            let b = comm.recv::<u64>(0, 2);
            let a = comm.recv::<u64>(0, 1);
            (a + b + c) as usize
        }
    });
    assert_eq!(out[1], 60);
}

#[test]
fn large_buffers_frame_and_decode() {
    // A multi-MB payload exercises the frame length header and the bulk
    // scalar slice codec end to end.
    let n = 4 << 20;
    let out = Runner::new(Backend::Socket).ranks(2).run(move |comm| {
        if comm.rank() == 0 {
            let buf: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            comm.send(1, 0, buf);
            0
        } else {
            let buf = comm.recv::<Vec<u8>>(0, 0);
            assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
            buf.len()
        }
    });
    assert_eq!(out[1], n);
}

#[test]
fn send_to_self_skips_serialization() {
    let out = Runner::new(Backend::Socket).ranks(3).run(|comm| {
        comm.send(comm.rank(), 9, comm.rank() as u64 * 3);
        comm.recv::<u64>(comm.rank(), 9)
    });
    assert_eq!(out, vec![0, 3, 6]);
}

#[test]
fn structured_payloads_round_trip() {
    let out = Runner::new(Backend::Socket).ranks(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, (String::from("contig"), vec![1u32, 2, 3], Some(7u64)));
            0
        } else {
            let (s, v, o) = comm.recv::<(String, Vec<u32>, Option<u64>)>(0, 1);
            assert_eq!(s, "contig");
            assert_eq!(v, vec![1, 2, 3]);
            assert_eq!(o, Some(7));
            1
        }
    });
    assert_eq!(out, vec![0, 1]);
}

#[test]
fn collectives_match_in_process() {
    // Same SPMD body over both backends; every collective result must be
    // identical, bit for bit.
    fn body(comm: &elba_comm::Comm) -> (u64, Vec<u64>, u64, Vec<u64>, u64) {
        let me = comm.rank() as u64;
        let sum = comm.allreduce(me, |a, b| a + b);
        let all = comm.allgather(me * 2);
        let ex = comm.exscan(me + 1, 0, |a, b| a + b);
        let bufs: Vec<Vec<u64>> = (0..comm.size())
            .map(|dst| vec![me * 100 + dst as u64; dst + 1])
            .collect();
        let exchanged: Vec<u64> = comm.alltoallv(bufs).into_iter().flatten().collect();
        let bc = comm.bcast(1, (comm.rank() == 1).then_some(me * 7));
        (sum, all, ex, exchanged, bc)
    }
    let a = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(|comm| body(&comm));
    let b = Runner::new(Backend::Socket)
        .ranks(4)
        .run(|comm| body(&comm));
    assert_eq!(a, b);
}

#[test]
fn split_builds_working_grids() {
    let out = Runner::new(Backend::Socket).ranks(6).run(|comm| {
        let color = comm.rank() / 3;
        let sub = comm.split(color, comm.rank());
        let next = (sub.rank() + 1) % sub.size();
        let prev = (sub.rank() + sub.size() - 1) % sub.size();
        sub.send(next, 1, comm.rank() as u64);
        let from_prev = sub.recv::<u64>(prev, 1);
        (sub.rank(), sub.size(), from_prev)
    });
    assert_eq!(out[0], (0, 3, 2));
    assert_eq!(out[3], (0, 3, 5));
    assert_eq!(out[5], (2, 3, 4));
}

#[test]
fn nested_splits_and_dup() {
    // ProcGrid does exactly this: world → row comms → col comms, plus a
    // dup for auxiliary traffic. Contexts must never collide.
    let out = Runner::new(Backend::Socket).ranks(4).run(|comm| {
        let row = comm.split(comm.rank() / 2, comm.rank());
        let col = comm.split(comm.rank() % 2, comm.rank());
        let aux = comm.dup();
        let r = row.allreduce(comm.rank() as u64, |a, b| a + b);
        let c = col.allreduce(comm.rank() as u64, |a, b| a + b);
        let w = aux.allreduce(1u64, |a, b| a + b);
        (r, c, w)
    });
    assert_eq!(out[0], (1, 2, 4)); // row {0,1}, col {0,2}
    assert_eq!(out[3], (5, 4, 4)); // row {2,3}, col {1,3}
}

#[test]
fn ialltoallv_streams_over_sockets() {
    // The credit/ack flow-control machine must stay live when chunks are
    // serialized frames (invariant 5: finish_sends never blocks, parking
    // only happens with inbound ready or credit pending).
    let sizes = [1usize, 2, 3, 4, 5];
    for &p in &sizes {
        let out = Runner::new(Backend::Socket).ranks(p).run(move |comm| {
            let bufs: Vec<Vec<u64>> = (0..comm.size())
                .map(|dst| {
                    let n = (comm.rank() * 7 + dst * 3) % 11;
                    (0..n as u64)
                        .map(|i| i + comm.rank() as u64 * 1000)
                        .collect()
                })
                .collect();
            let mut total = 0u64;
            for (src, buf) in comm.ialltoallv(bufs, 256) {
                total += buf.iter().sum::<u64>() + src as u64;
            }
            total
        });
        let expect = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let bufs: Vec<Vec<u64>> = (0..comm.size())
                .map(|dst| {
                    let n = (comm.rank() * 7 + dst * 3) % 11;
                    (0..n as u64)
                        .map(|i| i + comm.rank() as u64 * 1000)
                        .collect()
                })
                .collect();
            let mut total = 0u64;
            for (src, buf) in comm.ialltoallv(bufs, 256) {
                total += buf.iter().sum::<u64>() + src as u64;
            }
            total
        });
        assert_eq!(out, expect, "p={p}");
    }
}

#[test]
fn profiled_wire_bytes_match_in_process() {
    // Invariant 2 across backends: bytes are booked from CommMsg::nbytes
    // above the transport, so per-rank per-phase profiled traffic must be
    // byte-identical even though only the socket backend serializes.
    fn body(comm: &elba_comm::Comm) {
        let _g = comm.phase("exchange");
        let next = (comm.rank() + 1) % comm.size();
        comm.send(next, 1, vec![0u64; 64 * (comm.rank() + 1)]);
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        let _ = comm.recv::<Vec<u64>>(prev, 1);
        let _ = comm.allgather(comm.rank() as u64);
    }
    let (_, a) = Runner::new(Backend::InProcess)
        .ranks(3)
        .run_profiled(|comm| body(&comm));
    let (_, b) = Runner::new(Backend::Socket)
        .ranks(3)
        .run_profiled(|comm| body(&comm));
    for rank in 0..3 {
        let pa = &a.rank_profiles()[rank];
        let pb = &b.rank_profiles()[rank];
        let phase_a = pa.phase("exchange").expect("phase recorded");
        let phase_b = pb.phase("exchange").expect("phase recorded");
        assert_eq!(phase_a.bytes_sent(), phase_b.bytes_sent(), "rank {rank}");
        assert_eq!(phase_a.p2p_msgs, phase_b.p2p_msgs, "rank {rank}");
    }
}

#[test]
#[should_panic(expected = "panicked")]
fn rank_panic_propagates_over_sockets() {
    let _ = Runner::new(Backend::Socket).ranks(2).run(|comm| {
        if comm.rank() == 1 {
            panic!("deliberate failure");
        }
        0
    });
}

#[test]
#[should_panic(expected = "disconnected while waiting")]
fn blocked_recv_fails_when_peer_exits() {
    let _ = Runner::new(Backend::Socket).ranks(2).run(|comm| {
        if comm.rank() == 0 {
            return 0; // drops its Comm: Close frames + EOF reach rank 1
        }
        comm.recv::<u64>(0, 3)
    });
}
