//! Property tests for the collective implementations: every collective
//! must agree with its obvious serial reference on arbitrary inputs,
//! rank counts, and roots — including the non-power-of-two sizes where
//! binomial-tree index bugs live.

use elba_comm::{Backend, Runner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bcast_delivers_to_all(p in 1usize..10, root_k in 0usize..10, value: u64) {
        let root = root_k % p;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            comm.bcast(root, (comm.rank() == root).then_some(value))
        });
        prop_assert!(out.iter().all(|&v| v == value));
    }

    #[test]
    fn reduce_sums_like_serial(p in 1usize..10, root_k in 0usize..10, values in proptest::collection::vec(0u64..1_000_000, 10)) {
        let root = root_k % p;
        let values_in = values.clone();
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            comm.reduce(root, values_in[comm.rank() % values_in.len()], |a, b| a + b)
        });
        let expect: u64 = (0..p).map(|r| values[r % values.len()]).sum();
        prop_assert_eq!(out[root], Some(expect));
        for (r, v) in out.iter().enumerate() {
            if r != root {
                prop_assert!(v.is_none());
            }
        }
    }

    #[test]
    fn allreduce_min_max(p in 1usize..10, values in proptest::collection::vec(0i64..1000, 10)) {
        let values_in = values.clone();
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let mine = values_in[comm.rank() % values_in.len()];
            (comm.allreduce(mine, i64::min), comm.allreduce(mine, i64::max))
        });
        let mine: Vec<i64> = (0..p).map(|r| values[r % values.len()]).collect();
        let (lo, hi) = (*mine.iter().min().expect("p>=1"), *mine.iter().max().expect("p>=1"));
        prop_assert!(out.iter().all(|&(a, b)| a == lo && b == hi));
    }

    #[test]
    fn allgather_is_rank_ordered(p in 1usize..10, salt: u64) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            comm.allgather(comm.rank() as u64 ^ salt)
        });
        let expect: Vec<u64> = (0..p as u64).map(|r| r ^ salt).collect();
        prop_assert!(out.iter().all(|v| v == &expect));
    }

    #[test]
    fn alltoallv_transposes_the_send_matrix(p in 1usize..8, salt in 0u64..1000) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let bufs: Vec<Vec<u64>> = (0..p)
                .map(|dst| {
                    // variable-length buffers: dst receives (src+dst+salt) repeated
                    vec![comm.rank() as u64 + dst as u64 + salt; (comm.rank() + dst) % 3 + 1]
                })
                .collect();
            comm.alltoallv(bufs)
        });
        for (dst, received) in out.iter().enumerate() {
            for (src, buf) in received.iter().enumerate() {
                let expect = vec![src as u64 + dst as u64 + salt; (src + dst) % 3 + 1];
                prop_assert_eq!(buf, &expect);
            }
        }
    }

    #[test]
    fn exscan_matches_prefix_sums(p in 1usize..10, values in proptest::collection::vec(0u64..1000, 10)) {
        let values_in = values.clone();
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            comm.exscan(values_in[comm.rank() % values_in.len()], 0, |a, b| a + b)
        });
        let mut prefix = 0u64;
        for (r, &got) in out.iter().enumerate() {
            prop_assert_eq!(got, prefix, "rank {}", r);
            prefix += values[r % values.len()];
        }
    }

    #[test]
    fn reduce_scatter_block_matches_columnwise_sum(p in 1usize..8, salt in 0u64..100) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let contributions: Vec<u64> =
                (0..p).map(|i| comm.rank() as u64 * 10 + i as u64 + salt).collect();
            comm.reduce_scatter_block(contributions, |a, b| a + b)
        });
        for (i, &got) in out.iter().enumerate() {
            let expect: u64 = (0..p as u64).map(|r| r * 10 + i as u64 + salt).sum();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn split_groups_partition_the_world(p in 1usize..10, ncolors in 1usize..4) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let color = comm.rank() % ncolors;
            let sub = comm.split(color, comm.rank());
            // sum of ranks within the subgroup, computed two ways
            let via_sub: u64 = sub.allreduce(comm.rank() as u64, |a, b| a + b);
            (color, sub.size(), via_sub)
        });
        for (rank, &(color, size, sum)) in out.iter().enumerate() {
            let members: Vec<usize> = (0..p).filter(|r| r % ncolors == color).collect();
            prop_assert_eq!(size, members.len(), "rank {}", rank);
            prop_assert_eq!(sum, members.iter().map(|&r| r as u64).sum::<u64>());
        }
    }
}
