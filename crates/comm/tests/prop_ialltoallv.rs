//! Property tests pinning the non-blocking chunked `ialltoallv` to the
//! blocking `alltoallv` reference: same per-source payloads under
//! randomized buffer sizes (including empty and single-rank exchanges),
//! arbitrary chunk sizes, incremental multi-round posting, and while
//! unrelated `isend`/`irecv` traffic is in flight on user tags.

use elba_comm::{Backend, Runner};
use proptest::prelude::*;

/// Deterministic payload rank `src` sends to rank `dst`.
fn payload(src: usize, dst: usize, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| (src as u64) << 32 | (dst as u64) << 16 | i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn ialltoallv_equals_blocking_alltoallv(
        p_idx in 0usize..4,
        chunk in 1usize..9,
        sizes in proptest::collection::vec(0usize..17, 25),
    ) {
        let p = [1usize, 2, 3, 5][p_idx];
        let sizes_in = sizes.clone();
        let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let make = || -> Vec<Vec<u64>> {
                (0..p)
                    .map(|dst| payload(comm.rank(), dst, sizes_in[(comm.rank() * p + dst) % sizes_in.len()]))
                    .collect()
            };
            let got = comm.ialltoallv(make(), chunk).wait();
            let want = comm.alltoallv(make());
            got == want
        });
        prop_assert!(ok.iter().all(|&b| b), "p={} chunk={}", p, chunk);
    }

    #[test]
    fn streamed_rounds_concatenate_like_one_exchange(
        p_idx in 0usize..3,
        chunk in 1usize..6,
        round_sizes in proptest::collection::vec(0usize..7, 12),
    ) {
        // Posting a buffer in several rounds through the stream handle
        // must deliver the same concatenation as one eager alltoallv of
        // the whole thing — per-(source, tag) FIFO order end to end.
        let p = [1usize, 2, 4][p_idx];
        let rs = round_sizes.clone();
        let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let rounds = 3usize;
            let piece = |round: usize, dst: usize| -> Vec<u64> {
                let len = rs[(round * p + dst + comm.rank()) % rs.len()];
                payload(comm.rank() * 10 + round, dst, len)
            };
            let mut req = comm.ialltoallv_stream::<u64>(chunk);
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); p];
            for round in 0..rounds {
                for dst in 0..p {
                    req.post(dst, piece(round, dst));
                }
                // Drain opportunistically mid-stream, like the k-mer loop.
                while let Some((src, mut c)) = req.try_next() {
                    got[src].append(&mut c);
                }
            }
            req.finish_sends();
            for (src, mut c) in req.by_ref() {
                got[src].append(&mut c);
            }
            let want: Vec<Vec<u64>> = comm.alltoallv(
                (0..p)
                    .map(|dst| (0..rounds).flat_map(|round| piece(round, dst)).collect())
                    .collect(),
            );
            got == want
        });
        prop_assert!(ok.iter().all(|&b| b), "p={} chunk={}", p, chunk);
    }

    #[test]
    fn ialltoallv_ignores_concurrent_p2p_traffic(
        p_idx in 0usize..3,
        chunk in 1usize..5,
        sizes in proptest::collection::vec(0usize..9, 16),
        noise in proptest::collection::vec(0u64..1000, 4),
    ) {
        // Unrelated non-blocking point-to-point traffic on user tags,
        // posted before and completed after the collective, must neither
        // corrupt nor be corrupted by the chunk stream.
        let p = [2usize, 3, 4][p_idx];
        let sizes_in = sizes.clone();
        let noise_in = noise.clone();
        let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let tag_a = 101;
            let tag_b = 202;
            let recv_a = comm.irecv::<Vec<u64>>(left, tag_a);
            comm.isend(right, tag_a, noise_in.clone()).wait();
            let make = || -> Vec<Vec<u64>> {
                (0..p)
                    .map(|dst| payload(comm.rank(), dst, sizes_in[(comm.rank() * p + dst) % sizes_in.len()]))
                    .collect()
            };
            let mut req = comm.ialltoallv(make(), chunk);
            // Interleave more p2p while chunks are in flight.
            let recv_b = comm.irecv::<u64>(left, tag_b);
            comm.isend(right, tag_b, comm.rank() as u64).wait();
            let mut got: Vec<Vec<u64>> = vec![Vec::new(); p];
            for (src, mut c) in req.by_ref() {
                got[src].append(&mut c);
            }
            let from_left_a = recv_a.wait();
            let from_left_b = recv_b.wait();
            let want = comm.alltoallv(make());
            got == want && from_left_a == noise_in && from_left_b == left as u64
        });
        prop_assert!(ok.iter().all(|&b| b), "p={} chunk={}", p, chunk);
    }
}
