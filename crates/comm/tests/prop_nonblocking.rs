//! Property tests for the non-blocking point-to-point layer: `isend` /
//! `irecv` must interoperate with the blocking `send` / `recv` in any
//! combination — same mailboxes, same `(source, tag)` matching, no
//! messages lost or reordered within a tag.

use elba_comm::{Backend, Runner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Ring exchange where each rank independently picks blocking or
    /// non-blocking for its send and its receive (from generated bits):
    /// every pairing (send→recv, send→irecv, isend→recv, isend→irecv)
    /// must deliver.
    #[test]
    fn ring_delivers_under_any_mix(p in 1usize..9, mode_bits in 0u64..65536) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let payload = comm.rank() as u64 * 1000 + 7;
            if mode_bits >> comm.rank() & 1 == 1 {
                comm.isend(next, 3, payload).wait();
            } else {
                comm.send(next, 3, payload);
            }
            if mode_bits >> (comm.rank() + 16) & 1 == 1 {
                comm.irecv::<u64>(prev, 3).wait()
            } else {
                comm.recv::<u64>(prev, 3)
            }
        });
        for (rank, &got) in out.iter().enumerate() {
            let prev = (rank + p - 1) % p;
            prop_assert_eq!(got, prev as u64 * 1000 + 7);
        }
    }

    /// Many tagged messages posted as irecvs in one order and sent (with
    /// a mix of send/isend) in another: tag matching must pair them up
    /// regardless of posting order on either side.
    #[test]
    fn out_of_order_tags_with_mixed_posting(
        n_msgs in 1usize..12,
        send_mix in 0u64..4096,
        perm_seed in 0u64..10_000,
    ) {
        let out = Runner::new(Backend::InProcess).ranks(2).run(move |comm| {
            if comm.rank() == 0 {
                for tag in 0..n_msgs as u64 {
                    let value = tag * 11 + 5;
                    if send_mix >> tag & 1 == 1 {
                        comm.isend(1, tag, value).wait();
                    } else {
                        comm.send(1, tag, value);
                    }
                }
                Vec::new()
            } else {
                // Deterministic pseudo-shuffle of posting order.
                let mut order: Vec<u64> = (0..n_msgs as u64).collect();
                for i in (1..order.len()).rev() {
                    let j = (perm_seed as usize)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i) % (i + 1);
                    order.swap(i, j);
                }
                let requests: Vec<_> =
                    order.iter().map(|&tag| (tag, comm.irecv::<u64>(0, tag))).collect();
                let mut got: Vec<(u64, u64)> =
                    requests.into_iter().map(|(tag, req)| (tag, req.wait())).collect();
                got.sort_unstable();
                got
            }
        });
        let want: Vec<(u64, u64)> = (0..n_msgs as u64).map(|t| (t, t * 11 + 5)).collect();
        prop_assert_eq!(&out[1], &want);
    }

    /// An irecv posted *before* the barrier-separated send still matches,
    /// and test() never falsely completes before the send happened.
    #[test]
    fn early_posted_irecv_waits_for_late_send(p in 2usize..6, value in 0u64..1_000_000) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            if comm.rank() == 1 {
                let mut req = comm.irecv::<u64>(0, 9);
                let premature = req.test();
                comm.barrier(); // rank 0 sends only after this barrier
                let got = req.wait();
                (premature, got)
            } else {
                comm.barrier();
                if comm.rank() == 0 {
                    comm.isend(1, 9, value).wait();
                }
                (false, 0)
            }
        });
        let (premature, got) = out[1];
        prop_assert!(!premature, "test() completed before any send was posted");
        prop_assert_eq!(got, value);
    }

    /// Non-blocking broadcast agrees with the blocking one when both run
    /// back-to-back in the same SPMD program, for every root.
    #[test]
    fn ibcast_agrees_with_bcast(p in 1usize..10, root_k in 0usize..10, value: u64) {
        let root = root_k % p;
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let req = comm.ibcast(root, (comm.rank() == root).then_some(value));
            let blocking = comm.bcast(root, (comm.rank() == root).then_some(value ^ 1));
            (req.wait(), blocking)
        });
        for &(nb, b) in &out {
            prop_assert_eq!(nb, value);
            prop_assert_eq!(b, value ^ 1);
        }
    }
}
