//! # elba-mem — memory budgets and per-phase byte accounting
//!
//! ELBA's SpGEMM strong-scales because its memory is *bounded*: the
//! batched overlap-detection multiply splits the output of `C = AAᵀ`
//! into column batches sized so that no rank ever materializes more than
//! a budget's worth of intermediates. This crate is the substrate that
//! claim is built on in ELBA-RS:
//!
//! * [`MemBudget`] — a global per-rank byte cap with fixed per-phase
//!   sub-budgets, plus the derivations that turn one `--mem-budget` knob
//!   into concrete pipeline parameters (`batch_kmers`, `batch_rows`,
//!   SpGEMM column-batch sizing),
//! * [`MemTracker`] — per-rank, per-phase high-water byte accounting.
//!   Stages *charge* bytes while a buffer is resident and *release* them
//!   when it drops; each phase records the maximum total resident bytes
//!   observed while it was active. Trackers from different ranks merge
//!   with [`MemTracker::merge_max`], mirroring how `RunProfile`
//!   aggregates wall times (the slowest/biggest rank gates the run).
//!
//! The tracker is a plain state machine (no interior locking): the comm
//! layer embeds one per rank inside its already-mutex-guarded `Profile`
//! and exposes RAII charge guards, so charging is one short critical
//! section per allocation-sized event, never per element.

/// Phase name used for bytes charged outside any explicit phase.
/// Matches the comm profiler's unphased bucket.
pub const UNPHASED: &str = "(unphased)";

/// Fraction of the total budget reserved for the k-mer exchange's
/// application-side buffers (outgoing buckets + one inbound chunk).
const EXCHANGE_FRACTION: f64 = 0.25;
/// Fraction of the total budget available to one distributed SpGEMM's
/// transient intermediates (stage blocks + batch accumulators).
const SPGEMM_FRACTION: f64 = 0.5;

/// A per-rank memory budget in bytes. `None` means unlimited (the
/// default): every consumer falls back to its static defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBudget {
    total: Option<u64>,
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget::unlimited()
    }
}

impl MemBudget {
    /// No cap: all derivations return their defaults.
    pub fn unlimited() -> Self {
        MemBudget { total: None }
    }

    /// Cap of `total` bytes per rank.
    pub fn bytes(total: u64) -> Self {
        assert!(total > 0, "a memory budget must be positive");
        MemBudget { total: Some(total) }
    }

    /// Parse a human-friendly byte count: a plain number or one with a
    /// `K`/`M`/`G` suffix (binary units), e.g. `"64M"`, `"2G"`, `"4096"`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let raw = raw.trim();
        let (digits, shift) = match raw.as_bytes().last() {
            Some(b'K' | b'k') => (&raw[..raw.len() - 1], 10),
            Some(b'M' | b'm') => (&raw[..raw.len() - 1], 20),
            Some(b'G' | b'g') => (&raw[..raw.len() - 1], 30),
            _ => (raw, 0),
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("cannot parse memory budget '{raw}' (try 512M, 2G, 65536)"))?;
        if n == 0 {
            return Err("memory budget must be positive".to_owned());
        }
        n.checked_shl(shift)
            .filter(|&b| b >> shift == n)
            .map(MemBudget::bytes)
            .ok_or_else(|| format!("memory budget '{raw}' overflows u64"))
    }

    /// Global cap in bytes, if one is set.
    pub fn total(&self) -> Option<u64> {
        self.total
    }

    pub fn is_limited(&self) -> bool {
        self.total.is_some()
    }

    /// Sub-budget for the k-mer exchange's application-side buffers.
    pub fn exchange_bytes(&self) -> Option<u64> {
        self.total
            .map(|t| ((t as f64 * EXCHANGE_FRACTION) as u64).max(1))
    }

    /// Sub-budget for one distributed SpGEMM's transient intermediates.
    pub fn spgemm_bytes(&self) -> Option<u64> {
        self.total
            .map(|t| ((t as f64 * SPGEMM_FRACTION) as u64).max(1))
    }

    /// Streaming-exchange batch size (`batch_kmers`): one outgoing
    /// batch (the exchange keeps at most one resident application-side)
    /// plus the per-peer inbound transport ceiling (≈ one batch per
    /// peer under the flow-control window) must fit the exchange
    /// sub-budget, so a batch is the sub-budget divided by `1 + peers`.
    /// The pipeline derives this at run time, where the rank count is
    /// known — a config-time derivation cannot see `p`, and a p-blind
    /// split would let the inbound ceiling exceed the sub-budget on any
    /// real grid. Unlimited budgets return `default`.
    pub fn derive_batch_kmers_for(
        &self,
        record_bytes: usize,
        peers: usize,
        default: usize,
    ) -> usize {
        match self.exchange_bytes() {
            None => default,
            Some(bytes) => {
                let share = bytes / (1 + peers.max(1)) as u64;
                (share as usize / record_bytes.max(1)).clamp(1 << 10, 1 << 20)
            }
        }
    }

    /// Row-batch size for the blocked local multiply inside each SUMMA
    /// round: sized so one batch's output rows are a small slice of the
    /// SpGEMM sub-budget under the `row_bytes_hint` heuristic (estimated
    /// bytes per accumulated output row). Unlimited budgets return
    /// `default`.
    pub fn derive_batch_rows(&self, row_bytes_hint: usize, default: usize) -> usize {
        match self.spgemm_bytes() {
            None => default,
            Some(bytes) => ((bytes / 16) as usize / row_bytes_hint.max(1)).clamp(32, 1 << 13),
        }
    }
}

/// Deep heap size of a value: the bytes of heap storage owned by the
/// value *beyond* its own `size_of`. Containers that count their
/// payloads at `size_of` (e.g. a CSR values array) undercount values
/// that themselves own heap (a `Vec` inside a matrix entry); summing
/// `size_of::<T>() + deep_bytes()` per element gives the true resident
/// footprint. Plain-old-data types report 0 — use
/// [`impl_deep_bytes_pod!`] for those.
///
/// Like the tracker's charges, deep sizes are length-based, not
/// capacity-based, so they are deterministic across runs.
pub trait DeepBytes {
    /// Heap bytes owned by this value beyond `size_of::<Self>()`.
    fn deep_bytes(&self) -> usize;
}

/// Implement [`DeepBytes`] (as 0 — no owned heap) for plain-old-data
/// types.
#[macro_export]
macro_rules! impl_deep_bytes_pod {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::DeepBytes for $t {
            #[inline]
            fn deep_bytes(&self) -> usize {
                0
            }
        })*
    };
}

impl_deep_bytes_pod!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: DeepBytes> DeepBytes for Vec<T> {
    fn deep_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
            + self.iter().map(DeepBytes::deep_bytes).sum::<usize>()
    }
}

impl DeepBytes for String {
    fn deep_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: DeepBytes> DeepBytes for Option<T> {
    fn deep_bytes(&self) -> usize {
        self.as_ref().map_or(0, DeepBytes::deep_bytes)
    }
}

impl<T: DeepBytes> DeepBytes for Box<T> {
    fn deep_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().deep_bytes()
    }
}

impl<A: DeepBytes, B: DeepBytes> DeepBytes for (A, B) {
    fn deep_bytes(&self) -> usize {
        self.0.deep_bytes() + self.1.deep_bytes()
    }
}

impl<A: DeepBytes, B: DeepBytes, C: DeepBytes> DeepBytes for (A, B, C) {
    fn deep_bytes(&self) -> usize {
        self.0.deep_bytes() + self.1.deep_bytes() + self.2.deep_bytes()
    }
}

/// Per-rank, per-phase high-water byte accounting.
///
/// One `current` tally of resident tracked bytes is shared across
/// phases; each phase records the maximum value of `current` observed
/// while it was active (bytes charged in an earlier phase and still
/// resident count against the later phase too — residency is what
/// matters for a cap). [`MemTracker::record_transient`] books a
/// short-lived spike (`current + bytes`) without holding it.
///
/// *Shared blocks* (payloads referenced through an `Arc`) charge through
/// [`MemTracker::charge_shared`], keyed by the allocation's address: the
/// first reference a rank holds charges the block's bytes, further
/// references on the same rank are free, and the bytes release when the
/// last reference drops — one rank charges one shared block **once**,
/// no matter how many handles to it live on that rank.
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    current: u64,
    /// `(phase name, high-water bytes)` in first-entered order.
    phases: Vec<(String, u64)>,
    stack: Vec<usize>,
    /// Shared-block charges held by this rank: allocation address →
    /// (live references, bytes charged once).
    shared: std::collections::HashMap<usize, (usize, u64)>,
}

impl MemTracker {
    pub fn new() -> Self {
        MemTracker::default()
    }

    fn index_of(&mut self, name: &str) -> usize {
        if let Some(idx) = self.phases.iter().position(|(n, _)| n == name) {
            idx
        } else {
            self.phases.push((name.to_owned(), 0));
            self.phases.len() - 1
        }
    }

    fn bump(&mut self, candidate: u64) {
        // Every phase on the stack is *active*, so a peak inside a
        // nested phase counts toward its enclosing phases too — a
        // budget asserted on an outer phase must not miss bytes that
        // spiked entirely within a child.
        if self.stack.is_empty() {
            let idx = self.index_of(UNPHASED);
            self.phases[idx].1 = self.phases[idx].1.max(candidate);
            return;
        }
        for i in 0..self.stack.len() {
            let idx = self.stack[i];
            let hw = &mut self.phases[idx].1;
            *hw = (*hw).max(candidate);
        }
    }

    /// Enter a named phase (nests like the profiler's phase guards).
    /// Bytes already resident count toward the phase immediately.
    pub fn enter(&mut self, name: &str) {
        let idx = self.index_of(name);
        self.stack.push(idx);
        self.bump(self.current);
    }

    /// Leave the innermost phase.
    pub fn exit(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(popped.is_some(), "mem phase exits must pair with enters");
    }

    /// Charge `bytes` as resident until the matching [`MemTracker::release`].
    pub fn charge(&mut self, bytes: u64) {
        self.current += bytes;
        self.bump(self.current);
    }

    /// Release bytes previously charged.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.current, "releasing more than charged");
        self.current = self.current.saturating_sub(bytes);
    }

    /// Replace an existing charge of `old` bytes with `new` bytes in one
    /// step (the growing-accumulator pattern).
    pub fn adjust(&mut self, old: u64, new: u64) {
        self.release(old);
        self.charge(new);
    }

    /// Record a transient spike of `bytes` on top of the current
    /// residency, without holding it.
    pub fn record_transient(&mut self, bytes: u64) {
        self.bump(self.current + bytes);
    }

    /// Charge a *shared* block identified by its allocation address
    /// (`key`, e.g. `Arc::as_ptr` cast to usize): the first reference
    /// this rank takes charges `bytes`, every further reference to the
    /// same key only bumps a refcount — the single-charge rule for
    /// `Arc`-shared broadcast payloads. Pair with
    /// [`MemTracker::release_shared`].
    pub fn charge_shared(&mut self, key: usize, bytes: u64) {
        let entry = self.shared.entry(key).or_insert((0, 0));
        if entry.0 == 0 {
            entry.1 = bytes;
            self.current += bytes;
        }
        entry.0 += 1;
        self.bump(self.current);
    }

    /// Drop one reference to a shared block; the bytes release when the
    /// last reference goes.
    pub fn release_shared(&mut self, key: usize) {
        let entry = self
            .shared
            .get_mut(&key)
            .expect("releasing a shared block that was never charged");
        entry.0 -= 1;
        if entry.0 == 0 {
            let bytes = entry.1;
            self.shared.remove(&key);
            self.release(bytes);
        }
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark of a phase (0 if never entered).
    pub fn high_water(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|(n, _)| n == phase)
            .map_or(0, |&(_, hw)| hw)
    }

    /// `(phase, high-water)` pairs in first-entered order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, u64)> {
        self.phases.iter().map(|(n, hw)| (n.as_str(), *hw))
    }

    /// Rebuild a tracker from a serialized snapshot: the resident tally
    /// plus `(phase, high-water)` pairs in first-entered order. Used to
    /// reconstitute per-rank trackers gathered from worker *processes*
    /// (`elba launch`); live shared-charge bookkeeping is not part of a
    /// snapshot — by gather time every charge guard has dropped.
    pub fn from_snapshot(current: u64, phases: Vec<(String, u64)>) -> MemTracker {
        MemTracker {
            current,
            phases,
            stack: Vec::new(),
            shared: std::collections::HashMap::new(),
        }
    }

    /// Merge another rank's tracker: per-phase maximum, preserving
    /// first-seen phase order — the cross-rank aggregation a run report
    /// wants (the biggest rank gates the memory claim).
    pub fn merge_max(&mut self, other: &MemTracker) {
        for (name, hw) in other.phases() {
            let idx = self.index_of(name);
            self.phases[idx].1 = self.phases[idx].1.max(hw);
        }
        self.current = self.current.max(other.current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parse_accepts_suffixes() {
        assert_eq!(MemBudget::parse("4096").unwrap().total(), Some(4096));
        assert_eq!(MemBudget::parse("64K").unwrap().total(), Some(64 << 10));
        assert_eq!(MemBudget::parse("64M").unwrap().total(), Some(64 << 20));
        assert_eq!(MemBudget::parse("2g").unwrap().total(), Some(2 << 30));
        assert!(MemBudget::parse("0").is_err());
        assert!(MemBudget::parse("lots").is_err());
        assert!(MemBudget::parse("999999999999G").is_err());
    }

    #[test]
    fn sub_budgets_split_the_total() {
        let b = MemBudget::bytes(1 << 20);
        assert_eq!(b.exchange_bytes(), Some(1 << 18));
        assert_eq!(b.spgemm_bytes(), Some(1 << 19));
        assert_eq!(MemBudget::unlimited().spgemm_bytes(), None);
    }

    #[test]
    fn derivations_clamp_and_default() {
        let unlimited = MemBudget::unlimited();
        assert_eq!(unlimited.derive_batch_kmers_for(24, 3, 777), 777);
        assert_eq!(unlimited.derive_batch_rows(1024, 555), 555);
        // 1 MiB budget, 3 peers: exchange sub-budget 256 KiB, a quarter
        // of it across 24-byte records ≈ 2730 → within clamps.
        let b = MemBudget::bytes(1 << 20);
        let batch = b.derive_batch_kmers_for(24, 3, 0);
        assert!((1 << 10..=1 << 20).contains(&batch));
        // more peers → smaller batches (the inbound ceiling scales)
        assert!(b.derive_batch_kmers_for(24, 15, 0) <= batch);
        // tiny budget clamps at the floor
        assert_eq!(
            MemBudget::bytes(16).derive_batch_kmers_for(24, 1, 0),
            1 << 10
        );
        assert_eq!(MemBudget::bytes(16).derive_batch_rows(1024, 0), 32);
    }

    #[test]
    fn tracker_phases_record_high_water() {
        let mut t = MemTracker::new();
        t.enter("a");
        t.charge(100);
        t.charge(50);
        t.release(50);
        t.exit();
        t.enter("b");
        // the 100 bytes from phase a are still resident
        assert_eq!(t.current(), 100);
        t.record_transient(25);
        t.exit();
        assert_eq!(t.high_water("a"), 150);
        assert_eq!(t.high_water("b"), 125);
        assert_eq!(t.high_water("never"), 0);
    }

    #[test]
    fn unphased_charges_land_in_bucket() {
        let mut t = MemTracker::new();
        t.charge(42);
        assert_eq!(t.high_water(UNPHASED), 42);
    }

    #[test]
    fn adjust_replaces_charge() {
        let mut t = MemTracker::new();
        t.enter("x");
        t.charge(10);
        t.adjust(10, 70);
        t.adjust(70, 30);
        assert_eq!(t.current(), 30);
        assert_eq!(t.high_water("x"), 70);
    }

    #[test]
    fn merge_max_takes_per_phase_maximum() {
        let mut a = MemTracker::new();
        a.enter("p");
        a.charge(10);
        a.exit();
        let mut b = MemTracker::new();
        b.enter("p");
        b.charge(90);
        b.exit();
        b.enter("q");
        b.charge(5);
        b.exit();
        a.merge_max(&b);
        assert_eq!(a.high_water("p"), 90);
        assert_eq!(a.high_water("q"), 95, "q saw p's residency too");
    }

    #[test]
    fn nested_phases_both_see_residency() {
        let mut t = MemTracker::new();
        t.enter("outer");
        t.charge(10);
        t.enter("inner");
        t.charge(20);
        t.exit();
        t.charge(5);
        t.exit();
        assert_eq!(t.high_water("inner"), 30);
        assert_eq!(t.high_water("outer"), 35);
    }

    #[test]
    fn shared_blocks_charge_once_per_rank() {
        let mut t = MemTracker::new();
        t.enter("p");
        t.charge_shared(0xA0, 100);
        t.charge_shared(0xA0, 100); // second reference: free
        t.charge_shared(0xB0, 30); // distinct block: charged
        assert_eq!(t.current(), 130);
        t.release_shared(0xA0);
        assert_eq!(t.current(), 130, "one reference still holds the block");
        t.release_shared(0xA0);
        assert_eq!(t.current(), 30, "last reference releases the bytes");
        t.release_shared(0xB0);
        t.exit();
        assert_eq!(t.high_water("p"), 130);
    }

    #[test]
    fn deep_bytes_counts_nested_heap() {
        assert_eq!(7u64.deep_bytes(), 0);
        let flat = vec![1u32, 2, 3];
        assert_eq!(flat.deep_bytes(), 12);
        let nested = vec![vec![1u8; 4], vec![2u8; 6]];
        // outer: 2 × size_of::<Vec<u8>>; inner heap: 4 + 6
        assert_eq!(nested.deep_bytes(), 2 * std::mem::size_of::<Vec<u8>>() + 10);
        assert_eq!("hello".to_owned().deep_bytes(), 5);
        assert_eq!(Some(vec![0u64; 2]).deep_bytes(), vec![0u64; 2].deep_bytes());
        assert_eq!((1u8, vec![1u16; 3]).deep_bytes(), 6);
    }

    #[test]
    fn peak_inside_nested_phase_counts_toward_outer() {
        // A spike that lives entirely within a child phase must still
        // show in the enclosing phase's high-water: both were active.
        let mut t = MemTracker::new();
        t.enter("outer");
        t.enter("inner");
        t.charge(1000);
        t.release(1000);
        t.exit();
        t.exit();
        assert_eq!(t.high_water("inner"), 1000);
        assert_eq!(t.high_water("outer"), 1000);
    }
}
