//! Multi-tenant assembly serving: many jobs over a shared pool of
//! supervised rank groups (`elba serve`).
//!
//! The paper's lineage assumes one assembly per machine allocation; the
//! serving layer multiplexes many. Three pieces:
//!
//! * [`JobSpec`] — what to assemble (a FASTA file or a simulated-genome
//!   spec), under which per-job [`MemBudget`], optionally with an
//!   injected [`FaultPlan`]. Specs implement [`CommMsg`], so submission
//!   can ride the framed wire codec (a future TCP listener speaks the
//!   same frames `elba launch` workers already do).
//! * [`Scheduler`] — a FIFO admission queue with budget-based admission
//!   control: a job is admitted only while the aggregate of admitted
//!   budgets stays within the host cap; an over-cap submission is
//!   rejected with a typed [`SubmitError`] at submit time.
//! * [`GroupPool`] — N worker groups, each running admitted jobs through
//!   the backend-generic [`Runner`]. PR 9's supervision is what makes
//!   the pool tractable: a dead rank surfaces as a typed
//!   [`SpmdFailure`], never a hung group, so per-job failure handling is
//!   "mark the job failed, recycle the group". Each job gets a fresh
//!   mesh, so recycling is free — a failed job cannot poison the next.
//!
//! [`Server`] bundles the three behind `start / submit / wait / drain`.
//!
//! ## Admission rule
//!
//! Every job declares a whole-job memory claim (`budget_bytes`; `0`
//! means unbudgeted). With a host cap of `C` bytes:
//!
//! * a job claiming more than `C` is **rejected** at submit
//!   ([`SubmitError::BudgetExceedsHostCap`]);
//! * otherwise the job **queues** until `admitted + claim ≤ C`, where
//!   `admitted` sums the claims of running jobs — strictly FIFO, so a
//!   large job cannot be starved by small ones overtaking it;
//! * an unbudgeted job is charged the whole cap `C` (the conservative
//!   reading: it may use anything), which serializes it against every
//!   budgeted job.
//!
//! With no host cap, every submission is admitted as soon as a group is
//! free. The peak of `admitted` is tracked and exposed
//! ([`Server::peak_admitted_bytes`]) so tests and operators can assert
//! the invariant: **aggregate admitted budgets never exceed the cap**.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use elba_comm::transport::wire::{WireError, WireReader};
use elba_comm::{Backend, CommMsg, FaultPlan, ProcGrid, RunProfile, Runner, SpmdFailure};
use elba_mem::MemBudget;
use elba_quality::{evaluate, QualityConfig, QualityReport};
use elba_seq::fasta::read_fasta;
use elba_seq::{DatasetSpec, Seq};

use crate::assembly::Contig;
use crate::pipeline::{assemble_gathered, PipelineConfig};

// ---------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------

/// What a job assembles.
#[derive(Debug, Clone, PartialEq)]
pub enum JobInput {
    /// Reads from a FASTA file, resolved on the serving host.
    FastaPath(String),
    /// A simulated dataset: `dataset` is one of `celegans`, `osativa`,
    /// `hsapiens` (the Table 2 stand-ins), scaled by `scale` and seeded
    /// by `seed`. The reference genome is regenerated on the worker, so
    /// completed sim jobs carry a [`QualityReport`].
    Sim {
        dataset: String,
        scale: f64,
        seed: u64,
    },
}

/// One assembly job: input, per-job memory claim, optional fault plan.
///
/// `JobSpec` implements [`CommMsg`], so a spec can ride the same framed
/// codec every cross-rank message uses (see `elba launch`); submission
/// over a real socket needs no new serialization layer.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen job name, echoed in results and logs.
    pub name: String,
    pub input: JobInput,
    /// Whole-job memory claim in bytes; `0` = unbudgeted (charged as the
    /// full host cap under admission control). The pipeline runs under a
    /// per-rank [`MemBudget`] of `budget_bytes / group_ranks`.
    pub budget_bytes: u64,
    /// Optional fault plan injected below this job's comm layer
    /// ([`FaultPlan::parse`] syntax). The plan kills ranks *of this
    /// job's group only*; the server survives and recycles the group.
    pub fault: Option<String>,
}

impl JobSpec {
    /// A simulated-genome job with no budget and no faults.
    pub fn sim(name: &str, dataset: &str, scale: f64, seed: u64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            input: JobInput::Sim {
                dataset: dataset.to_string(),
                scale,
                seed,
            },
            budget_bytes: 0,
            fault: None,
        }
    }

    /// Set the whole-job memory claim.
    pub fn budget(mut self, bytes: u64) -> JobSpec {
        self.budget_bytes = bytes;
        self
    }

    /// Attach a fault plan ([`FaultPlan::parse`] syntax).
    pub fn with_fault(mut self, plan: &str) -> JobSpec {
        self.fault = Some(plan.to_string());
        self
    }

    /// Resolve a sim input's [`DatasetSpec`]; `None` for FASTA jobs,
    /// error for an unknown dataset name.
    fn dataset_spec(&self) -> Result<Option<DatasetSpec>, String> {
        match &self.input {
            JobInput::FastaPath(_) => Ok(None),
            JobInput::Sim {
                dataset,
                scale,
                seed,
            } => match dataset.as_str() {
                "celegans" => Ok(Some(DatasetSpec::celegans_like(*scale, *seed))),
                "osativa" => Ok(Some(DatasetSpec::osativa_like(*scale, *seed))),
                "hsapiens" => Ok(Some(DatasetSpec::hsapiens_like(*scale, *seed))),
                other => Err(format!(
                    "unknown dataset '{other}' (expected celegans|osativa|hsapiens)"
                )),
            },
        }
    }
}

const JOB_INPUT_FASTA: u8 = 0;
const JOB_INPUT_SIM: u8 = 1;

impl CommMsg for JobInput {
    fn nbytes(&self) -> usize {
        1 + match self {
            JobInput::FastaPath(p) => p.nbytes(),
            JobInput::Sim { dataset, .. } => dataset.nbytes() + 8 + 8,
        }
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            JobInput::FastaPath(p) => {
                out.push(JOB_INPUT_FASTA);
                p.wire_encode(out);
            }
            JobInput::Sim {
                dataset,
                scale,
                seed,
            } => {
                out.push(JOB_INPUT_SIM);
                dataset.wire_encode(out);
                scale.wire_encode(out);
                seed.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            JOB_INPUT_FASTA => Ok(JobInput::FastaPath(String::wire_decode(r)?)),
            JOB_INPUT_SIM => Ok(JobInput::Sim {
                dataset: String::wire_decode(r)?,
                scale: f64::wire_decode(r)?,
                seed: u64::wire_decode(r)?,
            }),
            _ => Err(WireError::Malformed("job input tag")),
        }
    }
}

impl CommMsg for JobSpec {
    fn nbytes(&self) -> usize {
        self.name.nbytes()
            + self.input.nbytes()
            + 8
            + 1
            + self.fault.as_ref().map_or(0, |f| f.nbytes())
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.name.wire_encode(out);
        self.input.wire_encode(out);
        self.budget_bytes.wire_encode(out);
        match &self.fault {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                f.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let name = String::wire_decode(r)?;
        let input = JobInput::wire_decode(r)?;
        let budget_bytes = u64::wire_decode(r)?;
        let fault = match r.read_u8()? {
            0 => None,
            1 => Some(String::wire_decode(r)?),
            _ => Err(WireError::Malformed("job fault tag"))?,
        };
        Ok(JobSpec {
            name,
            input,
            budget_bytes,
            fault,
        })
    }
}

// ---------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------

/// Identifies a submitted job within its server. Monotonic per server.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted to the queue, waiting for budget headroom + a free group.
    Queued,
    /// Running on a rank group.
    Running,
    /// Finished with contigs.
    Completed,
    /// Finished without contigs (rank death, bad input, group panic).
    Failed,
}

/// Why a submission was refused. Typed so callers can distinguish
/// "misconfigured job" from "try later" without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The job's claim can never fit: it exceeds the host cap outright.
    BudgetExceedsHostCap { requested: u64, cap: u64 },
    /// `JobSpec::fault` failed [`FaultPlan::parse`].
    InvalidFaultPlan(String),
    /// A sim input names an unknown dataset.
    UnknownDataset(String),
    /// The server is draining; no new jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::BudgetExceedsHostCap { requested, cap } => write!(
                f,
                "job budget {requested} B exceeds the host cap {cap} B: \
                 the job can never be admitted"
            ),
            SubmitError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            SubmitError::UnknownDataset(e) => write!(f, "{e}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a finished job ended.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    Completed {
        /// Gathered contigs (rank 0's view; identical on every rank).
        contigs: Vec<Contig>,
        /// Table 4 metrics against the known reference — sim jobs only
        /// (a FASTA job has no reference to evaluate against).
        report: Option<QualityReport>,
        /// Per-rank phase/volume profiles — the per-job billing record.
        profile: RunProfile,
        n_reads: usize,
    },
    Failed {
        /// Human-readable primary cause (rank and classification for
        /// SPMD failures, I/O or validation text otherwise).
        error: String,
        /// The failure was an injected [`FaultPlan`] kill — expected
        /// chaos, not an organic fault.
        killed_by_fault: bool,
    },
}

/// Terminal record for one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub id: JobId,
    pub name: String,
    pub outcome: JobOutcome,
    /// Submit → admission (queue wait).
    pub queued_secs: f64,
    /// Admission → terminal state (run time on the group).
    pub run_secs: f64,
}

impl JobResult {
    /// Completed successfully?
    pub fn completed(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }

    /// Submit → terminal latency, the number the p50/p99 summaries use.
    pub fn latency_secs(&self) -> f64 {
        self.queued_secs + self.run_secs
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

struct JobEntry {
    spec: JobSpec,
    /// Parsed at submit so workers never re-validate.
    plan: Option<FaultPlan>,
    /// Admission charge in bytes (claim, or the whole cap if unbudgeted).
    charge: u64,
    state: JobState,
    submitted: Instant,
    admitted: Option<Instant>,
    result: Option<JobResult>,
}

#[derive(Default)]
struct SchedulerState {
    jobs: Vec<JobEntry>,
    /// FIFO of queued job ids; only the head is ever considered for
    /// admission (no overtaking → no starvation of large jobs).
    queue: VecDeque<JobId>,
    /// Sum of charges of currently admitted (running) jobs.
    admitted_bytes: u64,
    /// High-water of `admitted_bytes` over the server's lifetime.
    peak_admitted_bytes: u64,
    closed: bool,
}

/// FIFO + budget admission queue. See the [module docs](self) for the
/// admission rule. Shared between submitters and the [`GroupPool`]
/// workers; all methods take `&self`.
pub struct Scheduler {
    host_cap: Option<u64>,
    state: Mutex<SchedulerState>,
    /// Signaled on submit, admission, completion, and close.
    cv: Condvar,
}

impl Scheduler {
    /// A scheduler admitting against `host_cap` total bytes
    /// ([`MemBudget::unlimited`] = no admission control).
    pub fn new(host_cap: MemBudget) -> Scheduler {
        Scheduler {
            host_cap: host_cap.total(),
            state: Mutex::new(SchedulerState::default()),
            cv: Condvar::new(),
        }
    }

    /// The host cap in bytes, if one is set.
    pub fn host_cap(&self) -> Option<u64> {
        self.host_cap
    }

    /// Validate and enqueue a job. Returns its id, or a typed
    /// [`SubmitError`] — over-cap claims are rejected here, at the door.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let plan = match &spec.fault {
            None => None,
            Some(raw) => Some(FaultPlan::parse(raw).map_err(SubmitError::InvalidFaultPlan)?),
        };
        spec.dataset_spec().map_err(SubmitError::UnknownDataset)?;
        let charge = match self.host_cap {
            None => spec.budget_bytes,
            Some(cap) => {
                if spec.budget_bytes > cap {
                    return Err(SubmitError::BudgetExceedsHostCap {
                        requested: spec.budget_bytes,
                        cap,
                    });
                }
                if spec.budget_bytes == 0 {
                    cap
                } else {
                    spec.budget_bytes
                }
            }
        };
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.jobs.len() as JobId;
        st.jobs.push(JobEntry {
            spec,
            plan,
            charge,
            state: JobState::Queued,
            submitted: Instant::now(),
            admitted: None,
            result: None,
        });
        st.queue.push_back(id);
        self.cv.notify_all();
        Ok(id)
    }

    /// A job's current state, if the id is known.
    pub fn state_of(&self, id: JobId) -> Option<JobState> {
        self.state
            .lock()
            .unwrap()
            .jobs
            .get(id as usize)
            .map(|j| j.state)
    }

    /// Highest aggregate of admitted charges observed so far. The
    /// admission invariant is `peak_admitted_bytes() ≤ host_cap`.
    pub fn peak_admitted_bytes(&self) -> u64 {
        self.state.lock().unwrap().peak_admitted_bytes
    }

    /// Stop admitting; wake every waiter so workers can drain out.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Worker side: block until the FIFO head fits under the cap, then
    /// admit it. `None` once the scheduler is closed and drained.
    fn take_next(&self) -> Option<(JobId, JobSpec, Option<FaultPlan>)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(&id) = st.queue.front() {
                let charge = st.jobs[id as usize].charge;
                let fits = match self.host_cap {
                    None => true,
                    Some(cap) => st.admitted_bytes + charge <= cap,
                };
                if fits {
                    st.queue.pop_front();
                    st.admitted_bytes += charge;
                    st.peak_admitted_bytes = st.peak_admitted_bytes.max(st.admitted_bytes);
                    let entry = &mut st.jobs[id as usize];
                    entry.state = JobState::Running;
                    entry.admitted = Some(Instant::now());
                    return Some((id, entry.spec.clone(), entry.plan.clone()));
                }
            } else if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Worker side: record a terminal outcome and release the charge.
    fn complete(&self, id: JobId, outcome: JobOutcome) {
        let mut st = self.state.lock().unwrap();
        let entry = &mut st.jobs[id as usize];
        let admitted = entry.admitted.expect("completing a job never admitted");
        entry.state = match outcome {
            JobOutcome::Completed { .. } => JobState::Completed,
            JobOutcome::Failed { .. } => JobState::Failed,
        };
        entry.result = Some(JobResult {
            id,
            name: entry.spec.name.clone(),
            outcome,
            queued_secs: (admitted - entry.submitted).as_secs_f64(),
            run_secs: admitted.elapsed().as_secs_f64(),
        });
        let charge = entry.charge;
        st.admitted_bytes -= charge;
        self.cv.notify_all();
    }

    /// Block until `id` reaches a terminal state; returns its result.
    /// Panics on an unknown id (a programming error, not a job failure).
    pub fn wait(&self, id: JobId) -> JobResult {
        let mut st = self.state.lock().unwrap();
        loop {
            assert!((id as usize) < st.jobs.len(), "unknown job id {id}");
            if let Some(result) = &st.jobs[id as usize].result {
                return result.clone();
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Group pool
// ---------------------------------------------------------------------

/// Pool geometry + backend: how many rank groups serve jobs, how many
/// ranks each group runs, and which message plane carries them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent rank groups (worker slots).
    pub groups: usize,
    /// Ranks per group; must be a perfect square (the pipeline runs on a
    /// √P×√P [`ProcGrid`]).
    pub group_ranks: usize,
    /// Message plane for every group.
    pub backend: Backend,
    /// Host-wide memory cap for admission control.
    pub host_cap: MemBudget,
    /// Intra-rank worker threads per rank (the pipeline `--threads` knob).
    pub threads: usize,
}

impl Default for ServeConfig {
    /// One single-rank in-process group, no cap, serial ranks.
    fn default() -> Self {
        ServeConfig {
            groups: 1,
            group_ranks: 1,
            backend: Backend::InProcess,
            host_cap: MemBudget::unlimited(),
            threads: 1,
        }
    }
}

/// The fixed pool of supervised worker groups. Each group is a thread
/// that pulls admitted jobs from the [`Scheduler`] and runs them through
/// a fresh [`Runner`] mesh; a job death ([`SpmdFailure`]) marks that job
/// failed and the group moves on — recycled, never wedged.
pub struct GroupPool {
    workers: Vec<std::thread::JoinHandle<()>>,
    recycled: Arc<std::sync::atomic::AtomicUsize>,
}

impl GroupPool {
    /// Spawn `cfg.groups` worker groups draining `scheduler`.
    pub fn start(cfg: &ServeConfig, scheduler: Arc<Scheduler>) -> GroupPool {
        assert!(cfg.groups > 0, "pool needs at least one group");
        let q = (cfg.group_ranks as f64).sqrt().round() as usize;
        assert!(
            cfg.group_ranks > 0 && q * q == cfg.group_ranks,
            "group_ranks must be a positive perfect square, got {}",
            cfg.group_ranks
        );
        let recycled = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let workers = (0..cfg.groups)
            .map(|g| {
                let scheduler = Arc::clone(&scheduler);
                let cfg = cfg.clone();
                let recycled = Arc::clone(&recycled);
                std::thread::Builder::new()
                    .name(format!("serve-group-{g}"))
                    .spawn(move || {
                        while let Some((id, spec, plan)) = scheduler.take_next() {
                            let outcome = run_job(&cfg, &spec, plan.as_ref());
                            if matches!(outcome, JobOutcome::Failed { .. }) {
                                recycled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            scheduler.complete(id, outcome);
                        }
                    })
                    .expect("failed to spawn serve group")
            })
            .collect();
        GroupPool { workers, recycled }
    }

    /// Groups recycled so far (= jobs that ended [`JobState::Failed`]).
    pub fn recycled(&self) -> usize {
        self.recycled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Wait for every group to drain out (the scheduler must be closed,
    /// or this blocks forever).
    fn join(self) {
        for handle in self.workers {
            // A worker panicking outside run_job's catch is a server bug;
            // surface it instead of silently dropping the group.
            handle.join().expect("serve group panicked");
        }
    }
}

/// Run one job on a fresh mesh. Every failure path — bad input, rank
/// death, even a panic escaping the harness — lands in
/// [`JobOutcome::Failed`]; nothing a job does takes the server down.
fn run_job(cfg: &ServeConfig, spec: &JobSpec, plan: Option<&FaultPlan>) -> JobOutcome {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_inner(cfg, spec, plan)
    }));
    match outcome {
        Ok(outcome) => outcome,
        Err(payload) => JobOutcome::Failed {
            error: format!(
                "group panicked outside the SPMD harness: {}",
                panic_message(&payload)
            ),
            killed_by_fault: false,
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job_inner(cfg: &ServeConfig, spec: &JobSpec, plan: Option<&FaultPlan>) -> JobOutcome {
    // Load input + pick pipeline parameters.
    let (reads, reference, mut pipeline_cfg) = match &spec.input {
        JobInput::FastaPath(path) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    return JobOutcome::Failed {
                        error: format!("cannot open reads '{path}': {e}"),
                        killed_by_fault: false,
                    }
                }
            };
            match read_fasta(std::io::BufReader::new(file)) {
                Ok(records) => {
                    let reads: Vec<Seq> = records.into_iter().map(|r| r.seq).collect();
                    (reads, None, PipelineConfig::default())
                }
                Err(e) => {
                    return JobOutcome::Failed {
                        error: format!("cannot parse reads '{path}': {e}"),
                        killed_by_fault: false,
                    }
                }
            }
        }
        JobInput::Sim { .. } => {
            let spec_ds = spec
                .dataset_spec()
                .expect("validated at submit")
                .expect("sim input has a dataset");
            let (genome, sim_reads) = spec_ds.generate();
            let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
            let cfg = PipelineConfig::for_dataset(&spec_ds);
            (reads, Some(genome), cfg)
        }
    };
    if spec.budget_bytes > 0 {
        // The claim is whole-job; each of the group's ranks gets an even
        // share as its pipeline budget.
        let per_rank = (spec.budget_bytes / cfg.group_ranks as u64).max(1);
        pipeline_cfg = pipeline_cfg.with_mem_budget(MemBudget::bytes(per_rank));
    }
    pipeline_cfg = pipeline_cfg.with_threads(cfg.threads.max(1));

    let mut runner = Runner::new(cfg.backend).ranks(cfg.group_ranks);
    if let Some(plan) = plan {
        runner = runner.faults(plan);
    }
    let n_reads = reads.len();
    let run = {
        let pipeline_cfg = pipeline_cfg.clone();
        runner.try_run_profiled(move |comm| {
            let grid = ProcGrid::new(comm);
            assemble_gathered(&grid, &reads, &pipeline_cfg)
        })
    };
    match run {
        Ok((mut outputs, profile)) => {
            let (contigs, _result) = outputs.remove(0);
            let report = reference.as_ref().map(|genome| {
                let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
                evaluate(genome, &seqs, &QualityConfig::default())
            });
            JobOutcome::Completed {
                contigs,
                report,
                profile,
                n_reads,
            }
        }
        Err(failure) => JobOutcome::Failed {
            error: spmd_failure_summary(&failure),
            killed_by_fault: matches!(failure.primary().cause, elba_comm::FailureCause::Killed(_)),
        },
    }
}

fn spmd_failure_summary(failure: &SpmdFailure) -> String {
    format!("{failure}")
}

// ---------------------------------------------------------------------
// Server facade
// ---------------------------------------------------------------------

/// The serving façade: a [`Scheduler`] plus a running [`GroupPool`].
///
/// ```
/// use elba_core::serve::{JobSpec, ServeConfig, Server};
///
/// let server = Server::start(ServeConfig::default());
/// let id = server.submit(JobSpec::sim("tiny", "celegans", 0.02, 7)).unwrap();
/// let result = server.wait(id);
/// assert!(result.completed());
/// let results = server.drain();
/// assert_eq!(results.len(), 1);
/// ```
pub struct Server {
    scheduler: Arc<Scheduler>,
    pool: GroupPool,
}

impl Server {
    /// Start the pool; the server accepts jobs until [`Server::drain`].
    pub fn start(cfg: ServeConfig) -> Server {
        let scheduler = Arc::new(Scheduler::new(cfg.host_cap));
        let pool = GroupPool::start(&cfg, Arc::clone(&scheduler));
        Server { scheduler, pool }
    }

    /// Submit a job; see [`Scheduler::submit`] for the admission rule.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.scheduler.submit(spec)
    }

    /// Block until `id` finishes; returns its result.
    pub fn wait(&self, id: JobId) -> JobResult {
        self.scheduler.wait(id)
    }

    /// A job's current state, if the id is known.
    pub fn state_of(&self, id: JobId) -> Option<JobState> {
        self.scheduler.state_of(id)
    }

    /// Highest aggregate of admitted budget charges observed. The
    /// admission invariant: this never exceeds [`Server::host_cap`].
    pub fn peak_admitted_bytes(&self) -> u64 {
        self.scheduler.peak_admitted_bytes()
    }

    /// The host cap in bytes, if one is set.
    pub fn host_cap(&self) -> Option<u64> {
        self.scheduler.host_cap()
    }

    /// Groups recycled after job deaths so far.
    pub fn groups_recycled(&self) -> usize {
        self.pool.recycled()
    }

    /// Stop admitting, run every queued job to completion, shut the pool
    /// down, and return every job's result in submission order.
    pub fn drain(self) -> Vec<JobResult> {
        self.scheduler.close();
        self.pool.join();
        let st = self.scheduler.state.lock().unwrap();
        st.jobs
            .iter()
            .map(|j| j.result.clone().expect("drained job has a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(spec: &JobSpec) -> JobSpec {
        let mut buf = Vec::new();
        spec.wire_encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let decoded = JobSpec::wire_decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        decoded
    }

    #[test]
    fn job_spec_wire_round_trips() {
        let sim = JobSpec::sim("probe", "celegans", 0.05, 42)
            .budget(64 << 20)
            .with_fault("kill:1@phase:Alignment");
        assert_eq!(round_trip(&sim), sim);

        let fasta = JobSpec {
            name: "real".to_string(),
            input: JobInput::FastaPath("/data/reads.fasta".to_string()),
            budget_bytes: 0,
            fault: None,
        };
        assert_eq!(round_trip(&fasta), fasta);
    }

    #[test]
    fn job_spec_wire_rejects_bad_tag() {
        let mut buf = Vec::new();
        JobSpec::sim("x", "celegans", 0.1, 1).wire_encode(&mut buf);
        // Corrupt the input-variant tag (right after the name field).
        let name_len = 8 + 1;
        buf[name_len] = 9;
        let mut r = WireReader::new(&buf);
        assert!(JobSpec::wire_decode(&mut r).is_err());
    }

    #[test]
    fn submit_validates_before_queueing() {
        let sched = Scheduler::new(MemBudget::unlimited());
        let bad_plan = JobSpec::sim("bad", "celegans", 0.1, 1).with_fault("explode:9");
        assert!(matches!(
            sched.submit(bad_plan),
            Err(SubmitError::InvalidFaultPlan(_))
        ));
        let bad_dataset = JobSpec::sim("bad", "klebsiella", 0.1, 1);
        assert!(matches!(
            sched.submit(bad_dataset),
            Err(SubmitError::UnknownDataset(_))
        ));
    }

    #[test]
    fn unbudgeted_jobs_charge_the_whole_cap() {
        let sched = Scheduler::new(MemBudget::bytes(100));
        let id = sched
            .submit(JobSpec::sim("greedy", "celegans", 0.02, 1))
            .unwrap();
        let st = sched.state.lock().unwrap();
        assert_eq!(st.jobs[id as usize].charge, 100);
    }
}
