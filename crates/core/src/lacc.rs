//! Distributed connected components over the (unbranched) string matrix —
//! line 3 of Algorithm 2.
//!
//! ELBA uses LACC, the linear-algebraic Awerbuch–Shiloach implementation
//! of Azad & Buluç. We implement the same hook-and-shortcut family in its
//! FastSV formulation (Zhang, Azad & Buluç 2020 — the same group's
//! successor to LACC, with identical inputs/outputs): every vertex holds
//! a parent label `f`, each round performs grandparent computation,
//! stochastic + aggressive hooking over the edge set, and pointer
//! shortcutting, until a global fixed point. Vertex labels converge to
//! the minimum vertex id of their component.
//!
//! The per-round edge sweep needs `f`-values for both endpoints of every
//! local nonzero — fetched with the paper's Fig. 2 exchange
//! ([`DistVec::fetch_aligned`]); hook updates are routed back to label
//! owners with the same alltoallv machinery. The matrix must be
//! structurally symmetric (ELBA's `S` and `L` always are).

use elba_comm::{CommMsg, ProcGrid};
use elba_sparse::{DistMat, DistVec};

/// Result of a connected-components run.
#[derive(Debug, Clone)]
pub struct ComponentLabels {
    /// Per-vertex component label (minimum vertex id in the component),
    /// distributed like any ELBA vector.
    pub labels: DistVec<u64>,
    /// Rounds until the global fixed point.
    pub rounds: usize,
}

/// Run connected components on a symmetric distributed matrix
/// (collective). Isolated vertices keep their own id as label.
pub fn connected_components<T: Clone + CommMsg + Sync>(
    grid: &ProcGrid,
    matrix: &DistMat<T>,
) -> ComponentLabels {
    assert_eq!(matrix.nrows(), matrix.ncols(), "CC needs a square matrix");
    let n = matrix.nrows();
    let mut f = DistVec::from_fn(grid, n, |g| g as u64);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Grandparents: gp[u] = f[f[u]].
        let parent_ids: Vec<usize> = f.local().iter().map(|&x| x as usize).collect();
        let grandparents = f.gather(grid, &parent_ids);
        let gp = DistVec::from_local(grid, n, grandparents);

        // Edge sweep: stochastic hooking f[f[v]] ← min gp[u] and
        // aggressive hooking f[v] ← min gp[u], over each directed edge
        // (u, v) (symmetry supplies the mirrored direction).
        let (gp_rows, _gp_cols) = gp.fetch_aligned(grid);
        let (f_rows, _) = f.fetch_aligned(grid);
        let (row0, col0) = matrix.local_offsets(grid);
        let mut updates: Vec<(usize, u64)> = Vec::new();
        for (u, v, _) in matrix.iter_global(grid) {
            let gp_u = gp_rows[u as usize - row0];
            let f_u = f_rows[u as usize - row0];
            let _ = col0;
            // stochastic hooking: hook v's parent tree under gp[u]
            updates.push((f_u as usize, gp_u)); // f[f[u]] ← gp[u] (self-shortcut aid)
            updates.push((v as usize, gp_u)); // aggressive hooking onto v
        }
        // Shortcut proposals: f[u] ← gp[u].
        let my_range = f.global_range(grid);
        for (offset, g) in my_range.clone().enumerate() {
            updates.push((g, gp.local()[offset]));
        }
        let before: Vec<u64> = f.local().to_vec();
        f.scatter_combine(grid, updates, |acc, v| {
            if v < *acc {
                *acc = v;
            }
        });
        let changed_local = f.local() != before.as_slice();
        let changed = grid.world().allreduce(changed_local as u64, |a, b| a + b);
        if changed == 0 {
            break;
        }
    }
    ComponentLabels { labels: f, rounds }
}

/// Serial union-find oracle used by tests and the quality tooling.
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // union by smaller id so labels match the distributed result
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }

    /// Min-id labels for all vertices.
    pub fn labels(&mut self) -> Vec<u64> {
        (0..self.parent.len())
            .map(|x| self.find(x) as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_cc(p: usize, n: usize, edges: Vec<(u64, u64)>) -> (Vec<u64>, usize) {
        let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let triples: Vec<(u64, u64, u8)> = if grid.world().rank() == 0 {
                edges
                    .iter()
                    .flat_map(|&(a, b)| [(a, b, 1u8), (b, a, 1u8)])
                    .collect()
            } else {
                Vec::new()
            };
            let m = DistMat::from_triples(&grid, n, n, triples, |_, _| {});
            let cc = connected_components(&grid, &m);
            (cc.labels.to_global(&grid), cc.rounds)
        });
        out.into_iter().next().expect("at least one rank")
    }

    fn oracle(n: usize, edges: &[(u64, u64)]) -> Vec<u64> {
        let mut uf = UnionFind::new(n);
        for &(a, b) in edges {
            uf.union(a as usize, b as usize);
        }
        uf.labels()
    }

    #[test]
    fn paper_example_three_chains() {
        // §4.2: after masking v3, chains {v1,v2}, {v4,v5,v6}, {v7,v8}
        // (0-indexed: {0,1}, {3,4,5}, {6,7}; vertex 2 isolated).
        let edges = vec![(0, 1), (3, 4), (4, 5), (6, 7)];
        let (labels, _) = run_cc(4, 8, edges.clone());
        assert_eq!(labels, oracle(8, &edges));
        assert_eq!(labels, vec![0, 0, 2, 3, 3, 3, 6, 6]);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for p in [1usize, 4, 9] {
            for _ in 0..3 {
                let n = rng.gen_range(10..60);
                let m = rng.gen_range(0..n * 2);
                let edges: Vec<(u64, u64)> = (0..m)
                    .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
                    .filter(|&(a, b)| a != b)
                    .collect();
                let (labels, _) = run_cc(p, n, edges.clone());
                assert_eq!(labels, oracle(n, &edges), "p={p} n={n} edges={edges:?}");
            }
        }
    }

    #[test]
    fn long_path_converges_logarithmically() {
        let n = 128;
        let edges: Vec<(u64, u64)> = (0..n as u64 - 1).map(|i| (i, i + 1)).collect();
        let (labels, rounds) = run_cc(4, n, edges);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(
            rounds <= 20,
            "pointer jumping should converge fast, took {rounds}"
        );
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let (labels, _) = run_cc(4, 5, vec![(1, 3)]);
        assert_eq!(labels, vec![0, 1, 2, 1, 4]);
    }

    #[test]
    fn single_rank_works() {
        let edges = vec![(0, 1), (1, 2), (5, 6)];
        let (labels, _) = run_cc(1, 8, edges.clone());
        assert_eq!(labels, oracle(8, &edges));
    }
}
