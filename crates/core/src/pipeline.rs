//! The end-to-end ELBA pipeline (Algorithm 1): k-mer counting, sparse
//! overlap detection, x-drop alignment, transitive reduction, and the
//! contig generation of Algorithm 2. Phases carry the paper's Fig. 5
//! names (`CountKmer`, `DetectOverlap`, `Alignment`, `TrReduction`,
//! `ExtractContig`) so a profiled run yields the breakdown figures
//! directly.

use elba_align::XdropKernel;
use elba_comm::ProcGrid;
use elba_graph::{
    align_and_classify, candidate_matrix, overlap_graph, symmetrize, transitive_reduction_with,
    AlignStats, OverlapConfig, ReductionStats, SeedChaining,
};
use elba_mem::MemBudget;
use elba_seq::{
    build_a_triples, count_kmers, AEntry, DatasetSpec, KmerConfig, KmerExchange, ReadStore, Seq,
};
use elba_sparse::{DistMat, SpGemmOptions};

use crate::assembly::Contig;
use crate::contig::{contig_generation, gather_contigs, ContigConfig, ContigStats};

/// Wire size of one routed A-matrix occurrence record
/// (`(kmer, read, pos, fwd)`), the unit `batch_kmers` is derived from.
const A_RECORD_BYTES: usize = std::mem::size_of::<(u64, u64, u32, bool)>();
/// Heuristic bytes per accumulated SpGEMM output row used to derive
/// `batch_rows` from a budget.
const SPGEMM_ROW_BYTES_HINT: usize = 1024;

/// Exchange-schedule knobs for the k-mer stage, the argument of
/// [`PipelineConfig::kmer_exchange`]. `Default` matches
/// [`KmerConfig::default`]: the streaming exchange with 64 Ki-occurrence
/// flush windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerExchangeConfig {
    /// Which personalized-exchange schedule moves k-mer occurrences.
    pub exchange: KmerExchange,
    /// Occurrences scanned between flushes in the streaming schedule.
    pub batch_kmers: usize,
}

impl Default for KmerExchangeConfig {
    fn default() -> Self {
        let kmer = KmerConfig::default();
        KmerExchangeConfig {
            exchange: kmer.exchange,
            batch_kmers: kmer.batch_kmers,
        }
    }
}

/// Seed-chaining knobs for the alignment stage, the argument of
/// [`PipelineConfig::seed_chaining`]. `Default` matches
/// [`OverlapConfig::default`]: chain mode with a 128-diagonal band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainingConfig {
    /// Seed-selection policy (the CLI's `--seed-chaining`).
    pub chaining: SeedChaining,
    /// Co-linearity band, used both to merge seeds into chains and as
    /// diagonal slack in the geometric early-reject.
    pub chain_band: usize,
}

impl Default for ChainingConfig {
    fn default() -> Self {
        let overlap = OverlapConfig::default();
        ChainingConfig {
            chaining: overlap.chaining,
            chain_band: overlap.chain_band,
        }
    }
}

/// All pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub kmer: KmerConfig,
    pub overlap: OverlapConfig,
    /// Overhang fuzz for transitive reduction.
    pub tr_fuzz: u32,
    pub tr_max_iters: usize,
    pub contig: ContigConfig,
    /// Per-rank memory budget; [`PipelineConfig::with_mem_budget`]
    /// derives the batching knobs from it. Unlimited by default.
    pub mem_budget: MemBudget,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            kmer: KmerConfig::default(),
            overlap: OverlapConfig::default(),
            tr_fuzz: 400,
            tr_max_iters: 10,
            contig: ContigConfig::default(),
            mem_budget: MemBudget::unlimited(),
        }
    }
}

impl PipelineConfig {
    /// Parameters for a simulated dataset: the paper's `k` and x-drop
    /// values, with alignment thresholds scaled to the dataset's read
    /// length and error rate.
    pub fn for_dataset(spec: &DatasetSpec) -> Self {
        let high_error = spec.reads.error_rate > 0.05;
        let mean_len = spec.reads.mean_len as f64;
        let min_overlap = (mean_len * 0.05) as usize;
        PipelineConfig {
            kmer: KmerConfig {
                k: spec.k,
                reliable_min: 2,
                // repeats at ~depth× multiplicity; allow a generous band
                reliable_max: (spec.reads.depth * 8.0) as u32,
                ..KmerConfig::default()
            },
            overlap: OverlapConfig {
                k: spec.k,
                xdrop: spec.xdrop,
                scoring: elba_align::Scoring::default(),
                min_shared_kmers: 1,
                min_overlap,
                min_score_ratio: if high_error { 0.25 } else { 0.7 },
                // x-drop stops earlier on noisy data → larger overhangs
                fuzz: if high_error {
                    (mean_len * 0.25) as usize
                } else {
                    (mean_len * 0.05) as usize
                },
                spgemm: SpGemmOptions::default(),
                threads: 0,
                ..OverlapConfig::default()
            },
            tr_fuzz: if high_error {
                (mean_len * 0.3) as u32
            } else {
                (mean_len * 0.1) as u32
            },
            tr_max_iters: 10,
            contig: ContigConfig::default(),
            mem_budget: MemBudget::unlimited(),
        }
    }

    /// Run every distributed SpGEMM in the pipeline under `opts`.
    /// `overlap.spgemm` is the single schedule knob: overlap detection
    /// reads it directly and [`assemble`] hands the same options to the
    /// transitive-reduction sweeps, so the two stages cannot drift.
    pub fn with_spgemm(mut self, opts: SpGemmOptions) -> Self {
        self.overlap.spgemm = opts;
        self
    }

    /// Run the k-mer stage's personalized exchanges (`count_kmers` and
    /// `build_a_triples`) under the given schedule — the CountKmer twin
    /// of [`PipelineConfig::with_spgemm`]. Schedule transparency is
    /// pinned: every [`KmerExchangeConfig`] produces byte-identical
    /// contigs; the knobs change *how* k-mers move, never *what* is
    /// assembled.
    pub fn kmer_exchange(mut self, cfg: KmerExchangeConfig) -> Self {
        self.kmer.exchange = cfg.exchange;
        self.kmer.batch_kmers = cfg.batch_kmers;
        self
    }

    /// Two-arg form of [`PipelineConfig::kmer_exchange`].
    #[deprecated(note = "use kmer_exchange(KmerExchangeConfig { exchange, batch_kmers })")]
    pub fn with_kmer_exchange(self, exchange: KmerExchange, batch_kmers: usize) -> Self {
        self.kmer_exchange(KmerExchangeConfig {
            exchange,
            batch_kmers,
        })
    }

    /// Run every intra-rank threaded kernel — the local multiply of each
    /// SUMMA stage (overlap detection *and* transitive reduction), the
    /// x-drop alignment batch, the k-mer scan, and the contig-stage
    /// sequence materialization — on `threads` workers per rank (`0`
    /// inherits the global [`elba_par::ElbaPar`] knob; 1 is the
    /// historical serial behavior, the CLI default). Assembled contigs
    /// — and profiled wire bytes — are identical for every value:
    /// threading changes wall time and resident scratch only.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.kmer.threads = threads;
        self.overlap.threads = threads;
        self.overlap.spgemm.threads = threads;
        self.contig.assembly.threads = threads;
        self
    }

    /// Run every x-drop extension through `kernel` (the CLI's
    /// `--xdrop-kernel`). Every kernel returns the exact scalar-oracle
    /// scores and extents, so assembled contigs are identical for every
    /// value — this is a pure speed knob.
    pub fn with_xdrop_kernel(mut self, kernel: XdropKernel) -> Self {
        self.overlap.kernel = kernel;
        self
    }

    /// Seed-selection policy for the alignment stage (the CLI's
    /// `--seed-chaining`). [`ChainingConfig::default`] is the chained
    /// default; `SeedChaining::All` reproduces the historical
    /// extend-every-seed sweep.
    pub fn seed_chaining(mut self, cfg: ChainingConfig) -> Self {
        self.overlap.chaining = cfg.chaining;
        self.overlap.chain_band = cfg.chain_band;
        self
    }

    /// Two-arg form of [`PipelineConfig::seed_chaining`].
    #[deprecated(note = "use seed_chaining(ChainingConfig { chaining, chain_band })")]
    pub fn with_seed_chaining(self, chaining: SeedChaining, chain_band: usize) -> Self {
        self.seed_chaining(ChainingConfig {
            chaining,
            chain_band,
        })
    }

    /// Cap this run's per-rank memory at `budget` and derive every
    /// batching knob from it, the single `--mem-budget` lever of the
    /// CLI:
    ///
    /// * the k-mer stage switches to the streaming exchange
    ///   (`batch_kmers` itself is derived inside [`assemble`], where the
    ///   grid size is known — the per-peer inbound ceiling depends on
    ///   `p`),
    /// * every distributed SpGEMM runs the column-batched schedule
    ///   ([`elba_sparse::SpGemmAlgorithm::ColumnBatched`]) under the
    ///   SpGEMM sub-budget, with `batch_rows` derived for the per-round
    ///   multiply.
    ///
    /// Derivations clamp to sane floors, so an absurdly small budget
    /// degrades to the tightest batching available rather than failing;
    /// a profiled run's `mem-hw` column shows what was actually reached.
    pub fn with_mem_budget(mut self, budget: MemBudget) -> Self {
        self.mem_budget = budget;
        if budget.is_limited() {
            self.kmer.exchange = KmerExchange::Streaming;
            // Preserve the thread knob: budgets pick the schedule, not
            // the intra-rank worker count.
            self.overlap.spgemm = SpGemmOptions::column_batched(
                budget.derive_batch_rows(SPGEMM_ROW_BYTES_HINT, self.overlap.spgemm.batch_rows),
                budget.spgemm_bytes(),
            )
            .with_threads(self.overlap.spgemm.threads);
        }
        self
    }
}

/// Everything a pipeline run reports.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Contigs assembled by *this rank*.
    pub local_contigs: Vec<Contig>,
    pub n_reads: usize,
    pub n_reliable_kmers: u64,
    pub candidate_nnz: u64,
    pub string_graph_nnz: u64,
    pub align_stats: AlignStats,
    pub reduction_stats: ReductionStats,
    pub contig_stats: ContigStats,
}

/// Run Algorithm 1 on a replicated read set (each rank passes the same
/// slice; the store keeps only the rank's block). Collective.
pub fn assemble(grid: &ProcGrid, reads: &[Seq], cfg: &PipelineConfig) -> PipelineResult {
    let world = grid.world();
    let n_reads = reads.len();
    let store = ReadStore::from_replicated(grid, reads);

    // The config-time batch derivation cannot see the grid size, but
    // the transport admits ~one batch in flight per peer: re-derive
    // `batch_kmers` here, where `p` is known, so the outgoing batch
    // plus the per-peer inbound ceiling fit the exchange sub-budget on
    // any grid — without this, the ceiling charge alone exceeds the
    // budget once p grows past a handful of ranks.
    let kmer_cfg = if cfg.mem_budget.is_limited() {
        let mut k = cfg.kmer.clone();
        k.batch_kmers = cfg.mem_budget.derive_batch_kmers_for(
            A_RECORD_BYTES,
            world.size().saturating_sub(1),
            k.batch_kmers,
        );
        k
    } else {
        cfg.kmer.clone()
    };

    // CountKmer: reliable k-mer table (Algorithm 1, line 3).
    let table = {
        let _g = world.phase("CountKmer");
        count_kmers(grid, &store, &kmer_cfg)
    };

    // DetectOverlap: A, Aᵀ, candidate matrix C = AAᵀ (lines 4–6).
    // Long-lived matrices are charged against the rank's memory tracker
    // while resident, so the per-phase `mem-hw` column reports real
    // residency, not just the SpGEMM schedules' internal transients.
    // Charges go through the shared (Arc-keyed) path — the SUMMA stage
    // in which a rank "receives" its own resident block must not count
    // it twice — and use deep heap sizes, so value types carrying nested
    // heap stop undercounting.
    let (c, _c_charge) = {
        let _g = world.phase("DetectOverlap");
        let triples = build_a_triples(grid, &store, &table, &kmer_cfg);
        let a = DistMat::from_triples(
            grid,
            n_reads,
            table.n_global as usize,
            triples,
            |acc: &mut AEntry, v| {
                if v.pos < acc.pos {
                    *acc = v;
                }
            },
        );
        let _a_charge = world.mem_charge_shared(a.local_arc(), a.deep_heap_bytes());
        let c = candidate_matrix(grid, &a, &cfg.overlap);
        let c_charge = world.mem_charge_shared(c.local_arc(), c.deep_heap_bytes());
        (c, c_charge)
    };
    let candidate_nnz = c.nnz_global(grid);

    // Alignment: x-drop + classification + pruning (lines 7–9).
    let (r, _r_charge, align_stats) = {
        let _g = world.phase("Alignment");
        let (triples, contained, align_stats) = align_and_classify(grid, &c, &store, &cfg.overlap);
        let r = overlap_graph(grid, n_reads, triples, &contained);
        let r_charge = world.mem_charge_shared(r.local_arc(), r.deep_heap_bytes());
        (r, r_charge, align_stats)
    };
    drop(c);
    drop(_c_charge);

    // TrReduction: R → S (line 10). R's pipeline-level charge is
    // released *before* the reduction: the first sweep consumes R (its
    // zip_prune takes the block out of the Arc), and a guard still
    // pinning the Arc would force a silent, untracked deep copy there.
    // R's bytes during the sweep are charged by the SUMMA schedule's
    // own shared stage guards instead (keyed on the same Arc).
    let (s, _s_charge, reduction_stats) = {
        let _g = world.phase("TrReduction");
        drop(_r_charge);
        let (s, stats) =
            transitive_reduction_with(grid, r, cfg.tr_fuzz, cfg.tr_max_iters, &cfg.overlap.spgemm);
        let s = symmetrize(grid, s);
        let s_charge = world.mem_charge_shared(s.local_arc(), s.deep_heap_bytes());
        (s, s_charge, stats)
    };
    let string_graph_nnz = s.nnz_global(grid);

    // ExtractContig: Algorithm 2 (line 11).
    let (local_contigs, contig_stats) = {
        let _g = world.phase("ExtractContig");
        contig_generation(grid, &s, &store, &cfg.contig)
    };

    PipelineResult {
        local_contigs,
        n_reads,
        n_reliable_kmers: table.n_global,
        candidate_nnz,
        string_graph_nnz,
        align_stats,
        reduction_stats,
        contig_stats,
    }
}

/// [`assemble`] + gather: returns the full contig set on every rank.
pub fn assemble_gathered(
    grid: &ProcGrid,
    reads: &[Seq],
    cfg: &PipelineConfig,
) -> (Vec<Contig>, PipelineResult) {
    let result = assemble(grid, reads, cfg);
    let contigs = gather_contigs(grid, &result.local_contigs);
    (contigs, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};
    use elba_seq::sim::{random_genome, simulate_reads, GenomeConfig, ReadSimConfig};

    fn small_cfg(k: usize) -> PipelineConfig {
        PipelineConfig {
            kmer: KmerConfig {
                k,
                reliable_min: 2,
                reliable_max: 60,
                ..KmerConfig::default()
            },
            overlap: OverlapConfig {
                k,
                xdrop: 15,
                scoring: elba_align::Scoring::default(),
                min_shared_kmers: 1,
                min_overlap: 100,
                min_score_ratio: 0.55,
                fuzz: 60,
                spgemm: SpGemmOptions::default(),
                threads: 1,
                ..OverlapConfig::default()
            },
            tr_fuzz: 150,
            tr_max_iters: 10,
            contig: ContigConfig::default(),
            mem_budget: MemBudget::unlimited(),
        }
    }

    #[test]
    fn error_free_dataset_assembles_most_of_genome() {
        for p in [1usize, 4] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let genome = random_genome(&GenomeConfig {
                    length: 8_000,
                    repeat_fraction: 0.0,
                    repeat_unit_len: 0,
                    repeat_divergence: 0.0,
                    seed: 61,
                });
                let reads: Vec<Seq> = simulate_reads(
                    &genome,
                    &ReadSimConfig {
                        depth: 12.0,
                        mean_len: 1_200,
                        min_len: 600,
                        error_rate: 0.0,
                        seed: 62,
                    },
                )
                .into_iter()
                .map(|r| r.seq)
                .collect();
                let (contigs, result) = assemble_gathered(&grid, &reads, &small_cfg(17));
                let longest = contigs.first().map_or(0, |c| c.seq.len());
                (
                    longest,
                    contigs.len(),
                    result.contig_stats.n_components,
                    genome.len(),
                )
            });
            let (longest, n_contigs, _components, genome_len) = out[0];
            assert!(n_contigs >= 1, "p={p}");
            assert!(
                longest as f64 >= 0.5 * genome_len as f64,
                "p={p}: longest contig {longest} vs genome {genome_len}"
            );
        }
    }

    #[test]
    fn results_identical_across_rank_counts() {
        let mut all: Vec<Vec<String>> = Vec::new();
        for p in [1usize, 4] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let genome = random_genome(&GenomeConfig {
                    length: 5_000,
                    repeat_fraction: 0.0,
                    repeat_unit_len: 0,
                    repeat_divergence: 0.0,
                    seed: 71,
                });
                let reads: Vec<Seq> = simulate_reads(
                    &genome,
                    &ReadSimConfig {
                        depth: 10.0,
                        mean_len: 1_000,
                        min_len: 500,
                        error_rate: 0.0,
                        seed: 72,
                    },
                )
                .into_iter()
                .map(|r| r.seq)
                .collect();
                let (contigs, _) = assemble_gathered(&grid, &reads, &small_cfg(17));
                contigs
                    .iter()
                    .map(|c| {
                        let f = c.seq.to_string();
                        let r = c.seq.reverse_complement().to_string();
                        if f <= r {
                            f
                        } else {
                            r
                        }
                    })
                    .collect::<Vec<_>>()
            });
            all.push(out.into_iter().next().expect("rank 0"));
        }
        assert_eq!(all[0], all[1], "contig sets must not depend on P");
    }

    #[test]
    fn kmer_exchange_schedules_agree_end_to_end() {
        // Eager vs streaming (with a deliberately tiny batch, forcing
        // many chunked flushes) must assemble identical contig sets.
        let mut per_schedule: Vec<Vec<String>> = Vec::new();
        for exchange in [KmerExchange::Eager, KmerExchange::Streaming] {
            let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let genome = random_genome(&GenomeConfig {
                    length: 5_000,
                    repeat_fraction: 0.0,
                    repeat_unit_len: 0,
                    repeat_divergence: 0.0,
                    seed: 91,
                });
                let reads: Vec<Seq> = simulate_reads(
                    &genome,
                    &ReadSimConfig {
                        depth: 10.0,
                        mean_len: 1_000,
                        min_len: 500,
                        error_rate: 0.0,
                        seed: 92,
                    },
                )
                .into_iter()
                .map(|r| r.seq)
                .collect();
                let cfg = small_cfg(17).kmer_exchange(KmerExchangeConfig {
                    exchange,
                    batch_kmers: 97,
                });
                let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
                contigs
                    .iter()
                    .map(|c| {
                        let f = c.seq.to_string();
                        let r = c.seq.reverse_complement().to_string();
                        if f <= r {
                            f
                        } else {
                            r
                        }
                    })
                    .collect::<Vec<_>>()
            });
            per_schedule.push(out.into_iter().next().expect("rank 0"));
        }
        assert_eq!(
            per_schedule[0], per_schedule[1],
            "contigs must not depend on the k-mer exchange schedule"
        );
    }

    #[test]
    fn spgemm_schedules_agree_end_to_end() {
        // The layered and auto-picked SUMMA schedules must assemble the
        // same contig set as the pipelined default through the whole
        // pipeline (overlap detection *and* transitive reduction), with
        // the thread knob varied to cover the threaded materialization.
        let mut per_schedule: Vec<Vec<String>> = Vec::new();
        let cases = [
            (SpGemmOptions::pipelined(), 1usize),
            (SpGemmOptions::layered(2), 1),
            (SpGemmOptions::layered(3), 4),
            (SpGemmOptions::auto(), 4),
        ];
        for (opts, threads) in cases {
            let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let genome = random_genome(&GenomeConfig {
                    length: 5_000,
                    repeat_fraction: 0.0,
                    repeat_unit_len: 0,
                    repeat_divergence: 0.0,
                    seed: 91,
                });
                let reads: Vec<Seq> = simulate_reads(
                    &genome,
                    &ReadSimConfig {
                        depth: 10.0,
                        mean_len: 1_000,
                        min_len: 500,
                        error_rate: 0.0,
                        seed: 92,
                    },
                )
                .into_iter()
                .map(|r| r.seq)
                .collect();
                let cfg = small_cfg(17).with_spgemm(opts).with_threads(threads);
                let (contigs, _) = assemble_gathered(&grid, &reads, &cfg);
                contigs
                    .iter()
                    .map(|c| c.seq.to_string())
                    .collect::<Vec<_>>()
            });
            per_schedule.push(out.into_iter().next().expect("rank 0"));
        }
        for later in &per_schedule[1..] {
            assert_eq!(
                &per_schedule[0], later,
                "contigs must not depend on the SpGEMM schedule or thread count"
            );
        }
    }

    #[test]
    fn noisy_reads_still_produce_contigs() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let genome = random_genome(&GenomeConfig {
                length: 6_000,
                repeat_fraction: 0.0,
                repeat_unit_len: 0,
                repeat_divergence: 0.0,
                seed: 81,
            });
            let reads: Vec<Seq> = simulate_reads(
                &genome,
                &ReadSimConfig {
                    depth: 15.0,
                    mean_len: 1_200,
                    min_len: 600,
                    error_rate: 0.005,
                    seed: 82,
                },
            )
            .into_iter()
            .map(|r| r.seq)
            .collect();
            let (contigs, result) = assemble_gathered(&grid, &reads, &small_cfg(17));
            let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
            (contigs.len(), total, result.align_stats.dovetails)
        });
        let (n, total_bases, dovetails) = out[0];
        assert!(n >= 1);
        assert!(dovetails > 0);
        assert!(total_bases >= 3_000, "assembled {total_bases} bases");
    }
}
