//! Contig scaffolding — the paper's §7 future work: "One possibility is
//! to once again use the sparse matrix abstraction to find similarities
//! within the contig set and obtain even longer sequences."
//!
//! This module implements exactly that loop: treat the contig set as a
//! new read set, rerun reliable-k-mer overlap detection and x-drop
//! alignment *on the contigs*, keep dovetail joins, and walk the
//! resulting (branch-masked) contig-of-contigs graph with the same
//! `pre`/`post` machinery as local assembly. Because the contig set is
//! orders of magnitude smaller than the read set, one serial pass per
//! rank-0 suffices (mirroring the paper's single-rank LPT argument); the
//! distributed entry point gathers contigs, scaffolds once, and
//! broadcasts the result.

use std::collections::HashMap;

use elba_align::{
    classify, extend_seed_with, OverlapAln, OverlapClass, Scoring, SgEdge, XdropWorkspace,
};
use elba_comm::ProcGrid;
use elba_seq::kmer::canonical_kmers;
use elba_seq::{ReadStore, Seq};
use elba_sparse::Dcsc;

use crate::assembly::{local_assembly, AssemblyConfig, Contig};
use crate::induced::LocalGraph;

/// Scaffolding parameters.
#[derive(Debug, Clone)]
pub struct ScaffoldConfig {
    /// Seed k-mer length for contig-vs-contig overlap detection.
    pub k: usize,
    pub xdrop: i32,
    pub scoring: Scoring,
    /// Minimum end-overlap between two contigs to join them.
    pub min_overlap: usize,
    /// Score/span acceptance ratio (as in the pipeline).
    pub min_score_ratio: f64,
    /// Classification fuzz.
    pub fuzz: usize,
}

impl Default for ScaffoldConfig {
    fn default() -> Self {
        ScaffoldConfig {
            k: 31,
            xdrop: 20,
            scoring: Scoring::default(),
            min_overlap: 150,
            min_score_ratio: 0.6,
            fuzz: 100,
        }
    }
}

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaffoldStats {
    pub input_contigs: usize,
    pub joins: usize,
    pub output_scaffolds: usize,
    pub contained_dropped: usize,
}

/// Serial scaffolding pass over a contig set.
pub fn scaffold_contigs(contigs: &[Seq], cfg: &ScaffoldConfig) -> (Vec<Seq>, ScaffoldStats) {
    let n = contigs.len();
    let mut stats = ScaffoldStats {
        input_contigs: n,
        ..Default::default()
    };
    if n == 0 {
        return (Vec::new(), stats);
    }
    // Seed index over contig ends — k-mers occurring in exactly two
    // contigs are join candidates (a contig-end k-mer shared by three is
    // a repeat and would create a branch anyway).
    let mut index: HashMap<u64, Vec<(u32, u32, bool)>> = HashMap::new();
    for (cid, contig) in contigs.iter().enumerate() {
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for hit in canonical_kmers(contig, cfg.k) {
            if seen.insert(hit.kmer, ()).is_none() {
                index
                    .entry(hit.kmer)
                    .or_default()
                    .push((cid as u32, hit.pos, hit.fwd));
            }
        }
    }
    let mut pair_seed: HashMap<(u32, u32), (u32, u32, bool)> = HashMap::new();
    for occurrences in index.into_values() {
        if occurrences.len() != 2 {
            continue;
        }
        let (a, b) = (occurrences[0], occurrences[1]);
        if a.0 == b.0 {
            continue;
        }
        let (u, v) = if a.0 < b.0 { (a, b) } else { (b, a) };
        pair_seed
            .entry((u.0, v.0))
            .or_insert((u.1, v.1, u.2 == v.2));
    }

    // Align candidate pairs, keep dovetail joins.
    let mut contained = vec![false; n];
    let mut edges: Vec<(u32, u32, SgEdge)> = Vec::new();
    // (contig u, contig v) -> (seed position in u, in v, same strand)
    type PairSeed = ((u32, u32), (u32, u32, bool));
    let mut pairs: Vec<PairSeed> = pair_seed.into_iter().collect();
    pairs.sort_unstable_by_key(|&(key, _)| key);
    let mut ws = XdropWorkspace::default();
    for ((u, v), (pos_u, pos_v, same_strand)) in pairs {
        let cu = &contigs[u as usize];
        let cv = &contigs[v as usize];
        let aln = if same_strand {
            if pos_u as usize + cfg.k > cu.len() || pos_v as usize + cfg.k > cv.len() {
                continue;
            }
            let aln = extend_seed_with(
                &mut ws,
                cu.codes(),
                cv.codes(),
                pos_u as usize,
                pos_v as usize,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, false, cu.len(), cv.len())
        } else {
            let w = cv.reverse_complement();
            let w_pos = cv.len() - pos_v as usize - cfg.k;
            if pos_u as usize + cfg.k > cu.len() || w_pos + cfg.k > w.len() {
                continue;
            }
            let aln = extend_seed_with(
                &mut ws,
                cu.codes(),
                w.codes(),
                pos_u as usize,
                w_pos,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, true, cu.len(), cv.len())
        };
        match classify(&aln, cfg.fuzz) {
            OverlapClass::ContainedU => contained[u as usize] = true,
            OverlapClass::ContainedV => contained[v as usize] = true,
            OverlapClass::Internal => {}
            OverlapClass::Dovetail { fwd, bwd } => {
                let score_ok = aln.score as f64 >= cfg.min_score_ratio * aln.span() as f64;
                if aln.span() >= cfg.min_overlap && score_ok {
                    edges.push((u, v, fwd));
                    edges.push((v, u, bwd));
                }
            }
        }
    }
    stats.contained_dropped = contained.iter().filter(|&&c| c).count();
    edges.retain(|&(u, v, _)| !contained[u as usize] && !contained[v as usize]);

    // Branch masking on the contig graph, then the standard linear walk.
    let mut degree = vec![0usize; n];
    for &(u, _, _) in &edges {
        degree[u as usize] += 1;
    }
    edges.retain(|&(u, v, _)| degree[u as usize] <= 2 && degree[v as usize] <= 2);
    stats.joins = edges.len() / 2;

    let mut store = ReadStore::empty(n);
    for (cid, contig) in contigs.iter().enumerate() {
        store.push(cid as u64, contig.codes());
    }
    let joined_ids: std::collections::HashSet<u32> = edges.iter().map(|&(u, _, _)| u).collect();
    let dcsc = Dcsc::from_triples(n, n, edges, |_, _| {});
    let graph = LocalGraph {
        global_ids: (0..n as u64).collect(),
        csc: dcsc.to_csc(),
    };
    let (walked, _) = local_assembly(
        &graph,
        &store,
        &AssemblyConfig {
            emit_cycles: true,
            ..AssemblyConfig::default()
        },
    );

    // Scaffolds = walked chains + untouched (unjoined, uncontained) contigs.
    let mut out: Vec<Seq> = walked.into_iter().map(|c| c.seq).collect();
    for cid in 0..n {
        if !joined_ids.contains(&(cid as u32)) && !contained[cid] {
            out.push(contigs[cid].clone());
        }
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.codes().cmp(b.codes())));
    stats.output_scaffolds = out.len();
    (out, stats)
}

/// Distributed entry point: gather the contig set, scaffold on rank 0,
/// broadcast the scaffolds (collective). The contig set is small (§4.3's
/// n ≪ reads argument), so this mirrors the paper's single-rank LPT.
pub fn scaffold_distributed(
    grid: &ProcGrid,
    local_contigs: &[Contig],
    cfg: &ScaffoldConfig,
) -> (Vec<Seq>, ScaffoldStats) {
    let packed: Vec<Vec<u8>> = local_contigs
        .iter()
        .map(|c| c.seq.codes().to_vec())
        .collect();
    let gathered = grid.world().gather(0, packed);
    let result = gathered.map(|all| {
        let contigs: Vec<Seq> = all.into_iter().flatten().map(Seq::from_codes).collect();
        let (scaffolds, stats) = scaffold_contigs(&contigs, cfg);
        let packed: Vec<Vec<u8>> = scaffolds.iter().map(|s| s.codes().to_vec()).collect();
        (
            packed,
            vec![
                stats.input_contigs as u64,
                stats.joins as u64,
                stats.output_scaffolds as u64,
                stats.contained_dropped as u64,
            ],
        )
    });
    let (packed, stats_vec) = match result {
        Some((p, s)) => (Some(p), Some(s)),
        None => (None, None),
    };
    let packed = grid.world().bcast(0, packed);
    let stats_vec = grid.world().bcast(0, stats_vec);
    let scaffolds = packed.into_iter().map(Seq::from_codes).collect();
    let stats = ScaffoldStats {
        input_contigs: stats_vec[0] as usize,
        joins: stats_vec[1] as usize,
        output_scaffolds: stats_vec[2] as usize,
        contained_dropped: stats_vec[3] as usize,
    };
    (scaffolds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    fn cfg() -> ScaffoldConfig {
        ScaffoldConfig {
            k: 15,
            min_overlap: 50,
            ..Default::default()
        }
    }

    #[test]
    fn two_overlapping_contigs_merge() {
        let g = genome(2_000, 1);
        let contigs = vec![g.substring(0, 1_100), g.substring(1_000, 2_000)];
        let (scaffolds, stats) = scaffold_contigs(&contigs, &cfg());
        assert_eq!(stats.joins, 1);
        assert_eq!(scaffolds.len(), 1);
        assert!(
            scaffolds[0] == g || scaffolds[0] == g.reverse_complement(),
            "scaffold len {} vs genome {}",
            scaffolds[0].len(),
            g.len()
        );
    }

    #[test]
    fn reverse_complement_contig_still_joins() {
        let g = genome(2_000, 2);
        let contigs = vec![
            g.substring(0, 1_100),
            g.substring(1_000, 2_000).reverse_complement(),
        ];
        let (scaffolds, stats) = scaffold_contigs(&contigs, &cfg());
        assert_eq!(stats.joins, 1);
        assert_eq!(scaffolds.len(), 1);
        assert!(scaffolds[0] == g || scaffolds[0] == g.reverse_complement());
    }

    #[test]
    fn chain_of_three_contigs() {
        let g = genome(3_000, 3);
        let contigs = vec![
            g.substring(0, 1_200),
            g.substring(1_100, 2_200),
            g.substring(2_100, 3_000),
        ];
        let (scaffolds, stats) = scaffold_contigs(&contigs, &cfg());
        assert_eq!(stats.joins, 2);
        assert_eq!(scaffolds.len(), 1);
        assert_eq!(scaffolds[0].len(), 3_000);
    }

    #[test]
    fn disjoint_contigs_pass_through() {
        let a = genome(1_000, 4);
        let b = genome(1_000, 5);
        let (scaffolds, stats) = scaffold_contigs(&[a.clone(), b.clone()], &cfg());
        assert_eq!(stats.joins, 0);
        assert_eq!(scaffolds.len(), 2);
        assert!(scaffolds.contains(&a) && scaffolds.contains(&b));
    }

    #[test]
    fn contained_contig_is_absorbed() {
        let g = genome(2_000, 6);
        let contigs = vec![g.clone(), g.substring(500, 1_200)];
        let (scaffolds, stats) = scaffold_contigs(&contigs, &cfg());
        assert_eq!(stats.contained_dropped, 1);
        assert_eq!(scaffolds.len(), 1);
        assert_eq!(scaffolds[0], g);
    }

    #[test]
    fn branching_join_is_masked() {
        // contig 0 overlaps both 1 and 2 at the same end region → degree 3
        // on 0 after symmetric edges; branch masking must avoid a chimeric
        // join (0 keeps at most a linear chain).
        let g = genome(3_000, 7);
        let shared = g.substring(900, 1_200);
        let mut c1 = g.substring(0, 1_200); // ends with `shared`
        let mut c2 = shared.clone();
        c2.extend_from(&genome(800, 8)); // divergent continuation A
        let mut c3 = shared.clone();
        c3.extend_from(&genome(800, 9)); // divergent continuation B
        let _ = &mut c1;
        let (scaffolds, _stats) = scaffold_contigs(&[c1, c2, c3], &cfg());
        // no scaffold may be longer than a single valid join
        assert!(scaffolds.len() >= 2, "branch must prevent a 3-way merge");
    }

    #[test]
    fn empty_input() {
        let (scaffolds, stats) = scaffold_contigs(&[], &cfg());
        assert!(scaffolds.is_empty());
        assert_eq!(stats.output_scaffolds, 0);
    }

    #[test]
    fn distributed_matches_serial() {
        let g = genome(2_400, 10);
        let pieces = [
            g.substring(0, 900),
            g.substring(800, 1_700),
            g.substring(1_600, 2_400),
        ];
        let (serial, serial_stats) = scaffold_contigs(&pieces, &cfg());
        let pieces_in = pieces.to_vec();
        let (dist, dist_stats) = Runner::new(Backend::InProcess)
            .ranks(4)
            .run(move |comm| {
                let grid = ProcGrid::new(comm);
                // distribute pieces: rank r holds piece r (if any)
                let local: Vec<Contig> = pieces_in
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i % 4 == grid.world().rank())
                    .map(|(i, seq)| Contig {
                        seq: seq.clone(),
                        read_ids: vec![i as u64],
                        circular: false,
                    })
                    .collect();
                scaffold_distributed(&grid, &local, &cfg())
            })
            .remove(0);
        assert_eq!(dist_stats, serial_stats);
        assert_eq!(dist, serial);
    }
}
