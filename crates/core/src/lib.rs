//! # elba-core — distributed contig generation (the ELBA contribution)
//!
//! Implementation of Algorithms 1 and 2 of *Distributed-Memory Parallel
//! Contig Generation for De Novo Long-Read Genome Assembly* (ICPP 2022):
//!
//! * [`mod@partition`] — LPT multiway number partitioning for contig load
//!   balancing (plus the ablation baselines),
//! * [`lacc`] — distributed connected components (Awerbuch–Shiloach
//!   family, FastSV formulation) over the unbranched string matrix,
//! * [`induced`] — the induced subgraph function with the Fig. 2
//!   row-allgather + transposed-p2p exchange and the custom all-to-all
//!   edge routing,
//! * [`assembly`] — per-rank linear-walk local assembly with the paper's
//!   `pre`/`post` concatenation over packed read buffers,
//! * [`contig`] — Algorithm 2 end-to-end (`ContigGeneration`),
//! * [`pipeline`] — Algorithm 1 end-to-end (`ELBA`), with the paper's
//!   phase names for profiling.

pub mod assembly;
pub mod contig;
pub mod induced;
pub mod lacc;
pub mod partition;
pub mod pipeline;
pub mod scaffold;
pub mod serve;

pub use assembly::{local_assembly, AssemblyConfig, AssemblyStats, Contig};
pub use contig::{contig_generation, gather_contigs, ContigConfig, ContigStats};
pub use induced::{induced_subgraph, LocalGraph};
pub use lacc::{connected_components, ComponentLabels, UnionFind};
pub use partition::{partition, PartitionStrategy, Partitioning};
pub use pipeline::{
    assemble, assemble_gathered, ChainingConfig, KmerExchangeConfig, PipelineConfig, PipelineResult,
};
pub use scaffold::{scaffold_contigs, scaffold_distributed, ScaffoldConfig, ScaffoldStats};
pub use serve::{
    JobId, JobInput, JobOutcome, JobResult, JobSpec, JobState, Scheduler, ServeConfig, Server,
    SubmitError,
};
