//! The induced subgraph function (§4.3) — line 5 of Algorithm 2.
//!
//! Given the unbranched string matrix `L`, the component labels `v`, and
//! the contig→processor assignment, every rank must end up with the local
//! adjacency matrix `L(Pᵢ)` of exactly the contigs assigned to it.
//!
//! The communication follows the paper's Fig. 2: each rank learns `v[u]`
//! and `v[w]` for every local nonzero `(u, w)` through an allgather over
//! the grid-row communicator plus a point-to-point exchange with the
//! transposed rank ([`DistVec::fetch_aligned`]); each edge triple
//! `(u, w, S(u,w))` is then routed to its owner with a custom all-to-all.
//! The local block is re-indexed to its new, smaller size while keeping
//! "a map of the original global vertex indices" (`global_ids`), and —
//! per §4.4 — handed to local assembly in CSC form (built through the
//! DCSC→CSC expansion the paper describes).

use std::collections::HashMap;

use elba_align::SgEdge;
use elba_comm::ProcGrid;
use elba_sparse::{Csc, Dcsc, DistMat, DistVec};

/// A rank-local induced subgraph: one or more whole linear components.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// Sorted original global vertex ids; position = local index.
    pub global_ids: Vec<u64>,
    /// Symmetric local adjacency in the paper's CSC form (`JC`/`IR`/`VAL`).
    pub csc: Csc<SgEdge>,
}

impl LocalGraph {
    pub fn n_vertices(&self) -> usize {
        self.global_ids.len()
    }

    pub fn n_edges(&self) -> usize {
        self.csc.nnz()
    }

    /// Local index of a global vertex id.
    pub fn local_of(&self, global: u64) -> Option<usize> {
        self.global_ids.binary_search(&global).ok()
    }
}

/// Build each rank's induced subgraph (collective).
///
/// `owner_of_label` maps a component label to the rank that will assemble
/// it (components absent from the map — e.g. singletons — are dropped).
pub fn induced_subgraph(
    grid: &ProcGrid,
    l: &DistMat<SgEdge>,
    labels: &DistVec<u64>,
    owner_of_label: &HashMap<u64, usize>,
) -> LocalGraph {
    let p = grid.world().size();
    // Fig. 2 exchange: v restricted to the local block's row/col ranges.
    let (row_labels, col_labels) = labels.fetch_aligned(grid);
    let (row0, col0) = l.local_offsets(grid);
    let mut outgoing: Vec<Vec<(u64, u64, SgEdge)>> = vec![Vec::new(); p];
    for (u, w, edge) in l.iter_global(grid) {
        let label_u = row_labels[u as usize - row0];
        let label_w = col_labels[w as usize - col0];
        debug_assert_eq!(
            label_u, label_w,
            "edge ({u},{w}) spans two components — CC must have failed"
        );
        if let Some(&dest) = owner_of_label.get(&label_u) {
            outgoing[dest].push((u, w, *edge));
        }
    }
    let incoming = grid.world().alltoallv(outgoing);

    // Re-index to the new, smaller size, keeping the global-id map.
    let mut edges: Vec<(u64, u64, SgEdge)> = incoming.into_iter().flatten().collect();
    let mut global_ids: Vec<u64> = edges.iter().flat_map(|&(u, w, _)| [u, w]).collect();
    global_ids.sort_unstable();
    global_ids.dedup();
    let local_of: HashMap<u64, u32> = global_ids
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i as u32))
        .collect();
    let n = global_ids.len();
    let triples: Vec<(u32, u32, SgEdge)> = edges
        .drain(..)
        .map(|(u, w, e)| (local_of[&u], local_of[&w], e))
        .collect();
    // DCSC is the storage format of the earlier pipeline stages; convert
    // to CSC for the traversal (§4.4's linear-time uncompression).
    let dcsc = Dcsc::from_triples(n, n, triples, |_, duplicate| {
        // The same directed edge can only arrive once (it had one owner
        // block); tolerate exact duplicates defensively.
        let _ = duplicate;
    });
    LocalGraph {
        global_ids,
        csc: dcsc.to_csc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};

    fn edge(suffix: u32) -> SgEdge {
        SgEdge {
            pre: 0,
            post: 0,
            src_rev: false,
            dst_rev: false,
            suffix,
        }
    }

    /// Two chains 0-1-2 and 3-4; labels = min id; chain 0 → rank 0,
    /// chain 3 → last rank.
    fn setup(grid: &ProcGrid) -> (DistMat<SgEdge>, DistVec<u64>, HashMap<u64, usize>) {
        let chain_edges: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (3, 4)];
        let triples: Vec<(u64, u64, SgEdge)> = if grid.world().rank() == 0 {
            chain_edges
                .iter()
                .flat_map(|&(a, b)| [(a, b, edge(1)), (b, a, edge(2))])
                .collect()
        } else {
            Vec::new()
        };
        let l = DistMat::from_triples(grid, 5, 5, triples, |_, _| unreachable!());
        let label_data: Vec<u64> = vec![0, 0, 0, 3, 3];
        let labels = DistVec::from_global(grid, &label_data);
        let mut owners = HashMap::new();
        owners.insert(0u64, 0usize);
        owners.insert(3u64, grid.world().size() - 1);
        (l, labels, owners)
    }

    #[test]
    fn components_land_whole_on_their_owner() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let (l, labels, owners) = setup(&grid);
                let local = induced_subgraph(&grid, &l, &labels, &owners);
                (
                    grid.world().rank(),
                    local.global_ids.clone(),
                    local.n_edges(),
                )
            });
            let last = p - 1;
            for (rank, ids, nedges) in &out {
                if p == 1 {
                    assert_eq!(ids, &vec![0, 1, 2, 3, 4]);
                    assert_eq!(*nedges, 6);
                } else if *rank == 0 {
                    assert_eq!(ids, &vec![0, 1, 2], "p={p}");
                    assert_eq!(*nedges, 4);
                } else if *rank == last {
                    assert_eq!(ids, &vec![3, 4], "p={p}");
                    assert_eq!(*nedges, 2);
                } else {
                    assert!(ids.is_empty(), "p={p} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn local_reindexing_preserves_edge_payloads() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let (l, labels, owners) = setup(&grid);
            let local = induced_subgraph(&grid, &l, &labels, &owners);
            if grid.world().rank() == 0 {
                // vertex 1 is local index 1; its column must hold edges
                // from 0 and 2 with the payloads we created.
                let i0 = local.local_of(0).expect("vertex 0 present");
                let i1 = local.local_of(1).expect("vertex 1 present");
                let e01 = local.csc.get(i0, i1).expect("edge 0->1 stored");
                Some((local.csc.degree(i1), e01.suffix))
            } else {
                None
            }
        });
        assert_eq!(out[0], Some((2, 1)));
    }

    #[test]
    fn unassigned_components_are_dropped() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let (l, labels, mut owners) = setup(&grid);
            owners.remove(&3); // second chain unassigned
            let local = induced_subgraph(&grid, &l, &labels, &owners);
            (grid.world().rank(), local.global_ids.clone())
        });
        for (rank, ids) in &out {
            if *rank == 0 {
                assert_eq!(ids, &vec![0, 1, 2]);
            } else {
                assert!(ids.is_empty());
            }
        }
    }

    #[test]
    fn degrees_match_paper_walk_precondition() {
        // After induction, every component must have exactly two degree-1
        // vertices (the roots) — the local-assembly invariant.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let (l, labels, owners) = setup(&grid);
            let local = induced_subgraph(&grid, &l, &labels, &owners);
            let roots = (0..local.n_vertices())
                .filter(|&j| local.csc.degree(j) == 1)
                .count();
            (grid.world().rank(), local.n_vertices(), roots)
        });
        assert_eq!(out[0].2, 2); // chain of 3: two roots
        assert_eq!(out[3].2, 2); // chain of 2: both are roots
    }
}
