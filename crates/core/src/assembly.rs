//! Local contig assembly (§4.4) — line 6 of Algorithm 2.
//!
//! Each rank walks its induced subgraph, which by construction has
//! maximum degree 2: "there is always only one vertex in the frontier,
//! and the search is thus a linear walk". The walk scans all vertices for
//! unvisited roots (`JC[c+1] − JC[c] == 1`), follows intermediate
//! vertices to the opposite root, and stitches the contig as
//!
//! ```text
//! l_r[α : pre(e₀)] ⊕ l_c₁[post(e₀) : pre(e₁)] ⊕ … ⊕ l_r'[post(e_q−2) : β]
//! ```
//!
//! with `α ∈ {0, |l_r|−1}` and `β` chosen by traversal orientation, and
//! slices taken directly from the packed read buffer via stored offsets.
//! Reverse-complement strand flips are handled by the inclusive
//! `l[j:i]` slicing convention (see `elba_seq::dna`).
//!
//! The stage runs in two passes: a serial *trace* walks the graph and
//! records each contig as a list of oriented slice requests (the walk
//! itself is a pointer chase over shared `visited` state — inherently
//! sequential but cheap), then the slice concatenation — the actual
//! byte copying, which dominates on long contigs — is materialized on
//! [`elba_par`] workers. Results come back in task order (= trace
//! order), so assembled contigs are byte-identical for every thread
//! count.

use elba_align::SgEdge;
use elba_seq::{ReadStore, Seq};

use crate::induced::LocalGraph;

/// One assembled contig.
#[derive(Debug, Clone)]
pub struct Contig {
    pub seq: Seq,
    /// Global ids of the reads concatenated into this contig, walk order.
    pub read_ids: Vec<u64>,
    /// The component was a cycle broken at an arbitrary vertex.
    pub circular: bool,
}

/// Local assembly options.
#[derive(Debug, Clone)]
pub struct AssemblyConfig {
    /// Also emit circular components (broken at an arbitrary vertex).
    /// The paper's contig definition covers only linear chains; cycles
    /// are rare repeat artifacts on linear genomes.
    pub emit_cycles: bool,
    /// Worker threads for the contig materialization pass (`0` inherits
    /// the global [`elba_par::ElbaPar`] knob). Contigs are byte-identical
    /// for every value; this changes wall time only.
    pub threads: usize,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        AssemblyConfig {
            emit_cycles: true,
            threads: 0,
        }
    }
}

/// Counters for diagnostics and the contig-stage statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssemblyStats {
    pub contigs: usize,
    pub cycles: usize,
    pub reads_used: usize,
    pub orientation_breaks: usize,
}

/// Oriented slice of a stored read: forward when `reversed` is false,
/// reverse-complement otherwise; an exhausted read (overlap covering all
/// that remains) contributes nothing.
fn slice_oriented(store: &ReadStore, id: u64, from: usize, to: usize, reversed: bool) -> Seq {
    if reversed {
        match from.cmp(&to) {
            std::cmp::Ordering::Less => Seq::new(),
            std::cmp::Ordering::Equal => {
                let codes = store.get(id).expect("read stored locally");
                Seq::from_codes(vec![elba_seq::dna::complement(codes[from])])
            }
            std::cmp::Ordering::Greater => store.subsequence(id, from, to),
        }
    } else if from > to {
        Seq::new()
    } else {
        store.subsequence(id, from, to)
    }
}

/// One oriented slice request recorded by the trace pass: read `gid`
/// sliced inclusively `[from..to]`, reverse-complemented when
/// `reversed` (the `l[j:i]` convention with `from > to`).
#[derive(Debug, Clone, Copy)]
struct SliceSpec {
    gid: u64,
    from: usize,
    to: usize,
    reversed: bool,
}

/// One traced walk: everything about a contig except its materialized
/// sequence bytes.
#[derive(Debug)]
struct WalkSpec {
    read_ids: Vec<u64>,
    slices: Vec<SliceSpec>,
    circular: bool,
}

/// Assemble every contig stored in this rank's induced subgraph.
pub fn local_assembly(
    graph: &LocalGraph,
    store: &ReadStore,
    cfg: &AssemblyConfig,
) -> (Vec<Contig>, AssemblyStats) {
    let n = graph.n_vertices();
    let csc = &graph.csc;
    let mut visited = vec![false; n];
    let mut walks: Vec<WalkSpec> = Vec::new();
    let mut stats = AssemblyStats::default();

    let neighbors = |v: usize| -> &[u32] { csc.col(v).0 };
    let edge_of = |from: usize, to: usize| -> SgEdge {
        *csc.get(from, to).unwrap_or_else(|| {
            panic!("missing directed edge {from}->{to} in symmetric local matrix")
        })
    };

    // Pass 1 (serial): trace each walk, recording slice requests instead
    // of copying bases — the pointer chase over shared `visited` state.
    let trace = |start: usize, visited: &mut [bool], stats: &mut AssemblyStats| -> WalkSpec {
        let gid = |v: usize| graph.global_ids[v];
        let mut read_ids = Vec::new();
        let mut slices = Vec::new();
        visited[start] = true;
        read_ids.push(gid(start));
        let mut prev = start;
        let mut cur = neighbors(start)[0] as usize;
        let first = edge_of(prev, cur);
        let alpha = if first.src_rev {
            store.read_len(gid(start)).expect("root read stored") - 1
        } else {
            0
        };
        slices.push(SliceSpec {
            gid: gid(start),
            from: alpha,
            to: first.pre as usize,
            reversed: first.src_rev,
        });
        let mut in_edge = first;
        let mut circular = false;
        loop {
            visited[cur] = true;
            read_ids.push(gid(cur));
            let nbrs = neighbors(cur);
            let next = nbrs
                .iter()
                .map(|&x| x as usize)
                .find(|&nb| nb != prev && !visited[nb]);
            match next {
                None => {
                    // Opposite root reached (or cycle closed / orientation
                    // anomaly): emit the terminal slice.
                    if nbrs.len() == 2 && nbrs.iter().all(|&x| visited[x as usize]) {
                        circular = true;
                    }
                    let len = store.read_len(gid(cur)).expect("read stored");
                    let beta = if in_edge.dst_rev { 0 } else { len - 1 };
                    slices.push(SliceSpec {
                        gid: gid(cur),
                        from: in_edge.post as usize,
                        to: beta,
                        reversed: in_edge.dst_rev,
                    });
                    break;
                }
                Some(nb) => {
                    let out_edge = edge_of(cur, nb);
                    if in_edge.dst_rev != out_edge.src_rev {
                        // Inconsistent traversal orientation (fuzz artifact):
                        // terminate the contig cleanly at this read.
                        stats.orientation_breaks += 1;
                        let len = store.read_len(gid(cur)).expect("read stored");
                        let beta = if in_edge.dst_rev { 0 } else { len - 1 };
                        slices.push(SliceSpec {
                            gid: gid(cur),
                            from: in_edge.post as usize,
                            to: beta,
                            reversed: in_edge.dst_rev,
                        });
                        break;
                    }
                    slices.push(SliceSpec {
                        gid: gid(cur),
                        from: in_edge.post as usize,
                        to: out_edge.pre as usize,
                        reversed: in_edge.dst_rev,
                    });
                    prev = cur;
                    cur = nb;
                    in_edge = out_edge;
                }
            }
        }
        WalkSpec {
            read_ids,
            slices,
            circular,
        }
    };

    // Root scan over all n vertices (paper: linear search for JC-degree 1).
    for s in 0..n {
        if !visited[s] && csc.degree(s) == 1 {
            let walk = trace(s, &mut visited, &mut stats);
            stats.reads_used += walk.read_ids.len();
            stats.contigs += 1;
            walks.push(walk);
        }
    }
    // Remaining unvisited degree-2 vertices form cycles.
    if cfg.emit_cycles {
        for s in 0..n {
            if !visited[s] && csc.degree(s) == 2 {
                let mut walk = trace(s, &mut visited, &mut stats);
                walk.circular = true;
                stats.reads_used += walk.read_ids.len();
                stats.contigs += 1;
                stats.cycles += 1;
                walks.push(walk);
            }
        }
    }

    // Pass 2 (threaded): materialize each walk's bases. `run_indexed`
    // returns results in task order — the trace order above — so the
    // contig list is byte-identical for every thread count.
    let threads = elba_par::ElbaPar::resolve(cfg.threads);
    let seqs = elba_par::run_indexed(walks.len(), threads, |i| {
        let mut seq = Seq::new();
        for s in &walks[i].slices {
            seq.extend_from(&slice_oriented(store, s.gid, s.from, s.to, s.reversed));
        }
        seq
    });
    let contigs = walks
        .into_iter()
        .zip(seqs)
        .map(|(walk, seq)| Contig {
            seq,
            read_ids: walk.read_ids,
            circular: walk.circular,
        })
        .collect();
    (contigs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_align::{dovetail_edges, OverlapAln};
    use elba_sparse::{Csc, Dcsc};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Build a LocalGraph + ReadStore for a chain of reads tiling a
    /// genome, each read optionally reverse-complemented.
    fn chain_graph(
        g: &Seq,
        read_len: usize,
        stride: usize,
        strands: &[bool],
    ) -> (LocalGraph, ReadStore) {
        let n = strands.len();
        assert!(stride * (n - 1) + read_len <= g.len());
        let mut store = ReadStore::empty(n);
        let mut reads = Vec::new();
        for (i, &rc) in strands.iter().enumerate() {
            let r = g.substring(i * stride, i * stride + read_len);
            let r = if rc { r.reverse_complement() } else { r };
            store.push(i as u64, r.codes());
            reads.push(r);
        }
        let mut triples: Vec<(u32, u32, SgEdge)> = Vec::new();
        for i in 0..n - 1 {
            // true alignment between read i and read i+1 in oriented space
            let overlap = read_len - stride;
            // coordinates on forward-genome layout
            let rc = strands[i] != strands[i + 1];
            // oriented w = v if same strand as u else rc(v); we need the
            // alignment of u against w where w is v oriented to match u.
            // Work in u's frame: if u is fwd, u's overlap is its suffix;
            // if u is rc, it is its prefix.
            let aln = if !strands[i] {
                OverlapAln {
                    rc,
                    u_beg: stride,
                    u_end: read_len - 1,
                    w_beg: 0,
                    w_end: overlap - 1,
                    u_len: read_len,
                    v_len: read_len,
                    score: overlap as i32,
                }
            } else {
                // u is rc: in u's forward coords the overlap with the next
                // read (to the genome-right) sits at u[0..=overlap-1], and
                // in w coords (v oriented to u) at the suffix.
                OverlapAln {
                    rc,
                    u_beg: 0,
                    u_end: overlap - 1,
                    w_beg: stride,
                    w_end: read_len - 1,
                    u_len: read_len,
                    v_len: read_len,
                    score: overlap as i32,
                }
            };
            let (fwd, bwd) = dovetail_edges(&aln);
            triples.push((i as u32, (i + 1) as u32, fwd));
            triples.push(((i + 1) as u32, i as u32, bwd));
        }
        let dcsc = Dcsc::from_triples(n, n, triples, |_, _| unreachable!());
        let graph = LocalGraph {
            global_ids: (0..n as u64).collect(),
            csc: dcsc.to_csc(),
        };
        (graph, store)
    }

    fn assert_rebuilds(g: &Seq, contig: &Contig) {
        assert!(
            contig.seq == *g || contig.seq == g.reverse_complement(),
            "contig (len {}) != genome (len {}):\n  {}\n  {}",
            contig.seq.len(),
            g.len(),
            contig.seq,
            g
        );
    }

    #[test]
    fn all_forward_chain_rebuilds_genome() {
        let g = genome(400, 1);
        let (graph, store) = chain_graph(&g, 100, 75, &[false; 5]);
        let (contigs, stats) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert_eq!(stats.contigs, 1);
        assert_eq!(contigs[0].read_ids.len(), 5);
        assert!(!contigs[0].circular);
        assert_rebuilds(&g, &contigs[0]);
    }

    #[test]
    fn alternating_strand_chain_rebuilds_genome() {
        let g = genome(400, 2);
        let strands = [false, true, false, true, false];
        let (graph, store) = chain_graph(&g, 100, 75, &strands);
        let (contigs, stats) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert_eq!(stats.contigs, 1);
        assert_eq!(stats.orientation_breaks, 0);
        assert_rebuilds(&g, &contigs[0]);
    }

    #[test]
    fn all_reverse_chain_rebuilds_genome() {
        let g = genome(325, 3);
        let (graph, store) = chain_graph(&g, 100, 75, &[true; 4]);
        let (contigs, _) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert_eq!(contigs.len(), 1);
        assert_rebuilds(&g, &contigs[0]);
    }

    #[test]
    fn random_strand_chains_rebuild_genome() {
        let mut rng = StdRng::seed_from_u64(12);
        for trial in 0..20 {
            let n = rng.gen_range(2..10);
            let read_len = 80;
            let stride = rng.gen_range(30..70);
            let g = genome(stride * (n - 1) + read_len, 100 + trial);
            let strands: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let (graph, store) = chain_graph(&g, read_len, stride, &strands);
            let (contigs, stats) = local_assembly(&graph, &store, &AssemblyConfig::default());
            assert_eq!(stats.contigs, 1, "strands={strands:?}");
            assert_eq!(stats.orientation_breaks, 0);
            assert_rebuilds(&g, &contigs[0]);
        }
    }

    #[test]
    fn two_read_contig() {
        let g = genome(150, 4);
        let (graph, store) = chain_graph(&g, 100, 50, &[false, false]);
        let (contigs, _) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert_eq!(contigs.len(), 1);
        assert_eq!(contigs[0].read_ids, vec![0, 1]);
        assert_rebuilds(&g, &contigs[0]);
    }

    #[test]
    fn multiple_components_yield_multiple_contigs() {
        // two disjoint 3-read chains in one local graph
        let g1 = genome(250, 5);
        let g2 = genome(250, 6);
        let (graph1, store1) = chain_graph(&g1, 100, 75, &[false; 3]);
        let (_graph2, store2) = chain_graph(&g2, 100, 75, &[false; 3]);
        // merge: shift ids of the second chain by 3
        let mut store = ReadStore::empty(6);
        for (id, codes) in store1.iter() {
            store.push(id, codes);
        }
        for (id, codes) in store2.iter() {
            store.push(id + 3, codes);
        }
        let mut triples: Vec<(u32, u32, SgEdge)> = Vec::new();
        for (r, c, e) in graph1.csc.iter() {
            triples.push((r, c, *e));
            triples.push((r + 3, c + 3, *e));
        }
        let dcsc = Dcsc::from_triples(6, 6, triples, |_, _| unreachable!());
        let graph = LocalGraph {
            global_ids: (0..6).collect(),
            csc: dcsc.to_csc(),
        };
        let (contigs, stats) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert_eq!(stats.contigs, 2);
        assert_eq!(contigs[0].read_ids.len(), 3);
        // second chain reuses chain-1 edge payloads over chain-2 reads, so
        // only the first contig is checked against its genome
        assert_rebuilds(&g1, &contigs[0]);
    }

    #[test]
    fn cycle_emitted_only_when_enabled() {
        // 3-cycle: reads tile a circular genome
        let g = genome(300, 7);
        let read_len = 140;
        let n = 3;
        let stride = 100;
        let mut store = ReadStore::empty(n);
        let mut circ = g.clone();
        circ.extend_from(&g.substring(0, read_len)); // wraparound copy
        for i in 0..n {
            store.push(
                i as u64,
                circ.substring(i * stride, i * stride + read_len).codes(),
            );
        }
        let overlap = (read_len - stride) as u32;
        let mut triples = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            let fwd = SgEdge {
                pre: stride as u32 - 1,
                post: 0,
                src_rev: false,
                dst_rev: false,
                suffix: stride as u32,
            };
            let bwd = SgEdge {
                pre: overlap,
                post: read_len as u32 - 1,
                src_rev: true,
                dst_rev: true,
                suffix: stride as u32,
            };
            triples.push((i as u32, j as u32, fwd));
            triples.push((j as u32, i as u32, bwd));
        }
        let dcsc = Dcsc::from_triples(n, n, triples, |_, _| unreachable!());
        let graph = LocalGraph {
            global_ids: (0..n as u64).collect(),
            csc: dcsc.to_csc(),
        };
        let cycles_on = AssemblyConfig {
            emit_cycles: true,
            ..AssemblyConfig::default()
        };
        let (with_cycles, stats) = local_assembly(&graph, &store, &cycles_on);
        assert_eq!(stats.cycles, 1);
        assert!(with_cycles[0].circular);
        let cycles_off = AssemblyConfig {
            emit_cycles: false,
            ..AssemblyConfig::default()
        };
        let (without, stats2) = local_assembly(&graph, &store, &cycles_off);
        assert!(without.is_empty());
        assert_eq!(stats2.contigs, 0);
    }

    #[test]
    fn contigs_identical_across_thread_counts() {
        // The threaded materialization pass must be a pure speed knob:
        // multi-component graph (chains of varying length + strand mix),
        // byte-identical contig lists for 1, 2, 3, and 8 workers.
        let mut rng = StdRng::seed_from_u64(77);
        let n_chains = 4usize;
        let mut store = ReadStore::empty(0);
        let mut triples: Vec<(u32, u32, SgEdge)> = Vec::new();
        let mut base = 0u32;
        let mut total = 0usize;
        for chain in 0..n_chains {
            let n = 2 + chain; // 2..=5 reads per chain
            let strands: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let g = genome(60 * (n - 1) + 90, 500 + chain as u64);
            let (graph_i, store_i) = chain_graph(&g, 90, 60, &strands);
            for (id, codes) in store_i.iter() {
                store.push(id + base as u64, codes);
            }
            for (r, c, e) in graph_i.csc.iter() {
                triples.push((r + base, c + base, *e));
            }
            base += n as u32;
            total += n;
        }
        let mut merged = ReadStore::empty(total);
        for (id, codes) in store.iter() {
            merged.push(id, codes);
        }
        let dcsc = Dcsc::from_triples(total, total, triples, |_, _| unreachable!());
        let graph = LocalGraph {
            global_ids: (0..total as u64).collect(),
            csc: dcsc.to_csc(),
        };
        let run = |threads: usize| {
            let cfg = AssemblyConfig {
                emit_cycles: true,
                threads,
            };
            local_assembly(&graph, &merged, &cfg)
        };
        let (baseline, base_stats) = run(1);
        assert_eq!(base_stats.contigs, n_chains);
        for threads in [2usize, 3, 8] {
            let (contigs, stats) = run(threads);
            assert_eq!(stats.contigs, base_stats.contigs, "threads={threads}");
            assert_eq!(contigs.len(), baseline.len(), "threads={threads}");
            for (a, b) in baseline.iter().zip(&contigs) {
                assert_eq!(a.read_ids, b.read_ids, "threads={threads}");
                assert_eq!(a.circular, b.circular, "threads={threads}");
                assert!(a.seq == b.seq, "threads={threads}: contig bytes diverge");
            }
        }
    }

    #[test]
    fn empty_graph_produces_nothing() {
        let graph = LocalGraph {
            global_ids: Vec::new(),
            csc: Csc::empty(0, 0),
        };
        let store = ReadStore::empty(0);
        let (contigs, stats) = local_assembly(&graph, &store, &AssemblyConfig::default());
        assert!(contigs.is_empty());
        assert_eq!(stats.contigs, 0);
    }
}
